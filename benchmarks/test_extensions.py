"""Benches for the extension experiments (not paper figures).

* online churn — replacement policies must rescue a saturating workload;
* latency model — Sec. III-C's claim that contention cost ranks
  algorithms the same way full-DCF modelled latency does.
"""

from repro.experiments import latency_model, online_churn

from conftest import column_of, series


def test_online_churn(run_experiment):
    result = run_experiment(online_churn.run)
    seeds = sorted({row[0] for row in result.rows})
    for seed in seeds:
        def row(policy):
            return series(result, seed=seed, policy=policy)[0]

        headers = list(result.headers)
        cached_idx = headers.index("cached")
        published_idx = headers.index("published")
        evictions_idx = headers.index("evictions")

        never = row("never")
        oldest = row("oldest-first")
        replicated = row("most-replicated")
        # replacement rescues chunks that never-evict strands
        assert oldest[cached_idx] > never[cached_idx]
        assert replicated[cached_idx] > never[cached_idx]
        # and caches (nearly) everything published
        assert oldest[cached_idx] >= 0.9 * oldest[published_idx]
        # at the cost of actual evictions
        assert oldest[evictions_idx] > 0
        assert never[evictions_idx] == 0


def test_latency_model_ranking(run_experiment):
    result = run_experiment(latency_model.run)
    sizes = sorted({row[0] for row in result.rows})
    for size in sizes:
        rows = series(result, nodes=size)
        contention = {
            row[1]: row[2] for row in rows
        }
        latency = {row[1]: row[3] for row in rows}
        algorithms = list(contention)
        # clearly separated pairs (>= 25% apart in contention) must rank
        # identically under modelled latency; close pairs may swap because
        # the full model adds a quadratic collision term
        for i, a in enumerate(algorithms):
            for b in algorithms[i + 1:]:
                lo, hi = sorted((contention[a], contention[b]))
                if hi < 1.25 * lo:
                    continue
                assert (
                    (contention[a] < contention[b])
                    == (latency[a] < latency[b])
                ), (size, a, b)
        # the paper's target comparison holds in *both* measures
        assert contention["Appx"] < contention["Hopc"]
        assert latency["Appx"] < latency["Hopc"]
