"""Theorem 1 — empirical approximation ratio against the exact optimum.

Paper: the iterated primal-dual scheme preserves the 6.55 ConFL ratio;
empirically they observe at most 5.6.  Single-chunk rows compare against
the true per-instance optimum (ratio >= 1 by construction).
"""

from repro.experiments import approximation_ratio

from conftest import column_of


def test_approx_ratio(run_experiment):
    result = run_experiment(approximation_ratio.run)

    ratios = [
        row for row in result.rows if row[0] != "WORST"
    ]
    assert ratios
    index = list(result.headers).index("ratio")
    chunk_index = list(result.headers).index("chunks")
    for row in ratios:
        assert row[index] <= 6.55, row
        if row[chunk_index] == 1:
            # single-chunk rows are true-optimum comparisons
            assert row[index] >= 1.0 - 1e-9, row

    worst = [row for row in result.rows if row[0] == "WORST"][0]
    assert worst[index] <= 6.55
