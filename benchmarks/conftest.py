"""Shared helpers for the benchmark harness.

Each ``test_fig*.py`` regenerates one evaluation artifact of the paper via
its experiment runner, asserts the paper's qualitative *shape* (who wins,
roughly by how much, where crossovers fall — absolute numbers are not
expected to match a 2015 testbed), and reports the runtime through
pytest-benchmark.

Run them with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_FULL=1`` to run the paper-scale sweeps instead of the trimmed
fast ones.
"""

from __future__ import annotations

import os

import pytest


def full_mode() -> bool:
    """True when the paper-scale (slow) sweeps were requested."""
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


@pytest.fixture
def run_experiment(benchmark):
    """Benchmark an experiment runner once and return its result."""

    def _run(runner, **kwargs):
        kwargs.setdefault("fast", not full_mode())
        result = benchmark.pedantic(
            runner, kwargs=kwargs, rounds=1, iterations=1
        )
        print()
        print(result.to_text())
        return result

    return _run


def series(result, **criteria):
    """Extract matching rows from an ExperimentResult."""
    return result.filtered(**criteria)


def column_of(rows, result, name):
    """Column values of pre-filtered rows."""
    index = list(result.headers).index(name)
    return [row[index] for row in rows]
