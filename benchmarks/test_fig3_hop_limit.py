"""Fig. 3 — distributed algorithm vs message hop limit.

Paper shape: k = 1 gives nodes too little information — few caches are
selected and the accessing cost is high; k >= 2 plateaus.
"""

from repro.experiments import fig3_hop_limit

from conftest import column_of, series


def test_fig3_hop_limit(run_experiment):
    result = run_experiment(fig3_hop_limit.run)

    # At the M=4 threshold (strict support pool), k=1 must clearly degrade.
    k1 = series(result, span_threshold=4, hop_limit=1)
    k2 = series(result, span_threshold=4, hop_limit=2)
    assert k1 and k2
    caches_k1 = column_of(k1, result, "total_caches")[0]
    caches_k2 = column_of(k2, result, "total_caches")[0]
    access_k1 = column_of(k1, result, "access")[0]
    access_k2 = column_of(k2, result, "access")[0]
    assert caches_k1 < caches_k2      # "very few caching nodes are selected"
    assert access_k1 > access_k2      # "high Contention Cost in Accessing"

    # k >= 2 plateaus: totals within a few percent of each other.
    plateau = [
        column_of(series(result, span_threshold=4, hop_limit=k), result, "total")[0]
        for k in (2, 3)
        if series(result, span_threshold=4, hop_limit=k)
    ]
    if len(plateau) == 2:
        assert abs(plateau[0] - plateau[1]) <= 0.05 * plateau[0]

    # messages grow with k (larger CC floods) — the cost of more info
    messages = [
        column_of(series(result, span_threshold=4, hop_limit=k), result,
                  "messages")[0]
        for k in (1, 2)
    ]
    assert messages[0] < messages[1]
