"""Micro-benchmarks of the core primitives (classic pytest-benchmark use).

These track the per-operation costs that dominate the macro experiments:
the dual ascent, the ConFL instance build (all-pairs contention costs),
Steiner trees, and the full per-chunk placement of each algorithm family.
"""

import pytest

from repro import grid_problem, solve_approximation
from repro.baselines import solve_contention, solve_hopcount
from repro.core import build_confl_instance, dual_ascent
from repro.distributed import solve_distributed
from repro.exact.local_search import optimize_chunk_local
from repro.graphs import floyd_warshall, grid_graph, steiner_tree
from repro.graphs.steiner import dreyfus_wagner


@pytest.fixture(scope="module")
def grid8():
    return grid_graph(8)


@pytest.fixture(scope="module")
def instance6():
    return build_confl_instance(grid_problem(6).new_state())


def test_bench_confl_instance_build(benchmark):
    state = grid_problem(6).new_state()
    benchmark(build_confl_instance, state)


def test_bench_dual_ascent_6x6(benchmark, instance6):
    result = benchmark(dual_ascent, instance6)
    assert result.admins


def test_bench_steiner_kmb_8x8(benchmark, grid8):
    terminals = [0, 7, 27, 36, 56, 63]
    tree = benchmark(steiner_tree, grid8, terminals)
    assert all(t in tree for t in terminals)


def test_bench_steiner_exact_5x5(benchmark):
    g = grid_graph(5)
    cost, _ = benchmark(dreyfus_wagner, g, [0, 4, 20, 24, 12])
    assert cost > 0


def test_bench_floyd_warshall_8x8(benchmark, grid8):
    dist = benchmark(floyd_warshall, grid8)
    assert dist[0][63] == 14.0


def test_bench_appx_full_6x6(benchmark):
    problem = grid_problem(6)
    placement = benchmark.pedantic(
        solve_approximation, args=(problem,), rounds=1, iterations=1
    )
    placement.validate()


def test_bench_distributed_full_6x6(benchmark):
    problem = grid_problem(6)
    outcome = benchmark.pedantic(
        solve_distributed, args=(problem,), rounds=1, iterations=1
    )
    outcome.placement.validate()


def test_bench_hopcount_full_6x6(benchmark):
    problem = grid_problem(6)
    placement = benchmark.pedantic(
        solve_hopcount, args=(problem,), rounds=1, iterations=1
    )
    placement.validate()


def test_bench_contention_full_6x6(benchmark):
    problem = grid_problem(6)
    placement = benchmark.pedantic(
        solve_contention, args=(problem,), rounds=1, iterations=1
    )
    placement.validate()


def test_bench_local_search_chunk_6x6(benchmark, instance6):
    caches, _, _, obj = benchmark.pedantic(
        optimize_chunk_local, args=(instance6,), rounds=1, iterations=1
    )
    assert obj > 0
