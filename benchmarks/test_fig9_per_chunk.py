"""Fig. 9 — per-chunk contention cost with 10 distinct chunks.

Assertions per accounting (see the experiment module): the baselines'
two-plateau structure lives in the final-state pricing; the set switch at
chunk 5 shows as a cost discontinuity in the accumulated pricing; and the
fair algorithms keep per-chunk costs evener than the worst baseline.
"""

import statistics

from repro.experiments import fig9_per_chunk

from conftest import column_of, series


def test_fig9_per_chunk(run_experiment):
    result = run_experiment(fig9_per_chunk.run)
    sides = sorted({row[0] for row in result.rows})

    for side in sides:
        # evenness: our final-state spread beats the worst baseline's
        spreads = {}
        for algorithm in ("Appx", "Dist", "Hopc", "Cont"):
            rows = series(result, grid_side=side, algorithm=algorithm,
                          chunk="stdev")
            spreads[algorithm] = column_of(rows, result, "final_cost")[0]
        worst_baseline = max(spreads["Hopc"], spreads["Cont"])
        assert spreads["Appx"] < worst_baseline
        assert spreads["Dist"] < worst_baseline

        # final-state pricing: Hopc's chunks 0-4 form one plateau and
        # 5-9 another (two node sets), with a clear gap between them
        hopc_final = [
            column_of(series(result, grid_side=side, algorithm="Hopc",
                             chunk=c), result, "final_cost")[0]
            for c in range(10)
        ]
        first, last = hopc_final[:5], hopc_final[5:]
        gap = abs(statistics.mean(last) - statistics.mean(first))
        wobble = max(statistics.pstdev(first), statistics.pstdev(last))
        assert gap > 0.5 * wobble or wobble < 1e-9, (first, last)

        # accumulated pricing: the set switch at chunk 5 resets Hopc's
        # stage cost downward (fresh empty nodes), a discontinuity the
        # smoothly-rising fair algorithms don't show as sharply
        hopc_stage = [
            column_of(series(result, grid_side=side, algorithm="Hopc",
                             chunk=c), result, "stage_cost")[0]
            for c in range(10)
        ]
        assert hopc_stage[5] < hopc_stage[4], hopc_stage
