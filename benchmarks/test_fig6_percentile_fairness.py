"""Fig. 6 — nodes needed to store data ratios; p75-percentile fairness.

Paper values on the 6x6 grid: 50% of the data sits on ~1 node (Hopc),
~5 nodes (Cont), ~20 nodes (Appx/Dist); p75 fairness 71.4 / 68.6 / 4.28 /
22.8 % for Appx / Dist / Hopc / Cont.
"""

import pytest

from repro.experiments import fig6_percentile_fairness

from conftest import column_of, series


def test_fig6_percentile_fairness(run_experiment):
    result = run_experiment(fig6_percentile_fairness.run)

    def nodes_for(algorithm, ratio):
        rows = series(result, algorithm=algorithm, ratio=ratio)
        return column_of(rows, result, "nodes_needed")[0]

    def p75(algorithm):
        rows = series(result, algorithm=algorithm, ratio="p75-fairness")
        return column_of(rows, result, "nodes_needed")[0]

    # 50% of data: Hopc ~1 node, Cont ~5, ours many (paper: ~20).
    assert nodes_for("Hopc", "50%") == pytest.approx(1.0, abs=0.5)
    assert nodes_for("Cont", "50%") == pytest.approx(5.0, abs=1.5)
    assert nodes_for("Appx", "50%") >= 8
    assert nodes_for("Dist", "50%") >= 8

    # p75 ordering matches the paper: Appx ≈ Dist ≫ Cont ≫ Hopc.
    assert p75("Appx") > p75("Cont") > p75("Hopc")
    assert p75("Dist") > p75("Cont")
    # Hopc's value is reproduced almost exactly (paper: 4.28%).
    assert p75("Hopc") == pytest.approx(4.28, abs=0.3)
