"""Fig. 4 — contention cost on random networks (run-averaged).

Paper shape: Appx/Dist at or below Cont and far below Hopc across sizes.
"""

from repro.experiments import fig4_random_networks

from conftest import column_of, series


def test_fig4_random_networks(run_experiment):
    result = run_experiment(fig4_random_networks.run)

    sizes = sorted({row[0] for row in result.rows})
    for size in sizes:
        totals = {
            algorithm: column_of(
                series(result, nodes=size, algorithm=algorithm),
                result, "total",
            )[0]
            for algorithm in ("Appx", "Dist", "Hopc", "Cont")
        }
        assert totals["Appx"] < totals["Hopc"]
        assert totals["Dist"] < totals["Hopc"]
        assert totals["Appx"] <= 1.2 * totals["Cont"]
        assert totals["Dist"] <= 1.25 * totals["Cont"]
