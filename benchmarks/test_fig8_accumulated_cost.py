"""Fig. 8 — accumulated contention cost vs number of distinct chunks.

Two claims under their respective accountings (see the experiment module):
accumulated — ours grow slower and end below the baselines; final-state —
the baselines show a capacity cliff when chunks cross 5 → 6 (capacity 5).
"""

from repro.experiments import fig8_accumulated_cost

from conftest import column_of, series


def _col(result, side, count, algorithm, column):
    rows = series(result, grid_side=side, num_chunks=count,
                  algorithm=algorithm)
    return column_of(rows, result, column)[0] if rows else None


def test_fig8_accumulated_cost(run_experiment):
    result = run_experiment(fig8_accumulated_cost.run)
    sides = sorted({row[0] for row in result.rows})
    counts = sorted({row[1] for row in result.rows})

    for side in sides:
        # accumulated totals grow monotonically for every algorithm
        for algorithm in ("Appx", "Dist", "Hopc", "Cont"):
            costs = [_col(result, side, c, algorithm, "total_cost")
                     for c in counts]
            assert all(
                a <= b + 1e-9 for a, b in zip(costs, costs[1:])
            ), (side, algorithm, costs)

        # ours end below the baselines on the accumulated measure
        final_count = counts[-1]
        totals = {
            algorithm: _col(result, side, final_count, algorithm, "total_cost")
            for algorithm in ("Appx", "Dist", "Hopc", "Cont")
        }
        assert totals["Appx"] < totals["Hopc"]
        assert totals["Dist"] < totals["Hopc"]
        assert totals["Appx"] < totals["Cont"]

        # the capacity cliff at 5 -> 6 (final-state pricing): the
        # baselines' jump exceeds the fair algorithms'.  The cliff is a
        # capacity-pressure phenomenon, so it shows on the tight 4x4 grid
        # (the paper's Fig. 8a highlights it there too); on 8x8 the second
        # node set is still well-placed and the cliff washes out — see
        # EXPERIMENTS.md.
        if side == 4 and 5 in counts and 6 in counts:
            def jump(algorithm):
                return (_col(result, side, 6, algorithm, "final_state_cost")
                        - _col(result, side, 5, algorithm, "final_state_cost"))

            assert max(jump("Hopc"), jump("Cont")) > jump("Appx"), side
