"""Fig. 1 — chunk distribution vs the brute-force optimum.

Paper shape: Hopc/Cont concentrate every chunk on one fixed node set, so
their per-node deviation from the optimum is large; Appx/Dist distribute
chunks with small deviations.
"""

from repro.experiments import fig1_chunk_distribution

from conftest import column_of, series


def test_fig1_chunk_distribution(run_experiment):
    result = run_experiment(fig1_chunk_distribution.run)

    totals = {}
    for algorithm in ("Appx", "Dist", "Hopc", "Cont"):
        rows = series(result, algorithm=algorithm, node="TOTAL")
        assert rows, f"missing TOTAL row for {algorithm}"
        totals[algorithm] = column_of(rows, result, "delta")[0]

    # Fair algorithms track the optimum far better than the baselines.
    assert totals["Appx"] < totals["Hopc"]
    assert totals["Appx"] < totals["Cont"]
    assert totals["Dist"] < totals["Hopc"]
