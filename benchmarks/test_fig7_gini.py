"""Fig. 7 — Gini coefficient of caching loads vs network size.

Paper shape: Appx/Dist Gini stays below ~0.4 and falls as the network
grows; Hopc/Cont stay high (0.8+) or rise.
"""

from repro.experiments import fig7_gini

from conftest import column_of, series


def test_fig7_gini(run_experiment):
    result = run_experiment(fig7_gini.run)

    grid_sizes = sorted(
        {row[1] for row in result.rows if row[0] == "grid"}
    )
    for size in grid_sizes:
        gini = {
            algorithm: column_of(
                series(result, topology="grid", nodes=size,
                       algorithm=algorithm),
                result, "gini",
            )[0]
            for algorithm in ("Appx", "Dist", "Hopc", "Cont")
        }
        assert gini["Appx"] < 0.55
        assert gini["Appx"] < gini["Hopc"]
        assert gini["Dist"] < gini["Hopc"]
        assert gini["Hopc"] > 0.75  # extreme concentration
        if size >= 36:
            # the Appx < Cont separation emerges at the paper's sizes;
            # on 4x4 the two are within noise of each other
            assert gini["Appx"] < gini["Cont"]

    # Ours improve (or hold) with size; Hopc does not improve.
    if len(grid_sizes) >= 2:
        appx_series = [
            column_of(series(result, topology="grid", nodes=s,
                             algorithm="Appx"), result, "gini")[0]
            for s in grid_sizes
        ]
        hopc_series = [
            column_of(series(result, topology="grid", nodes=s,
                             algorithm="Hopc"), result, "gini")[0]
            for s in grid_sizes
        ]
        assert appx_series[-1] <= appx_series[0] + 0.05
        assert hopc_series[-1] >= hopc_series[0] - 0.05
