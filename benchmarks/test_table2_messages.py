"""Table II — distributed-algorithm message counts and the O(QN + N²) bound.

Paper claims: NPI = Q·N deliveries; CC/TIGHT/SPAN dominate; the total
stays O(QN + N²), i.e. the TOTAL/(QN + N²) ratio must not grow with N.
"""

from repro.experiments import table2_messages

from conftest import column_of, series


def test_table2_messages(run_experiment):
    result = run_experiment(table2_messages.run)
    sizes = sorted({row[0] for row in result.rows})

    ratios = []
    for n in sizes:
        npi = column_of(series(result, nodes=n, type="NPI"), result,
                        "messages")[0]
        assert npi == 5 * (n - 1)  # Q chunks × (N-1) client deliveries

        per_type = {
            t: column_of(series(result, nodes=n, type=t), result,
                         "messages")[0]
            for t in ("CC", "TIGHT", "SPAN", "FREEZE", "NADMIN")
        }
        # CC / TIGHT / SPAN dominate the unicast control traffic
        assert per_type["CC"] > per_type["FREEZE"]
        assert per_type["CC"] > per_type["NADMIN"]

        ratio_rows = series(result, nodes=n, type="TOTAL/(QN+N^2)")
        ratios.append(column_of(ratio_rows, result, "messages")[0])

    # Bounded scaling: the normalized total must not blow up with N.
    assert ratios[-1] <= ratios[0] * 1.5
    assert all(r < 10 for r in ratios)
