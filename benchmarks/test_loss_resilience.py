"""Failure injection — the distributed protocol under message loss.

Not a paper figure: Sec. III-C motivates contention exactly because real
802.11 control traffic collides and drops.  This bench sweeps a unicast
loss rate over Algorithm 2 and checks graceful degradation: every client
is still served at any loss rate (producer fallback), while the number of
opened caches shrinks as TIGHT/SPAN support evaporates.
"""

from repro import DistributedConfig, grid_problem, solve_distributed


def test_loss_resilience(benchmark):
    problem = grid_problem(6)

    def run():
        outcomes = {}
        for rate in (0.0, 0.2, 0.5, 0.8):
            outcome = solve_distributed(
                problem, DistributedConfig(loss_rate=rate, loss_seed=42)
            )
            outcome.placement.validate()  # always feasible
            outcomes[rate] = outcome
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    copies = {rate: o.placement.total_copies() for rate, o in outcomes.items()}
    print(f"\ncached copies by loss rate: {copies}")
    # more loss → no more caches than the clean run, and heavy loss
    # clearly collapses cache formation
    assert copies[0.5] <= copies[0.0]
    assert copies[0.8] <= copies[0.2]
    assert copies[0.8] < copies[0.0]

    # fewer successful control messages are *recorded* under loss
    messages = {
        rate: o.stats.total_messages() for rate, o in outcomes.items()
    }
    assert messages[0.8] < messages[0.0]
