"""Fig. 2 — total contention cost on small and large grids.

Paper shape: Appx/Dist land far below Hopc (paper: ~52-62% lower) and
within ~10% of Cont; on small grids the Appx total stays within the 6.55
ratio of the brute-force reference.
"""

from repro.experiments import fig2_contention_cost

from conftest import column_of, series


def test_fig2_contention_cost(run_experiment):
    result = run_experiment(fig2_contention_cost.run)

    sizes = sorted({row[0] for row in result.rows})
    for size in sizes:
        costs = {}
        for algorithm in ("Appx", "Dist", "Hopc", "Cont"):
            rows = series(result, nodes=size, algorithm=algorithm)
            costs[algorithm] = column_of(rows, result, "total")[0]
        # ours beat the hop-count baseline decisively
        assert costs["Appx"] < costs["Hopc"]
        assert costs["Dist"] < costs["Hopc"]
        # and stay competitive with the contention baseline
        assert costs["Appx"] <= 1.15 * costs["Cont"]

    # small-regime rows include the brute-force reference within ratio
    for size in {row[0] for row in result.rows if row[1] == "small"}:
        brtf_rows = series(result, nodes=size, algorithm="Brtf")
        if not brtf_rows:
            continue
        brtf = column_of(brtf_rows, result, "total")[0]
        appx = column_of(
            series(result, nodes=size, algorithm="Appx"), result, "total"
        )[0]
        assert appx <= 6.55 * brtf
