"""Served-load fairness — the request-plane claim behind Figs. 6–7.

The paper shows Algorithm 1 places chunks fairly (storage Gini < 0.4);
this bench asserts the fairness *survives serving*: replaying a Zipf
request stream on the Sec. V-A grid, the per-node served-load Gini of
the Appx placement stays below both the hop-count and the random
baseline, and the whole replay is deterministic at scale.
"""

from repro.experiments import serve_fairness

from conftest import column_of, series, full_mode


def test_serve_fairness(run_experiment):
    result = run_experiment(serve_fairness.run)

    gini = {
        row[0]: column_of(series(result, placement=row[0]), result,
                          "served gini")[0]
        for row in result.rows
    }
    assert set(gini) == {"approximation", "hopcount", "random"}

    # The headline ordering: the paper's fair placement serves fairly.
    assert gini["approximation"] < gini["hopcount"]
    assert gini["approximation"] < gini["random"]
    # Hop-count piles every copy on a couple of central nodes, so almost
    # all serving concentrates there.
    assert gini["hopcount"] > 0.75
    assert gini["approximation"] < 0.55

    # Every request completes (producer fallback guarantees service).
    completed = column_of(result.rows, result, "completed")
    requested = serve_fairness.NUM_REQUESTS if full_mode() \
        else serve_fairness.FAST_REQUESTS
    assert all(value == requested for value in completed)


def test_serve_deterministic_at_scale(benchmark):
    """Two large replays (≥10k requests) are byte-identical."""
    from repro.core import solve_approximation
    from repro.serve import ZipfWorkload, serve_placement
    from repro.workloads import grid_problem

    requests = 50_000 if full_mode() else 10_000
    placement = solve_approximation(grid_problem(6))
    workload = ZipfWorkload(seed=2017)

    first = benchmark.pedantic(
        serve_placement, args=(placement, workload, requests),
        rounds=1, iterations=1,
    )
    second = serve_placement(placement, workload, requests)
    assert first.to_json() == second.to_json()
    assert first.completed == requests


def test_batched_engine_at_scale(benchmark):
    """The batched hot path reproduces the per-request report at scale.

    Times the batched engine on a large replay (the number this PR's
    docs quote), then replays the same stream through the original
    per-request event loop and asserts the two reports are
    byte-identical — the determinism contract of docs/SCALING.md.
    """
    from repro.core import solve_approximation
    from repro.serve import (
        ENGINE_PER_REQUEST,
        ServeConfig,
        ZipfWorkload,
        serve_placement,
    )
    from repro.workloads import grid_problem

    requests = 200_000 if full_mode() else 10_000
    placement = solve_approximation(grid_problem(6))
    workload = ZipfWorkload(seed=2017)

    batched = benchmark.pedantic(
        serve_placement, args=(placement, workload, requests),
        kwargs={"config": ServeConfig(failure_rate=0.2)},
        rounds=1, iterations=1,
    )
    per_request = serve_placement(
        placement, workload, requests,
        config=ServeConfig(failure_rate=0.2, engine=ENGINE_PER_REQUEST),
    )
    assert batched.to_json() == per_request.to_json()
    assert batched.completed == requests
