"""Ablation benches for the design choices called out in DESIGN.md §4.

* γ-ramp origin (``gamma_from_alpha``): the literal pseudocode ramps the
  relay bid from zero after TIGHT, which delays SPANs and under-opens.
* SPAN policy: spanning only the best candidate vs every tight candidate.
* Promotion serialization: without the arbiter, simultaneous
  self-promotions over-open.
* Path policy for Eq. 2: shortest-hop (paper) vs minimum-contention
  routing.
"""

from dataclasses import replace

import pytest

from repro import (
    DistributedConfig,
    grid_problem,
    solve_approximation,
    solve_distributed,
)
from repro.core import CachingProblem, PATH_POLICY_CONTENTION
from repro.metrics import evaluate_contention


@pytest.fixture(scope="module")
def problem():
    return grid_problem(6)


def test_ablation_gamma_ramp(benchmark, problem):
    def run():
        aligned = solve_distributed(
            problem, DistributedConfig(gamma_from_alpha=True)
        ).placement
        literal = solve_distributed(
            problem, DistributedConfig(gamma_from_alpha=False)
        ).placement
        return aligned, literal

    aligned, literal = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\naligned-gamma copies={aligned.total_copies()} "
          f"literal-gamma copies={literal.total_copies()}")
    assert literal.total_copies() <= aligned.total_copies()


def test_ablation_span_policy(benchmark, problem):
    def run():
        spread = solve_distributed(
            problem, DistributedConfig(span_policy="all")
        ).placement
        focused = solve_distributed(
            problem, DistributedConfig(span_policy="best", span_threshold=2)
        ).placement
        return spread, focused

    spread, focused = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nspan=all copies={spread.total_copies()} "
          f"span=best copies={focused.total_copies()}")
    for placement in (spread, focused):
        placement.validate()


def test_ablation_promotion_arbiter(benchmark, problem):
    def run():
        serial = solve_distributed(
            problem, DistributedConfig(serialize_promotions=True)
        ).placement
        racy = solve_distributed(
            problem, DistributedConfig(serialize_promotions=False)
        ).placement
        return serial, racy

    serial, racy = benchmark.pedantic(run, rounds=1, iterations=1)
    over_opening = racy.total_copies() / max(1, serial.total_copies())
    print(f"\nserialized copies={serial.total_copies()} "
          f"racy copies={racy.total_copies()} "
          f"over-opening x{over_opening:.2f}")
    assert over_opening >= 1.0


def test_ablation_path_policy(benchmark, problem):
    def run():
        hops = solve_approximation(problem)
        cont_problem = CachingProblem(
            graph=problem.graph,
            producer=problem.producer,
            num_chunks=problem.num_chunks,
            capacity=problem.capacity,
            path_policy=PATH_POLICY_CONTENTION,
        )
        contention = solve_approximation(cont_problem)
        return hops, contention

    hops, contention = benchmark.pedantic(run, rounds=1, iterations=1)
    hop_cost = evaluate_contention(hops).total
    cont_cost = evaluate_contention(contention).total
    print(f"\nhop-path total={hop_cost:,.0f} "
          f"contention-path total={cont_cost:,.0f}")
    # both must be feasible; contention routing should not be wildly worse
    hops.validate()
    contention.validate()
    assert cont_cost <= 1.5 * hop_cost
