"""Fig. 5 — running time to place one chunk vs grid size.

Paper claim: Appx is 21.6% / 85.1% faster per chunk than Cont / Hopc.
That ordering is **not reproducible against this repo's baselines**: the
paper's own complexity analysis puts its Hopc implementation at
O(|V||E|^3), whereas our greedy Hopc is O(k·N^2) — a faster baseline than
the one the paper raced against (recorded in EXPERIMENTS.md).  What *is*
reproducible, and asserted here: all three algorithms grow polynomially,
Algorithm 1 stays within a small constant factor of the best-implemented
baseline, and nothing blows up super-polynomially.
"""

from repro.experiments import fig5_running_time

from conftest import column_of, series


def test_fig5_running_time(run_experiment):
    result = run_experiment(fig5_running_time.run)

    sizes = sorted({row[0] for row in result.rows})
    for size in sizes:
        times = {
            algorithm: column_of(
                series(result, nodes=size, algorithm=algorithm),
                result, "seconds",
            )[0]
            for algorithm in ("Appx", "Hopc", "Cont")
        }
        fastest = min(times.values())
        # Appx stays within a small constant factor of the best baseline.
        assert times["Appx"] <= max(5 * fastest, 0.01), (size, times)

    # polynomial growth sanity for every algorithm:
    for algorithm in ("Appx", "Hopc", "Cont"):
        per_size = [
            column_of(series(result, nodes=size, algorithm=algorithm),
                      result, "seconds")[0]
            for size in sizes
        ]
        # biggest grid slower than smallest...
        assert per_size[-1] >= per_size[0]
        # ...but no worse than ~N^4 growth between consecutive sizes
        for (n1, t1), (n2, t2) in zip(
            zip(sizes, per_size), zip(sizes[1:], per_size[1:])
        ):
            if t1 > 1e-4:  # below that, timer noise dominates
                assert t2 / t1 <= ((n2 / n1) ** 4) * 2, (algorithm, n1, n2)
