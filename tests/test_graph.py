"""Unit tests for the core Graph type."""

import pytest

from repro.errors import EdgeNotFoundError, NodeNotFoundError
from repro.graphs import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_from_edge_list(self):
        g = Graph([(0, 1), (1, 2)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_from_weighted_edges(self):
        g = Graph([(0, 1, 2.5)])
        assert g.weight(0, 1) == 2.5

    def test_bad_edge_tuple_rejected(self):
        with pytest.raises(ValueError):
            Graph([(0,)])

    def test_mixed_edge_tuples(self):
        g = Graph([(0, 1), (1, 2, 3.0)])
        assert g.weight(0, 1) == 1.0
        assert g.weight(1, 2) == 3.0


class TestNodes:
    def test_add_node(self):
        g = Graph()
        g.add_node("a")
        assert "a" in g
        assert g.num_nodes == 1

    def test_add_node_idempotent(self):
        g = Graph([(0, 1)])
        g.add_node(0)
        assert g.num_nodes == 2
        assert g.has_edge(0, 1)

    def test_add_nodes_bulk(self):
        g = Graph()
        g.add_nodes(range(5))
        assert g.num_nodes == 5

    def test_remove_node_removes_incident_edges(self):
        g = Graph([(0, 1), (1, 2), (0, 2)])
        g.remove_node(1)
        assert 1 not in g
        assert g.num_edges == 1
        assert g.has_edge(0, 2)

    def test_remove_missing_node_raises(self):
        g = Graph()
        with pytest.raises(NodeNotFoundError):
            g.remove_node(7)

    def test_len_and_iter(self):
        g = Graph([(0, 1), (1, 2)])
        assert len(g) == 3
        assert sorted(g) == [0, 1, 2]

    def test_insertion_order_preserved(self):
        g = Graph()
        for node in [5, 3, 9, 1]:
            g.add_node(node)
        assert list(g.nodes()) == [5, 3, 9, 1]

    def test_hashable_node_types(self):
        g = Graph()
        g.add_edge("a", (1, 2))
        assert g.has_edge((1, 2), "a")


class TestEdges:
    def test_add_edge_creates_nodes(self):
        g = Graph()
        g.add_edge(0, 1)
        assert 0 in g and 1 in g

    def test_edge_is_undirected(self):
        g = Graph([(0, 1, 3.0)])
        assert g.has_edge(1, 0)
        assert g.weight(1, 0) == 3.0

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_negative_weight_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -1.0)

    def test_readd_edge_overwrites_weight(self):
        g = Graph([(0, 1, 1.0)])
        g.add_edge(0, 1, 9.0)
        assert g.weight(0, 1) == 9.0
        assert g.num_edges == 1

    def test_remove_edge(self):
        g = Graph([(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert 0 in g  # endpoints stay

    def test_remove_missing_edge_raises(self):
        g = Graph([(0, 1)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(0, 2)

    def test_weight_missing_edge_raises(self):
        g = Graph([(0, 1)])
        with pytest.raises(EdgeNotFoundError):
            g.weight(1, 2)

    def test_edges_yield_each_once(self):
        g = Graph([(0, 1), (1, 2), (0, 2)])
        edges = list(g.edges())
        assert len(edges) == 3
        keys = {frozenset((u, v)) for u, v, _ in edges}
        assert len(keys) == 3

    def test_num_edges(self):
        g = Graph([(0, 1), (1, 2), (2, 3)])
        assert g.num_edges == 3


class TestNeighborhood:
    def test_neighbors(self):
        g = Graph([(0, 1), (0, 2)])
        assert sorted(g.neighbors(0)) == [1, 2]

    def test_neighbors_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            list(Graph().neighbors(0))

    def test_degree(self):
        g = Graph([(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_degree_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            Graph().degree(5)

    def test_adjacency_returns_copy(self):
        g = Graph([(0, 1, 2.0)])
        adj = g.adjacency(0)
        adj[99] = 1.0
        assert 99 not in dict(g.adjacency(0))


class TestDerivation:
    def test_copy_is_deep(self):
        g = Graph([(0, 1, 2.0)])
        h = g.copy()
        h.add_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert h.weight(0, 1) == 2.0

    def test_subgraph_induced(self):
        g = Graph([(0, 1), (1, 2), (2, 3), (0, 3)])
        sub = g.subgraph([0, 1, 2])
        assert sub.num_nodes == 3
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)
        assert not sub.has_edge(0, 3)

    def test_subgraph_missing_node_raises(self):
        g = Graph([(0, 1)])
        with pytest.raises(NodeNotFoundError):
            g.subgraph([0, 5])

    def test_subgraph_keeps_weights(self):
        g = Graph([(0, 1, 7.0), (1, 2, 3.0)])
        sub = g.subgraph([0, 1])
        assert sub.weight(0, 1) == 7.0

    def test_relabeled(self):
        g = Graph([(0, 1, 2.0)])
        h = g.relabeled({0: "a"})
        assert h.has_edge("a", 1)
        assert h.weight("a", 1) == 2.0
        assert 0 not in h

    def test_grid_fixture_shape(self, grid4):
        assert grid4.num_nodes == 16
        assert grid4.num_edges == 24
        assert grid4.degree(5) == 4   # interior
        assert grid4.degree(0) == 2   # corner
