"""Tests for the fault-injection layer (``repro.distributed.faults``).

Covers the three fault-plane modes, the no-op golden contract (with all
fault knobs at their defaults the protocol reproduces a pre-fault-plane
snapshot byte for byte), determinism under faults, churn semantics, and
the 100%-loss / retry-budget termination path.  This module doubles as
the CI fault-injection smoke job.
"""

import json
from pathlib import Path

import pytest

from repro.distributed import (
    ChurnEvent,
    DistributedConfig,
    FaultStats,
    solve_distributed,
)
from repro.distributed.faults import (
    FULL,
    LEGACY_LOSS,
    PASSTHROUGH,
    normalize_churn,
)
from repro.errors import SimulationError
from repro.workloads import grid_problem, random_problem

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_noop_dist.json"


def _snapshot(problem, config=None):
    outcome = solve_distributed(problem, config)
    return {
        "caches": [
            sorted(map(str, chunk.caches)) for chunk in outcome.placement.chunks
        ],
        "messages": outcome.stats.messages,
        "transmissions": outcome.stats.transmissions,
        "ticks": outcome.ticks_per_chunk,
        "sim_events": outcome.sim_events,
    }


def _canon(snapshot) -> str:
    return json.dumps(snapshot, sort_keys=True)


class TestNoOpContract:
    """With every fault knob at its default, placements and MessageStats
    must be byte-identical to the snapshot taken before the fault plane
    existed (ISSUE 8 acceptance criterion)."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

    def test_grid_byte_identical(self, golden):
        assert _canon(_snapshot(grid_problem(6))) == _canon(golden["grid6"])

    def test_random_byte_identical(self, golden):
        problem, _ = random_problem(40, seed=7)
        assert _canon(_snapshot(problem)) == _canon(golden["random40_seed7"])

    def test_random_multichunk_byte_identical(self, golden):
        problem, _ = random_problem(25, seed=11, num_chunks=3)
        assert _canon(_snapshot(problem)) == _canon(golden["random25_seed11"])

    def test_legacy_loss_stream_byte_identical(self, golden):
        """loss_rate alone replays the historical RNG stream exactly."""
        snapshot = _snapshot(
            grid_problem(6), DistributedConfig(loss_rate=0.2, loss_seed=7)
        )
        assert _canon(snapshot) == _canon(golden["grid6_loss"])

    def test_passthrough_reports_no_faults(self):
        outcome = solve_distributed(grid_problem(4))
        assert outcome.faults is None


class TestModeResolution:
    def _plane(self, **kwargs):
        from repro.distributed import FaultPlane, MessageStats, Simulator
        from repro.obs import get_tracer

        defaults = dict(
            sim=Simulator(), stats=MessageStats(), trace=get_tracer(),
            chunk=0, hop_latency=0.001,
        )
        defaults.update(kwargs)
        return FaultPlane(**defaults)

    def test_default_is_passthrough(self):
        assert self._plane().mode == PASSTHROUGH

    def test_loss_only_is_legacy(self):
        assert self._plane(loss_rate=0.3).mode == LEGACY_LOSS

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"jitter": 0.01},
            {"retx_timeout": 0.5},
            {"churn": ((1.0, "n", "leave"),)},
        ],
    )
    def test_any_full_knob_engages_full_mode(self, kwargs):
        assert self._plane(**kwargs).mode == FULL

    def test_legacy_rejects_total_loss(self):
        with pytest.raises(SimulationError):
            self._plane(loss_rate=1.0)

    def test_full_mode_allows_total_loss(self):
        assert self._plane(loss_rate=1.0, retx_timeout=0.5).mode == FULL

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss_rate": -0.1},
            {"jitter": -1.0},
            {"retx_timeout": -1.0},
            {"retx_timeout": 0.5, "max_retries": -1},
            {"loss_rate": 1.5, "jitter": 0.1},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            self._plane(**kwargs)


class TestChurn:
    def test_tuple_normalization(self):
        events = normalize_churn([(1.0, 5, "leave"), ChurnEvent(2.0, 5, "join")])
        assert [e.kind for e in events] == ["leave", "join"]

    @pytest.mark.parametrize(
        "entry", [(1.0, 5, "reboot"), (-1.0, 5, "leave"), (1.0, 5), "leave"]
    )
    def test_invalid_entries_rejected(self, entry):
        with pytest.raises(SimulationError):
            normalize_churn([entry])

    def test_producer_may_never_churn(self):
        problem = grid_problem(4)
        config = DistributedConfig(
            churn_schedule=((1.0, problem.producer, "leave"),)
        )
        with pytest.raises(SimulationError, match="producer"):
            solve_distributed(problem, config)

    def test_unknown_node_rejected(self):
        config = DistributedConfig(churn_schedule=((1.0, "nope", "leave"),))
        with pytest.raises(SimulationError, match="unknown node"):
            solve_distributed(grid_problem(4), config)

    def test_permanent_leaver_falls_back_to_producer(self):
        problem = grid_problem(4, num_chunks=1)
        leaver = 7
        config = DistributedConfig(churn_schedule=((2.0, leaver, "leave"),))
        outcome = solve_distributed(problem, config)
        outcome.placement.validate()
        report = outcome.faults
        assert report is not None
        assert report.stats.leaves == 1
        assert not report.converged
        assert leaver in report.unserved[0]
        # The unserved node is still committed — against the producer.
        assignment = outcome.placement.chunks[0].assignment
        assert assignment[leaver] == problem.producer

    def test_leave_and_rejoin_converges(self):
        problem = grid_problem(4, num_chunks=1)
        config = DistributedConfig(
            churn_schedule=((2.0, 7, "leave"), (6.0, 7, "join"))
        )
        outcome = solve_distributed(problem, config)
        report = outcome.faults
        assert report.stats.leaves == 1
        assert report.stats.joins == 1
        assert report.converged


class TestDeterminism:
    """Same seed + same (loss, jitter, churn, retx) config ⇒ byte-identical
    MessageStats and placement JSON."""

    CONFIG = DistributedConfig(
        loss_rate=0.2,
        jitter=0.01,
        retx_timeout=0.5,
        max_retries=3,
        churn_schedule=((2.0, 7, "leave"), (6.0, 7, "join")),
        fault_seed=13,
    )

    def test_repeat_runs_are_byte_identical(self):
        problem = grid_problem(5, num_chunks=2)
        first = _snapshot(problem, self.CONFIG)
        second = _snapshot(problem, self.CONFIG)
        assert _canon(first) == _canon(second)

    def test_fault_stats_are_deterministic(self):
        problem = grid_problem(5, num_chunks=2)
        a = solve_distributed(problem, self.CONFIG).faults.stats
        b = solve_distributed(problem, self.CONFIG).faults.stats
        assert a == b

    def test_different_seed_changes_the_run(self):
        problem = grid_problem(5, num_chunks=2)
        base = solve_distributed(problem, self.CONFIG).faults.stats
        other_config = DistributedConfig(
            loss_rate=self.CONFIG.loss_rate,
            jitter=self.CONFIG.jitter,
            retx_timeout=self.CONFIG.retx_timeout,
            max_retries=self.CONFIG.max_retries,
            churn_schedule=self.CONFIG.churn_schedule,
            fault_seed=14,
        )
        other = solve_distributed(problem, other_config).faults.stats
        assert base != other


class TestTotalLoss:
    """100% loss must terminate through the retry budget with a partial
    placement report — never hang (ISSUE 8 edge case)."""

    def test_terminates_with_partial_placement(self):
        problem = grid_problem(4, num_chunks=2)
        config = DistributedConfig(
            loss_rate=1.0, retx_timeout=0.5, max_retries=2
        )
        outcome = solve_distributed(problem, config)
        outcome.placement.validate()
        report = outcome.faults
        assert not report.converged
        # Nothing was ever delivered: every non-producer node of every
        # chunk is unserved and assigned to the producer.
        nodes = problem.graph.num_nodes - 1
        assert report.total_unserved == nodes * 2
        assert outcome.stats.total_messages() == 0
        for chunk in outcome.placement.chunks:
            assert not chunk.caches
            assert all(
                server == problem.producer
                for server in chunk.assignment.values()
            )
        # Retry budgets were actually exercised and exhausted.
        assert report.stats.total_exhausted() > 0
        assert report.stats.total_drops() > 0


class TestRetransmission:
    def test_retx_only_matches_fault_free_run(self):
        """With zero loss, no jitter and no churn, the ack/retransmission
        machinery must not change the placement or the Table II census —
        every message arrives on the first attempt and duplicates never
        happen."""
        problem = grid_problem(5, num_chunks=2)
        base = _snapshot(problem)
        retx = solve_distributed(
            problem, DistributedConfig(retx_timeout=0.5)
        )
        assert [
            sorted(map(str, c.caches)) for c in retx.placement.chunks
        ] == base["caches"]
        assert retx.stats.messages == base["messages"]
        stats = retx.faults.stats
        assert stats.total_retx() == 0
        assert stats.total_duplicates() == 0
        assert stats.acks == retx.stats.total_messages()

    def test_loss_with_retx_converges_and_retransmits(self):
        """The CI smoke configuration: 20% loss, one churn episode, acked
        retransmission — must converge on a small grid."""
        problem = grid_problem(5, num_chunks=2)
        config = DistributedConfig(
            loss_rate=0.2,
            retx_timeout=0.5,
            max_retries=3,
            churn_schedule=((3.0, 7, "leave"), (8.0, 7, "join")),
            fault_seed=2017,
        )
        outcome = solve_distributed(problem, config)
        outcome.placement.validate()
        report = outcome.faults
        assert report.converged
        assert report.stats.total_drops() > 0
        assert report.stats.total_retx() > 0
        assert report.stats.acks > 0

    def test_lost_acks_cause_suppressed_duplicates(self):
        problem = grid_problem(5, num_chunks=2)
        config = DistributedConfig(
            loss_rate=0.3, retx_timeout=0.5, max_retries=3, fault_seed=1
        )
        outcome = solve_distributed(problem, config)
        stats = outcome.faults.stats
        # A lost ack forces a retransmission of an already-delivered
        # message; the receiver's seen-set suppresses it.
        assert stats.ack_drops > 0
        assert stats.total_duplicates() > 0


class TestFaultStats:
    def test_merge_accumulates(self):
        a = FaultStats(drops={"TIGHT": 2}, acks=1, leaves=1)
        b = FaultStats(drops={"TIGHT": 3, "SPAN": 1}, acks=4, joins=2)
        a.merge(b)
        assert a.drops == {"TIGHT": 5, "SPAN": 1}
        assert a.acks == 5
        assert a.leaves == 1
        assert a.joins == 2

    def test_legacy_loss_outcome_reports_drops(self):
        outcome = solve_distributed(
            grid_problem(5), DistributedConfig(loss_rate=0.3, loss_seed=3)
        )
        report = outcome.faults
        assert report is not None
        assert report.converged  # legacy loss cannot leave nodes unserved
        assert report.stats.total_drops() > 0
        # Legacy mode never drops floods.
        assert set(report.stats.drops) <= {"TIGHT", "SPAN", "FREEZE", "NADMIN"}
