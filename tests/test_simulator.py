"""Unit tests for the discrete-event simulator."""

import pytest

from repro.distributed import Simulator
from repro.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_fifo_at_same_time(self):
        sim = Simulator()
        fired = []
        for label in "abc":
            sim.schedule(1.0, lambda l=label: fired.append(l))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0


class TestControl:
    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_cancel_event(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        assert handle.cancelled
        sim.run()
        assert fired == []

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_runaway_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending == 1


class TestScheduleAtRounding:
    """Regression: chained float additions accumulate sub-nanosecond
    residue; scheduling "at now" computed through that chain must not
    raise (PR 6's batched engine had to mirror the rounding chain to
    dodge this)."""

    def test_tiny_negative_residue_clamped(self):
        sim = Simulator()
        # Drive `now` through a chain of additions that does not round
        # to the same float as the direct sum.
        times = [0.1 * i for i in range(1, 8)]
        for t in times:
            sim.schedule_at(t, lambda: None)
        sim.run()
        target = sim.now - 1e-13  # residue-sized "past" time
        fired = []
        sim.schedule_at(target, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [sim.now]

    def test_fires_immediately_at_current_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        fired = []
        sim.schedule_at(sim.now, lambda: fired.append(True))
        sim.run()
        assert fired == [True]

    def test_genuinely_past_times_still_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)


class TestCancelledEventCompaction:
    """Regression: cancelled events used to sit in the heap until popped,
    so mass-cancelled retransmission timers grew the queue unbounded and
    ``pending`` was O(n) per call."""

    def test_queue_compacts_when_mostly_cancelled(self):
        sim = Simulator()
        keeper = sim.schedule(100.0, lambda: None)
        handles = [sim.schedule(1.0 + i, lambda: None) for i in range(1000)]
        for handle in handles:
            handle.cancel()
        # Lazy compaction triggers once cancelled entries outnumber live
        # ones: the raw heap must have shrunk to just the live event.
        assert len(sim._queue) < 10
        assert sim.pending == 1
        assert not keeper.cancelled

    def test_pending_is_live_count(self):
        sim = Simulator()
        handles = [sim.schedule(1.0, lambda: None) for _ in range(10)]
        for handle in handles[:4]:
            handle.cancel()
        assert sim.pending == 6

    def test_max_queue_depth_counts_live_only(self):
        sim = Simulator()
        handles = [sim.schedule(1.0 + i, lambda: None) for i in range(50)]
        for handle in handles:
            handle.cancel()
        # Scheduling after the mass-cancel must not report a high-water
        # mark inflated by the cancelled corpses.
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.max_queue_depth == 50

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(True))
        sim.schedule(2.0, lambda: None)
        sim.run()
        handle.cancel()  # already fired: must not corrupt the live count
        assert fired == [True]
        assert not handle.cancelled
        assert sim.pending == 0
