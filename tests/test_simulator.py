"""Unit tests for the discrete-event simulator."""

import pytest

from repro.distributed import Simulator
from repro.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_fifo_at_same_time(self):
        sim = Simulator()
        fired = []
        for label in "abc":
            sim.schedule(1.0, lambda l=label: fired.append(l))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0


class TestControl:
    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_cancel_event(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        assert handle.cancelled
        sim.run()
        assert fired == []

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_runaway_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending == 1
