"""Direct unit tests for the local-search optimum finder internals."""

import math

import pytest

from repro.core import build_confl_instance, dual_ascent
from repro.exact.local_search import (
    MAX_EXACT_TERMINALS,
    _ChunkObjective,
    optimize_chunk_local,
)
from repro.workloads import grid_problem


@pytest.fixture
def instance():
    return build_confl_instance(grid_problem(4, num_chunks=1).new_state())


@pytest.fixture
def objective(instance):
    return _ChunkObjective(instance, MAX_EXACT_TERMINALS)


class TestChunkObjective:
    def test_empty_set_is_producer_only(self, instance, objective):
        cost = objective.evaluate(frozenset())
        manual = sum(
            instance.connect_cost[instance.producer][j]
            for j in instance.clients
        )
        assert cost == pytest.approx(manual)

    def test_tree_cost_cached(self, objective):
        caches = frozenset({0, 15})
        first = objective.tree_cost(caches)
        assert objective.tree_cost(caches) == first
        assert caches in objective._tree_cost_cache

    def test_empty_tree_free(self, objective):
        assert objective.tree_cost(frozenset()) == 0.0
        cost, edges = objective.exact_tree(frozenset())
        assert cost == 0.0 and edges == []

    def test_exact_tree_cost_leq_kmb(self, objective):
        caches = frozenset({0, 3, 12, 15})
        exact_cost, _ = objective.exact_tree(caches)
        assert exact_cost <= objective.tree_cost(caches) + 1e-9

    def test_exact_tree_edges_are_graph_edges(self, instance, objective):
        caches = frozenset({0, 10})
        _, edges = objective.exact_tree(caches)
        for u, v in edges:
            assert instance.steiner_graph.has_edge(u, v)

    def test_assignment_prefers_self(self, objective):
        assignment = objective.assignment(frozenset({1, 14}))
        assert assignment[1] == 1
        assert assignment[14] == 14

    def test_evaluate_monotone_components(self, instance, objective):
        """Adding a facility never raises the access component."""
        small = frozenset({5})
        large = frozenset({5, 10})
        assert objective.access_cost(large) <= objective.access_cost(small)

    def test_infinite_cost_facilities_excluded(self):
        problem = grid_problem(3, num_chunks=1, capacity=1)
        state = problem.new_state()
        state.cache(0, 0)  # node 0 now full
        inst = build_confl_instance(state)
        obj = _ChunkObjective(inst, MAX_EXACT_TERMINALS)
        assert 0 not in obj.facilities


class TestOptimizeChunkLocal:
    def test_result_is_local_optimum_for_single_moves(self, instance):
        caches, _, _, best = optimize_chunk_local(instance)
        objective = _ChunkObjective(instance, MAX_EXACT_TERMINALS)
        current = frozenset(caches)
        # no single add or drop improves the (KMB-priced) objective by
        # more than the exact-repricing slack
        base = objective.evaluate(current)
        for i in objective.facilities:
            if i in current:
                continue
            assert objective.evaluate(current | {i}) >= base - 1e-6
        for i in current:
            assert objective.evaluate(current - {i}) >= base - 1e-6

    def test_warm_start_never_hurts(self, instance):
        cold = optimize_chunk_local(instance)[3]
        warm_set = dual_ascent(instance).admins
        warm = optimize_chunk_local(instance, starts=[warm_set])[3]
        assert warm <= cold + 1e-9

    def test_invalid_start_nodes_filtered(self, instance):
        caches, _, _, _ = optimize_chunk_local(
            instance, starts=[[instance.producer, "ghost", 1]]
        )
        assert instance.producer not in caches
        assert "ghost" not in caches

    def test_assignment_complete(self, instance):
        caches, assignment, _, _ = optimize_chunk_local(instance)
        assert set(assignment) == set(instance.clients)
        allowed = set(caches) | {instance.producer}
        assert set(assignment.values()) <= allowed
