"""Unit tests for the text visualization helpers."""

import pytest

from repro.core import solve_approximation
from repro.viz import (
    render_delta_map,
    render_grid_loads,
    render_grid_placement,
    render_load_histogram,
)
from repro.workloads import grid_problem


class TestGridLoads:
    def test_basic_map(self):
        text = render_grid_loads(2, {0: 1, 1: 0, 2: 2, 3: 0}, producer=3)
        rows = text.splitlines()
        assert len(rows) == 2
        assert "1" in rows[0] and "." in rows[0]
        assert "2" in rows[1] and "*" in rows[1]

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            render_grid_loads(0, {})

    def test_placement_rendering(self):
        problem = grid_problem(4, num_chunks=2)
        placement = solve_approximation(problem)
        text = render_grid_placement(placement)
        assert len(text.splitlines()) == 4
        assert "*" in text  # the producer marker

    def test_non_square_rejected(self):
        from repro.core import CachingProblem
        from repro.graphs import path_graph

        problem = CachingProblem(graph=path_graph(5), producer=0, num_chunks=1)
        placement = solve_approximation(problem)
        with pytest.raises(ValueError):
            render_grid_placement(placement)

    def test_explicit_side(self):
        problem = grid_problem(3, num_chunks=1)
        placement = solve_approximation(problem)
        text = render_grid_placement(placement, side=3)
        assert len(text.splitlines()) == 3


class TestHistogram:
    def test_counts(self):
        text = render_load_histogram([0, 1, 1, 2], width=4)
        lines = text.splitlines()
        assert lines[0].startswith("0 chunks | 1 node(s)")
        assert lines[1].startswith("1 chunks | 2 node(s)")

    def test_empty(self):
        assert render_load_histogram([]) == "(no nodes)"

    def test_bar_scaling(self):
        text = render_load_histogram([0] * 10 + [1], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 1

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            render_load_histogram([1], width=0)


class TestDeltaMap:
    def test_signed_rendering(self):
        text = render_delta_map(
            2, {0: 3, 1: 0, 2: 1, 3: 0}, {0: 1, 1: 1, 2: 1, 3: 0},
            producer=3,
        )
        assert "+2" in text
        assert "-1" in text
        assert "*" in text
        assert "." in text

    def test_zero_when_identical(self):
        text = render_delta_map(2, {0: 1}, {0: 1})
        assert "+" not in text and "-" not in text
