"""Unit tests for the distributed algorithm (Algorithm 2)."""

import pytest

from repro.distributed import (
    ALL_TYPES,
    DistributedConfig,
    MessageStats,
    solve_distributed,
)
from repro.errors import SimulationError
from repro.metrics import evaluate_contention
from repro.workloads import grid_problem


class TestMessageStats:
    def test_record(self):
        stats = MessageStats()
        stats.record("NPI", 3)
        assert stats.messages["NPI"] == 1
        assert stats.transmissions["NPI"] == 3

    def test_zero_hops_count_one_transmission(self):
        stats = MessageStats()
        stats.record("CC", 0)
        assert stats.transmissions["CC"] == 1

    def test_totals(self):
        stats = MessageStats()
        stats.record("TIGHT", 1)
        stats.record("SPAN", 2)
        assert stats.total_messages() == 2
        assert stats.total_transmissions() == 3

    def test_merge(self):
        a, b = MessageStats(), MessageStats()
        a.record("NPI", 1)
        b.record("NPI", 2)
        a.merge(b)
        assert a.messages["NPI"] == 2
        assert a.transmissions["NPI"] == 3

    def test_all_types_present(self):
        stats = MessageStats()
        assert set(stats.messages) == set(ALL_TYPES)


class TestDistributedAlgorithm:
    def test_feasible_placement(self, small_problem):
        outcome = solve_distributed(small_problem)
        outcome.placement.validate()
        assert outcome.placement.algorithm == "distributed"

    def test_deterministic(self, small_problem):
        a = solve_distributed(small_problem)
        b = solve_distributed(small_problem)
        assert [c.caches for c in a.placement.chunks] == [
            c.caches for c in b.placement.chunks
        ]
        assert a.stats.messages == b.stats.messages

    def test_every_chunk_recorded(self, small_problem):
        outcome = solve_distributed(small_problem)
        assert len(outcome.placement.chunks) == small_problem.num_chunks
        assert len(outcome.ticks_per_chunk) == small_problem.num_chunks

    def test_message_types_used(self, paper_problem):
        outcome = solve_distributed(paper_problem)
        stats = outcome.stats
        assert stats.messages["NPI"] > 0
        assert stats.messages["CC"] > 0
        assert stats.messages["TIGHT"] > 0
        assert stats.messages["SPAN"] > 0

    def test_npi_count_is_chunks_times_clients(self, paper_problem):
        outcome = solve_distributed(paper_problem)
        expected = paper_problem.num_chunks * len(paper_problem.clients)
        assert outcome.stats.messages["NPI"] == expected

    def test_hop_limit_must_be_positive(self, small_problem):
        with pytest.raises(SimulationError):
            solve_distributed(small_problem, DistributedConfig(hop_limit=0))

    def test_bad_span_policy_rejected(self, small_problem):
        with pytest.raises(SimulationError):
            solve_distributed(
                small_problem, DistributedConfig(span_policy="everything")
            )

    def test_k1_degrades_with_high_threshold(self):
        problem = grid_problem(6)
        config1 = DistributedConfig(hop_limit=1, span_threshold=4)
        config2 = DistributedConfig(hop_limit=2, span_threshold=4)
        cost1 = evaluate_contention(
            solve_distributed(problem, config1).placement
        ).access
        cost2 = evaluate_contention(
            solve_distributed(problem, config2).placement
        ).access
        caches1 = solve_distributed(problem, config1).placement.total_copies()
        caches2 = solve_distributed(problem, config2).placement.total_copies()
        assert caches1 < caches2  # k=1: "very few caching nodes"
        assert cost1 > cost2     # and high accessing cost (Fig. 3)

    def test_storage_feeds_forward(self, paper_problem):
        outcome = solve_distributed(paper_problem)
        sets = [c.caches for c in outcome.placement.chunks]
        # fairness: chunk sets are not all identical (unlike baselines)
        assert len(set(sets)) > 1

    def test_capacity_respected(self):
        problem = grid_problem(3, num_chunks=8, capacity=2)
        outcome = solve_distributed(problem)
        outcome.placement.validate()
        assert max(outcome.placement.loads().values()) <= 2

    def test_unserialized_promotions_overopen(self, paper_problem):
        serial = solve_distributed(
            paper_problem, DistributedConfig(serialize_promotions=True)
        )
        racy = solve_distributed(
            paper_problem, DistributedConfig(serialize_promotions=False)
        )
        assert racy.placement.total_copies() >= serial.placement.total_copies()

    def test_gamma_zero_start_underopens(self, paper_problem):
        aligned = solve_distributed(
            paper_problem, DistributedConfig(gamma_from_alpha=True)
        )
        literal = solve_distributed(
            paper_problem, DistributedConfig(gamma_from_alpha=False)
        )
        assert (
            literal.placement.total_copies()
            <= aligned.placement.total_copies()
        )

    def test_producer_only_fallback_terminates(self):
        # capacity 0 everywhere: no facility can ever open, every client
        # must freeze to the producer.
        problem = grid_problem(3, num_chunks=2, capacity=0)
        outcome = solve_distributed(problem)
        outcome.placement.validate()
        for chunk in outcome.placement.chunks:
            assert not chunk.caches


class TestLossInjection:
    def test_protocol_survives_loss(self):
        problem = grid_problem(4, num_chunks=3)
        outcome = solve_distributed(
            problem, DistributedConfig(loss_rate=0.3, loss_seed=1)
        )
        outcome.placement.validate()  # everyone still served

    def test_loss_is_deterministic(self):
        problem = grid_problem(4, num_chunks=2)
        config = DistributedConfig(loss_rate=0.2, loss_seed=7)
        a = solve_distributed(problem, config)
        b = solve_distributed(problem, config)
        assert [c.caches for c in a.placement.chunks] == [
            c.caches for c in b.placement.chunks
        ]

    def test_loss_degrades_not_breaks(self):
        problem = grid_problem(6)
        clean = solve_distributed(problem)
        lossy = solve_distributed(
            problem, DistributedConfig(loss_rate=0.5, loss_seed=3)
        )
        lossy.placement.validate()
        # fewer control messages get through, so fewer caches open
        assert (
            lossy.placement.total_copies() <= clean.placement.total_copies()
        )

    def test_invalid_loss_rate(self):
        problem = grid_problem(3, num_chunks=1)
        with pytest.raises(SimulationError):
            solve_distributed(problem, DistributedConfig(loss_rate=1.0))

    def test_extreme_loss_falls_back_to_producer(self):
        problem = grid_problem(4, num_chunks=2)
        outcome = solve_distributed(
            problem, DistributedConfig(loss_rate=0.99, loss_seed=5)
        )
        outcome.placement.validate()
        # almost no control traffic lands: placements are producer-heavy
        for chunk in outcome.placement.chunks:
            producer_served = sum(
                1 for s in chunk.assignment.values()
                if s == problem.producer
            )
            assert producer_served >= len(problem.clients) // 2
