"""Unit tests for topology generators."""

import pytest

from repro.errors import GraphError
from repro.graphs import (
    balanced_tree,
    complete_graph,
    connected_random_network,
    cycle_graph,
    erdos_renyi_connected,
    grid_coordinates,
    grid_graph,
    is_connected,
    path_graph,
    random_geometric_graph,
    star_graph,
)


class TestGrid:
    def test_square_grid_counts(self):
        g = grid_graph(6)
        assert g.num_nodes == 36
        assert g.num_edges == 2 * 6 * 5

    def test_rectangular_grid(self):
        g = grid_graph(2, 3)
        assert g.num_nodes == 6
        assert g.num_edges == 7

    def test_degrees(self):
        g = grid_graph(5)
        assert g.degree(0) == 2          # corner
        assert g.degree(2) == 3          # edge
        assert g.degree(12) == 4         # interior

    def test_row_major_labels(self):
        g = grid_graph(3)
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 3)
        assert not g.has_edge(2, 3)  # row wrap must not connect

    def test_single_node(self):
        g = grid_graph(1)
        assert g.num_nodes == 1
        assert g.num_edges == 0

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            grid_graph(0)

    def test_coordinates(self):
        coords = grid_coordinates(3)
        assert coords[0] == (0, 0)
        assert coords[5] == (1, 2)
        assert coords[8] == (2, 2)

    def test_connected(self):
        assert is_connected(grid_graph(7))


class TestRandomGeometric:
    def test_deterministic_by_seed(self):
        g1, p1 = random_geometric_graph(25, 0.3, seed=5)
        g2, p2 = random_geometric_graph(25, 0.3, seed=5)
        assert p1 == p2
        assert sorted(g1.edges()) == sorted(g2.edges())

    def test_connected_when_requested(self):
        g, _ = random_geometric_graph(30, 0.3, seed=1, ensure_connected=True)
        assert is_connected(g)

    def test_radius_controls_edges(self):
        sparse, _ = random_geometric_graph(
            30, 0.15, seed=3, ensure_connected=False
        )
        dense, _ = random_geometric_graph(
            30, 0.5, seed=3, ensure_connected=False
        )
        assert dense.num_edges > sparse.num_edges

    def test_impossible_connectivity_raises(self):
        with pytest.raises(GraphError):
            random_geometric_graph(
                50, 0.01, seed=0, ensure_connected=True, max_attempts=3
            )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            random_geometric_graph(0, 0.3)
        with pytest.raises(ValueError):
            random_geometric_graph(5, 0.0)

    def test_positions_within_area(self):
        _, pos = random_geometric_graph(
            20, 0.4, seed=2, area=2.0, ensure_connected=False
        )
        for x, y in pos.values():
            assert 0 <= x <= 2.0 and 0 <= y <= 2.0


class TestConnectedRandomNetwork:
    @pytest.mark.parametrize("n", [10, 40, 80])
    def test_sizes(self, n):
        g, pos = connected_random_network(n, seed=7)
        assert g.num_nodes == n
        assert is_connected(g)
        assert len(pos) == n

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            connected_random_network(1)


class TestCanonical:
    def test_path(self):
        g = path_graph(4)
        assert g.num_edges == 3
        assert g.degree(0) == 1

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(v) == 2 for v in g.nodes())

    def test_cycle_min_size(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 6
        assert g.num_nodes == 7

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 10

    def test_balanced_tree(self):
        g = balanced_tree(2, 3)
        assert g.num_nodes == 15
        assert g.num_edges == 14

    def test_balanced_tree_depth_zero(self):
        g = balanced_tree(3, 0)
        assert g.num_nodes == 1


class TestErdosRenyi:
    def test_always_connected(self):
        for seed in range(5):
            g = erdos_renyi_connected(20, 0.05, seed=seed)
            assert is_connected(g)

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            erdos_renyi_connected(5, 1.5)

    def test_p_one_is_complete(self):
        g = erdos_renyi_connected(6, 1.0, seed=0)
        assert g.num_edges == 15
