"""Tests for repro.adaptive — the closed-loop control plane.

The two load-bearing properties:

* **Quiescence** — under a stationary workload the controller never
  acts, and the final placement is the *bit-identical* one-shot
  Algorithm 1 output (the same ChunkPlacement objects, zero moves).
* **Never-worsen** — every accepted local move strictly improves the
  demand-weighted access cost net of its transfer cost, verified
  against a fresh (non-incremental) cost model under REPRO_SANITIZE.

Plus the determinism contract (byte-identical reports), the demand
export the signal layer builds on, the drift workload generators, and
the adapt surfaces of the CLI and the sweep runner.
"""

import json

import pytest

from repro.adaptive import (
    ACTION_MOVES,
    ACTION_NONE,
    ACTION_RESOLVE,
    ADAPTIVE_POLICIES,
    ADAPTIVE_SCHEMA,
    AdaptiveConfig,
    AdaptiveController,
    AdaptiveReport,
    DemandEstimator,
    DemandSnapshot,
    chunk_drift,
    run_adaptive,
)
from repro.core.approximation import solve_approximation
from repro.errors import ProblemError
from repro.serve.engine import (
    ENGINE_PER_REQUEST,
    ServeConfig,
    ServeEngine,
)
from repro.serve.workloads import (
    WORKLOADS,
    DiurnalWorkload,
    ShiftWorkload,
    ZipfWorkload,
)
from repro.workloads import grid_problem


def small_problem():
    """The paper's 4x4 grid, sized so adaptive runs take ~0.1 s."""
    return grid_problem(4, num_chunks=4, capacity=2)


def shift_workload(seed=2017, epoch_requests=1200, rate=4.0):
    """One popularity reshuffle per control epoch."""
    return ShiftWorkload(
        seed=seed, rate=rate, exponent=1.2,
        shift_period=epoch_requests / rate,
    )


# ---------------------------------------------------------------------------
# Signals: estimator and drift


class TestDemandEstimator:
    def test_first_epoch_is_the_share(self):
        est = DemandEstimator(alpha=0.5)
        est.update({("a", 0): 3, ("b", 1): 1})
        snap = est.snapshot()
        assert snap.share("a", 0) == 0.75
        assert snap.share("b", 1) == 0.25
        assert est.epochs_observed == 1

    def test_ewma_math_is_exact(self):
        est = DemandEstimator(alpha=0.5)
        est.update({("a", 0): 1})
        est.update({("b", 1): 1})
        snap = est.snapshot()
        assert snap.share("a", 0) == 0.5  # 0.5*1.0 + 0.5*0.0
        assert snap.share("b", 1) == 0.5
        assert est.epochs_observed == 2

    def test_zero_request_epoch_is_a_no_op(self):
        est = DemandEstimator()
        est.update({("a", 0): 4})
        before = est.snapshot().pairs()
        est.update({})
        assert est.snapshot().pairs() == before
        assert est.epochs_observed == 1

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_bad_alpha_rejected(self, alpha):
        with pytest.raises(ProblemError):
            DemandEstimator(alpha=alpha)

    def test_negative_counts_rejected(self):
        with pytest.raises(ProblemError):
            DemandEstimator().update({("a", 0): -1})


class TestDemandSnapshot:
    def test_marginals_and_weights(self):
        snap = DemandSnapshot({("a", 0): 0.5, ("b", 0): 0.25, ("a", 1): 0.25})
        assert snap.chunk_share(0) == 0.75
        assert snap.chunk_clients(1) == [("a", 0.25)]
        assert snap.weights(100.0) == {
            ("a", 0): 50.0, ("b", 0): 25.0, ("a", 1): 25.0,
        }
        with pytest.raises(ProblemError):
            snap.weights(-1.0)

    def test_unobserved_pairs_are_zero(self):
        assert DemandSnapshot({}).share("x", 3) == 0.0


class TestChunkDrift:
    def test_identical_snapshots_have_zero_drift(self):
        snap = DemandSnapshot({("a", 0): 0.6, ("b", 1): 0.4})
        assert chunk_drift(snap, snap, 2) == {0: 0.0, 1: 0.0}

    def test_l1_per_chunk(self):
        cur = DemandSnapshot({("a", 0): 0.8, ("a", 1): 0.2})
        ref = DemandSnapshot({("a", 0): 0.2, ("a", 1): 0.8})
        drift = chunk_drift(cur, ref, 2)
        assert drift[0] == pytest.approx(0.6)
        assert drift[1] == pytest.approx(0.6)

    def test_unknown_chunk_rejected(self):
        cur = DemandSnapshot({("a", 5): 1.0})
        with pytest.raises(ProblemError, match="unknown chunk"):
            chunk_drift(cur, DemandSnapshot({}), 2)


# ---------------------------------------------------------------------------
# Policies


class TestPolicies:
    def test_registry_is_the_full_ablation(self):
        assert sorted(ADAPTIVE_POLICIES) == [
            "hybrid", "moves-only", "resolve-only", "static",
        ]

    def test_static_never_acts(self):
        policy = ADAPTIVE_POLICIES["static"]
        assert policy.classify(99.0, 0.1, 0.3) == ACTION_NONE

    def test_hybrid_thresholds(self):
        policy = ADAPTIVE_POLICIES["hybrid"]
        assert policy.classify(0.05, 0.1, 0.3) == ACTION_NONE
        assert policy.classify(0.2, 0.1, 0.3) == ACTION_MOVES
        assert policy.classify(0.3, 0.1, 0.3) == ACTION_RESOLVE

    def test_single_mechanism_policies(self):
        # moves-only handles even heavy drift with moves; resolve-only
        # ignores moderate drift entirely.
        assert (
            ADAPTIVE_POLICIES["moves-only"].classify(0.9, 0.1, 0.3)
            == ACTION_MOVES
        )
        assert (
            ADAPTIVE_POLICIES["resolve-only"].classify(0.2, 0.1, 0.3)
            == ACTION_NONE
        )
        assert (
            ADAPTIVE_POLICIES["resolve-only"].classify(0.4, 0.1, 0.3)
            == ACTION_RESOLVE
        )


# ---------------------------------------------------------------------------
# Quiescence: stationary demand => the controller never touches anything


class TestQuiescence:
    def test_stationary_workload_is_quiescent(self):
        problem = small_problem()
        controller = AdaptiveController(
            problem,
            ZipfWorkload(seed=2017, rate=4.0, exponent=1.2),
            AdaptiveConfig(epochs=4, epoch_requests=1200),
        )
        report = controller.run()
        assert report.total_moves == 0
        assert report.total_resolves == 0
        assert report.total_adaptation_cost == 0.0
        # With zero actions the two arms price identically every epoch.
        assert report.savings == 0.0
        for record in report.epoch_records:
            assert record.drift_max < 0.1
            assert record.dirty_chunks == 0

    def test_final_placement_is_the_one_shot_output(self):
        """Not just equal — the identical ChunkPlacement objects."""
        problem = small_problem()
        controller = AdaptiveController(
            problem,
            ZipfWorkload(seed=2017, rate=4.0, exponent=1.2),
            AdaptiveConfig(epochs=4, epoch_requests=1200),
        )
        controller.run()
        baseline = solve_approximation(problem)
        for final, boot, oneshot in zip(
            controller.final_placement.chunks,
            controller.baseline_placement.chunks,
            baseline.chunks,
        ):
            assert final is boot
            assert set(final.caches) == set(oneshot.caches)


# ---------------------------------------------------------------------------
# Adaptation under drift


class TestAdaptationUnderDrift:
    def test_adaptive_beats_static_under_shift(self):
        problem = small_problem()
        report = run_adaptive(
            problem,
            shift_workload(),
            AdaptiveConfig(epochs=6, epoch_requests=1200),
        )
        assert report.total_moves > 0
        # All-in: the adaptive side already paid its transfers.
        assert report.savings > 0

    def test_static_policy_is_an_exact_control_arm(self):
        problem = small_problem()
        report = run_adaptive(
            problem,
            shift_workload(),
            AdaptiveConfig(epochs=4, epoch_requests=1200, policy="static"),
        )
        assert report.total_moves == 0
        assert report.total_resolves == 0
        assert report.savings == 0.0

    @pytest.mark.parametrize("seed", [1, 7, 2017])
    def test_accepted_moves_never_worsen(self, seed, monkeypatch):
        """Property: every accepted move clears min_gain, cross-checked
        against a fresh cost model by the REPRO_SANITIZE contract."""
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        problem = small_problem()
        report = run_adaptive(
            problem,
            shift_workload(seed=seed),
            AdaptiveConfig(epochs=5, epoch_requests=1200),
        )
        for move in report.move_records:
            assert move.gain > 0
            assert move.transfer_cost >= 0
            assert move.kind in ("cache", "evict")

    def test_last_serve_report_is_exposed(self):
        problem = small_problem()
        controller = AdaptiveController(
            problem,
            shift_workload(),
            AdaptiveConfig(epochs=3, epoch_requests=600),
        )
        report = controller.run()
        assert controller.last_serve_report is not None
        assert (
            controller.last_serve_report.completed
            == report.epoch_records[-1].requests
        )


# ---------------------------------------------------------------------------
# Churn: placement damage, not demand drift


class TestChurn:
    def _busiest_cache(self, problem):
        placement = solve_approximation(problem)
        storage = placement.final_storage()
        return max(
            problem.clients,
            key=lambda n: (len(storage.chunks_at(n)), str(n)),
        )

    def test_churn_hits_both_arms_and_adaptive_repairs(self):
        problem = small_problem()
        victim = self._busiest_cache(problem)
        report = run_adaptive(
            problem,
            ZipfWorkload(seed=2017, rate=4.0, exponent=1.2),
            AdaptiveConfig(
                epochs=6, epoch_requests=1200, policy="moves-only",
                churn_schedule=((2, victim),),
            ),
        )
        churned = [r for r in report.epoch_records if r.churned_nodes]
        assert len(churned) == 1
        assert churned[0].epoch == 2
        assert churned[0].churned_nodes == (str(victim),)
        # The wiped placement is forced into the control step: the
        # adaptive side re-replicates and wins all-in.
        assert report.total_moves > 0
        assert report.savings > 0

    def test_static_policy_cannot_repair(self):
        problem = small_problem()
        victim = self._busiest_cache(problem)
        report = run_adaptive(
            problem,
            ZipfWorkload(seed=2017, rate=4.0, exponent=1.2),
            AdaptiveConfig(
                epochs=4, epoch_requests=1200, policy="static",
                churn_schedule=((2, victim),),
            ),
        )
        # Both arms lose the same replicas and nobody acts: a wash.
        assert report.total_moves == 0
        assert report.savings == 0.0

    def test_churn_validation(self):
        problem = small_problem()
        workload = ZipfWorkload(seed=1)
        with pytest.raises(ProblemError, match="not in the graph"):
            AdaptiveController(
                problem, workload,
                AdaptiveConfig(churn_schedule=((0, "nope"),)),
            )
        with pytest.raises(ProblemError, match="producer"):
            AdaptiveController(
                problem, workload,
                AdaptiveConfig(churn_schedule=((0, problem.producer),)),
            )


# ---------------------------------------------------------------------------
# Report: byte determinism and round-trip


class TestReportDeterminism:
    def _run_once(self):
        return run_adaptive(
            small_problem(),
            shift_workload(),
            AdaptiveConfig(epochs=4, epoch_requests=800),
        )

    def test_repeat_runs_serialize_identically(self):
        assert self._run_once().to_json() == self._run_once().to_json()

    def test_dict_round_trip_is_lossless(self):
        report = self._run_once()
        clone = AdaptiveReport.from_dict(json.loads(report.to_json()))
        assert clone.to_json() == report.to_json()
        assert clone.savings == report.savings

    def test_schema_and_render(self):
        report = self._run_once()
        doc = report.to_dict()
        assert doc["schema"] == ADAPTIVE_SCHEMA
        assert len(doc["epoch_records"]) == 4
        text = report.render()
        assert "savings" in text
        assert report.workload in text


# ---------------------------------------------------------------------------
# Config validation


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"epoch_requests": -1},
            {"warmup_epochs": 0},
            {"warmup_epochs": 9, "epochs": 3},
            {"policy": "nope"},
            {"ewma_alpha": 0.0},
            {"dirty_threshold": 0.5, "resolve_threshold": 0.3},
            {"dirty_threshold": -0.1},
            {"max_moves_per_epoch": -1},
            {"max_cache_candidates": 0},
            {"min_gain": -1.0},
            {"replacement": "nope"},
            {"churn_schedule": ((-1, "a"),)},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ProblemError):
            config = AdaptiveConfig(**kwargs)
            # ewma_alpha is validated by the estimator at run time.
            if "ewma_alpha" in kwargs:
                AdaptiveController(
                    small_problem(), ZipfWorkload(seed=1), config
                ).run()

    def test_battery_problems_rejected(self):
        problem = grid_problem(
            4, num_chunks=4, capacity=2, battery_capacity=10.0
        )
        with pytest.raises(ProblemError, match="battery"):
            AdaptiveController(problem, ZipfWorkload(seed=1))


# ---------------------------------------------------------------------------
# Demand export: the signal the whole loop builds on


class TestDemandExport:
    def _engine(self, engine_name, skip):
        problem = small_problem()
        placement = solve_approximation(problem)
        config = ServeConfig(
            seed=7, engine=engine_name, skip_requests=skip,
            record_demand=True,
        )
        return ServeEngine(
            placement, ZipfWorkload(seed=7, rate=4.0), 600, config=config
        )

    @pytest.mark.parametrize("skip", [0, 500])
    def test_batched_and_per_request_export_identical_demand(self, skip):
        batched = self._engine("batched", skip)
        per_request = self._engine(ENGINE_PER_REQUEST, skip)
        batched.run()
        per_request.run()
        counts = batched.demand_counts()
        assert counts == per_request.demand_counts()
        assert sum(counts.values()) == 600

    def test_demand_off_by_default(self):
        problem = small_problem()
        placement = solve_approximation(problem)
        engine = ServeEngine(
            placement, ZipfWorkload(seed=7), 100, config=ServeConfig(seed=7)
        )
        engine.run()
        assert engine.demand_counts() == {}


# ---------------------------------------------------------------------------
# Drift workload generators


class TestDriftWorkloads:
    def test_registered(self):
        assert WORKLOADS["shift"] is ShiftWorkload
        assert WORKLOADS["diurnal"] is DiurnalWorkload

    def test_shift_stream_is_deterministic(self):
        clients = ["a", "b", "c"]
        w = ShiftWorkload(seed=5, rate=2.0, shift_period=30.0)
        stream = w.stream(clients, 4)
        first = [next(stream) for _ in range(50)]
        again = w.stream(clients, 4)
        assert first == [next(again) for _ in range(50)]

    def test_shift_batches_match_stream(self):
        clients = ["a", "b", "c"]
        w = ShiftWorkload(seed=5, rate=2.0, shift_period=30.0)
        stream = w.stream(clients, 4)
        flat = [next(stream) for _ in range(64)]
        batches = w.stream_batches(clients, 4, batch_size=16)
        unrolled = []
        while len(unrolled) < 64:
            times, cl, ch = next(batches)
            unrolled.extend(zip(times, cl, ch))
        for request, (time, client, chunk) in zip(flat, unrolled):
            assert (request.time, request.client, request.chunk) == (
                time, client, chunk,
            )

    def test_shift_actually_reshuffles_popularity(self):
        """The top chunk of early epochs differs from later ones for
        some epoch pair (a seeded permutation refresh per period)."""
        clients = ["a", "b", "c", "d"]
        w = ShiftWorkload(seed=3, rate=10.0, exponent=1.4, shift_period=50.0)
        per_epoch = {}
        for request in w.stream(clients, 5):
            if request.time >= 250.0:
                break
            epoch = int(request.time // 50.0)
            per_epoch.setdefault(epoch, {})
            per_epoch[epoch][request.chunk] = (
                per_epoch[epoch].get(request.chunk, 0) + 1
            )
        tops = {
            epoch: max(counts, key=counts.get)
            for epoch, counts in per_epoch.items()
        }
        assert len(set(tops.values())) > 1

    def test_diurnal_rate_swings(self):
        """Mid-"day" arrivals outnumber mid-"night" ones."""
        clients = ["a", "b"]
        w = DiurnalWorkload(
            seed=9, rate=5.0, period=100.0, amplitude=0.8
        )
        day = night = 0
        for request in w.stream(clients, 3):
            if request.time >= 400.0:
                break
            phase = request.time % 100.0
            if 10.0 <= phase < 40.0:
                day += 1
            elif 60.0 <= phase < 90.0:
                night += 1
        assert day > night

    def test_generator_validation(self):
        with pytest.raises(ProblemError):
            ShiftWorkload(seed=1, shift_period=0.0)
        with pytest.raises(ProblemError):
            DiurnalWorkload(seed=1, period=-1.0)
        with pytest.raises(ProblemError):
            DiurnalWorkload(seed=1, amplitude=1.0)


# ---------------------------------------------------------------------------
# CLI and sweep surfaces


class TestAdaptCLI:
    def test_adapt_json(self, capsys):
        from repro.cli import main

        status = main([
            "adapt", "--grid", "4", "--chunks", "4", "--capacity", "2",
            "--epochs", "4", "--epoch-requests", "600", "--rate", "4.0",
            "--json",
        ])
        assert status == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == ADAPTIVE_SCHEMA
        assert doc["epochs"] == 4

    def test_adapt_writes_output(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "adapt.json"
        status = main([
            "adapt", "--grid", "4", "--chunks", "4", "--capacity", "2",
            "--epochs", "3", "--epoch-requests", "400", "--rate", "4.0",
            "-o", str(out),
        ])
        assert status == 0
        assert "savings" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["schema"] == ADAPTIVE_SCHEMA

    def test_adapt_rejects_bad_names(self, capsys):
        from repro.cli import main

        assert main([
            "adapt", "--grid", "4", "--adaptive-policy", "bogus",
        ]) == 2
        assert main(["adapt", "--grid", "4", "--workload", "bogus"]) == 2
        assert main([
            "adapt", "--grid", "4", "--churn", "nonsense",
        ]) == 2

    def test_serve_adaptive_flag(self, capsys):
        from repro.cli import main

        status = main([
            "serve", "--grid", "4", "--chunks", "4", "--capacity", "2",
            "--workload", "shift", "--requests", "1200",
            "--adaptive", "--epochs", "3", "--json",
        ])
        assert status == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == ADAPTIVE_SCHEMA
        assert doc["epoch_requests"] == 400

    def test_list_mentions_adaptive_policies(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "adaptive policies:" in out
        assert "hybrid" in out
        assert "shift" in out and "diurnal" in out


class TestSweepAdaptiveAxis:
    def test_adaptive_cells_carry_the_report(self):
        from repro.sweep import SweepGrid, run_sweep

        grid = SweepGrid(
            topologies=("grid:4",),
            workloads=("shift",),
            policies=("cheapest",),
            seeds=(1,),
            requests=400,
            adaptive=("off", "hybrid"),
            epochs=2,
        )
        doc = run_sweep(grid, workers=1)
        assert len(doc["cells"]) == 2
        off, hybrid = doc["cells"]
        assert off["cell"]["adaptive"] == "off"
        assert "adaptive" not in off
        assert hybrid["cell"]["adaptive"] == "hybrid"
        assert hybrid["adaptive"]["schema"] == ADAPTIVE_SCHEMA
        rows = doc["aggregates"]
        assert sorted(r["adaptive"] for r in rows) == ["hybrid", "off"]

    def test_adaptive_axis_requires_appx(self):
        from repro.sweep import SweepGrid

        with pytest.raises(ProblemError, match="[Aa]daptive"):
            SweepGrid(algorithm="Greedy", adaptive=("hybrid",))
        with pytest.raises(ProblemError, match="adaptive"):
            SweepGrid(adaptive=("bogus",))

    def test_adaptive_axis_worker_determinism(self):
        from repro.sweep import SweepGrid, run_sweep

        grid = SweepGrid(
            topologies=("grid:4",),
            workloads=("shift",),
            policies=("cheapest",),
            seeds=(1,),
            requests=400,
            adaptive=("hybrid",),
            epochs=2,
        )
        extra = {"created_unix": 0}
        doc1 = run_sweep(grid, workers=1, manifest_extra=extra)
        doc2 = run_sweep(grid, workers=2, manifest_extra=extra)
        assert json.dumps(doc1, sort_keys=True) == json.dumps(
            doc2, sort_keys=True
        )
