"""Unit tests for the online extension (publish/expire, replacement)."""

import pytest

from repro.core import solve_approximation
from repro.errors import ProblemError
from repro.online import (
    MostReplicated,
    NeverEvict,
    OldestFirst,
    OnlineFairCache,
    expire,
    generate_workload,
    publish,
    solve_online,
)
from repro.workloads import grid_problem


class TestEvents:
    def test_publish_and_expire(self):
        p = publish(1.0, 0)
        e = expire(2.0, 0)
        assert p.kind == "publish" and e.kind == "expire"

    def test_ordering(self):
        events = sorted([publish(2.0, 1, seq=1), publish(1.0, 0, seq=0)])
        assert [e.chunk for e in events] == [0, 1]

    def test_invalid_kind_rejected(self):
        from repro.online.events import OnlineEvent

        with pytest.raises(ProblemError):
            OnlineEvent(time=0.0, seq=0, kind="vanish", chunk=0)

    def test_negative_time_rejected(self):
        with pytest.raises(ProblemError):
            publish(-1.0, 0)


class TestWorkloadGenerator:
    def test_counts_and_ordering(self):
        wl = generate_workload(10, horizon=100.0, mean_lifetime=30.0, seed=1)
        times = [e.time for e in wl]
        assert times == sorted(times)
        publishes = [e for e in wl if e.kind == "publish"]
        assert len(publishes) == 10

    def test_deterministic(self):
        a = generate_workload(8, 50.0, 20.0, seed=7)
        b = generate_workload(8, 50.0, 20.0, seed=7)
        assert list(a) == list(b)

    def test_expiries_within_horizon(self):
        wl = generate_workload(20, 50.0, 10.0, seed=3)
        for event in wl:
            assert event.time <= 50.0

    def test_every_expire_follows_its_publish(self):
        wl = generate_workload(20, 50.0, 10.0, seed=3)
        published = set()
        for event in wl:
            if event.kind == "publish":
                published.add(event.chunk)
            else:
                assert event.chunk in published

    def test_invalid_params(self):
        with pytest.raises(ProblemError):
            generate_workload(-1, 10.0, 5.0)
        with pytest.raises(ProblemError):
            generate_workload(5, 0.0, 5.0)


class TestController:
    @pytest.fixture
    def problem(self):
        return grid_problem(4, num_chunks=0)

    def test_publish_places_chunk(self, problem):
        cache = OnlineFairCache(problem)
        cache.process(publish(0.0, 0))
        assert cache.state.storage.holders(0)
        assert 0 in cache.trace.placements

    def test_expire_releases_copies(self, problem):
        cache = OnlineFairCache(problem)
        cache.process(publish(0.0, 0))
        cache.process(expire(1.0, 0))
        assert not cache.state.storage.holders(0)

    def test_expire_unknown_chunk_rejected(self, problem):
        cache = OnlineFairCache(problem)
        with pytest.raises(ProblemError):
            cache.process(expire(0.0, 5))

    def test_double_publish_rejected(self, problem):
        cache = OnlineFairCache(problem)
        cache.process(publish(0.0, 0))
        with pytest.raises(ProblemError):
            cache.process(publish(1.0, 0))

    def test_time_must_not_regress(self, problem):
        cache = OnlineFairCache(problem)
        cache.process(publish(5.0, 0))
        with pytest.raises(ProblemError):
            cache.process(publish(1.0, 1))

    def test_matches_offline_without_expiry(self):
        """With no expiries the online run IS Algorithm 1."""
        problem = grid_problem(4, num_chunks=3)
        offline = solve_approximation(problem)
        cache = OnlineFairCache(grid_problem(4, num_chunks=0))
        for chunk in range(3):
            cache.process(publish(float(chunk), chunk))
        for chunk in range(3):
            assert (
                cache.trace.placements[chunk].caches
                == offline.chunks[chunk].caches
            )

    def test_expiry_frees_room_for_future_chunks(self):
        problem = grid_problem(3, num_chunks=0, capacity=1)
        cache = OnlineFairCache(problem, policy=NeverEvict())
        for chunk in range(8):
            cache.process(publish(float(chunk), chunk))
        # 8 clients with 1 slot each are now full
        cache.process(expire(10.0, 0))
        cache.process(publish(11.0, 100))
        assert cache.trace.placements[100].caches

    def test_snapshots_recorded(self, problem):
        trace = solve_online(
            problem, [publish(0.0, 0), publish(1.0, 1), expire(2.0, 0)]
        )
        assert len(trace.snapshots) == 3
        assert trace.snapshots[-1].event_kind == "expire"
        assert trace.snapshots[-1].live_chunks == 1
        assert all(0 <= s.gini <= 1 for s in trace.snapshots)

    def test_peak_copies(self, problem):
        trace = solve_online(problem, [publish(0.0, 0)])
        assert trace.peak_copies == trace.snapshots[0].total_copies


class TestReplacement:
    def _aggressive_config(self):
        """Open facilities eagerly so storage genuinely saturates."""
        from repro.core import ApproximationConfig, DualAscentConfig

        return ApproximationConfig(dual=DualAscentConfig(span_threshold=1))

    def _saturate(self, policy):
        problem = grid_problem(3, num_chunks=0, capacity=1)
        cache = OnlineFairCache(
            problem, config=self._aggressive_config(), policy=policy
        )
        chunk = 0
        while any(cache.state.can_cache(n) for n in problem.clients):
            cache.process(publish(float(chunk), chunk))
            chunk += 1
            assert chunk < 50, "network failed to saturate"
        return cache, chunk

    def test_never_evict_leaves_chunk_uncached(self):
        cache, next_chunk = self._saturate(NeverEvict())
        cache.process(publish(100.0, 99))
        assert 99 in cache.trace.uncached_chunks
        assert cache.trace.evictions == 0

    def test_oldest_first_evicts_oldest(self):
        cache, next_chunk = self._saturate(OldestFirst())
        oldest_holders = cache.state.storage.holders(0)
        cache.process(publish(100.0, 99))
        assert cache.trace.evictions > 0
        assert cache.trace.placements[99].caches
        # the oldest chunk lost copies wherever eviction struck
        if oldest_holders:
            assert cache.state.storage.holders(0) != oldest_holders

    def test_most_replicated_prefers_redundant(self):
        cache, next_chunk = self._saturate(MostReplicated())
        replicas_before = cache._replica_counts()
        most_replicated = max(replicas_before, key=replicas_before.get)
        cache.process(publish(100.0, 99))
        assert cache.trace.evictions > 0
        assert cache.trace.placements[99].caches
        replicas_after = cache._replica_counts()
        assert (
            replicas_after.get(most_replicated, 0)
            <= replicas_before[most_replicated]
        )

    def test_run_full_workload(self):
        problem = grid_problem(4, num_chunks=0, capacity=2)
        workload = generate_workload(12, 60.0, 15.0, seed=5)
        trace = solve_online(problem, workload)
        assert len(trace.snapshots) == len(workload)
        # storage never exceeded anywhere
        state = trace  # placements committed through the state machinery
        assert trace.peak_copies <= 15 * 2  # 15 clients x capacity 2


class TestMakeRoomBookkeeping:
    """Regression: ``_make_room`` used ``replicas.get(victim, 1) - 1``,
    which silently invented a count of 1 for a victim that was never in
    the replica census — masking a buggy policy and allowing negative
    counts."""

    def _aggressive_config(self):
        from repro.core import ApproximationConfig, DualAscentConfig

        return ApproximationConfig(dual=DualAscentConfig(span_threshold=1))

    def _saturated_cache(self, policy):
        from repro.online.events import publish

        problem = grid_problem(3, num_chunks=0, capacity=1)
        cache = OnlineFairCache(
            problem, config=self._aggressive_config(), policy=policy
        )
        chunk = 0
        while any(cache.state.can_cache(n) for n in problem.clients):
            cache.process(publish(float(chunk), chunk))
            chunk += 1
            assert chunk < 50, "network failed to saturate"
        return cache

    class _PhantomVictim:
        """A broken policy returning a chunk the node does not hold."""

        name = "phantom"

        def choose_victim(self, state, node, publish_order, live_replicas):
            cached = state.storage.chunks_at(node)
            if not cached:
                return None
            # Return a chunk id that exists nowhere in the network.
            return 10_000

    def test_phantom_victim_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        # The storage layer rejects evicting a chunk the node does not
        # hold (CapacityError) before the census is ever touched.
        cache = self._saturated_cache(self._PhantomVictim())
        with pytest.raises(ProblemError):
            cache._make_room()

    def test_negative_census_caught_under_sanitize(self, monkeypatch):
        """A victim missing from the census must raise, not default to 1.

        The old ``replicas.get(victim, 1) - 1`` silently produced 0 for a
        chunk the census never saw; the fix defaults to 0 and the
        sanitizer flags the resulting negative count.
        """
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        from repro.errors import InvariantError

        cache = self._saturated_cache(OldestFirst())
        # Simulate census drift: the counts map omits every chunk even
        # though the nodes still hold them.
        monkeypatch.setattr(cache, "_replica_counts", lambda: {})
        with pytest.raises(InvariantError):
            cache._make_room()

    def test_multi_node_eviction_counts_stay_nonnegative(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        cache = self._saturated_cache(OldestFirst())
        freed = cache._make_room()
        assert freed > 0
        # The census recomputed from storage must agree with non-negative
        # bookkeeping: no chunk can have negative copies.
        assert all(v >= 0 for v in cache._replica_counts().values())
