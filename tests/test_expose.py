"""Tests for the OpenMetrics exposition (:mod:`repro.obs.expose`)."""

from __future__ import annotations

import math

import pytest

from repro.obs import Recorder, SeriesRecorder, to_openmetrics, write_openmetrics
from repro.obs.expose import sanitize_metric_name, to_openmetrics_multi


class TestNameSanitization:
    def test_dots_become_underscores_with_prefix(self):
        assert sanitize_metric_name("serve.latency_s") == "repro_serve_latency_s"

    def test_slashes_and_dashes(self):
        assert sanitize_metric_name("a/b-c") == "repro_a_b_c"

    def test_existing_prefix_not_doubled(self):
        assert sanitize_metric_name("repro_x") == "repro_x"

    def test_invalid_chars_dropped(self):
        assert sanitize_metric_name("a b(c)") == "repro_abc"

    def test_empty_and_digit_prefix_guarded(self):
        assert sanitize_metric_name("") == "repro_unnamed"
        assert sanitize_metric_name("9lives").startswith("repro_")


class TestExposition:
    def _dump(self):
        rec = Recorder()
        rec.count("dual_ascent.rounds", 42)
        rec.gauge("serve.inflight", 7)
        with rec.timer("solve"):
            pass
        return rec.dump()

    def test_counter_rendered_as_total(self):
        text = to_openmetrics(self._dump())
        assert "# TYPE repro_dual_ascent_rounds counter" in text
        assert "repro_dual_ascent_rounds_total 42" in text

    def test_timer_rendered_as_summary_with_max_gauge(self):
        text = to_openmetrics(self._dump())
        assert "# TYPE repro_solve_seconds summary" in text
        assert "repro_solve_seconds_count 1" in text
        assert "repro_solve_seconds_sum" in text
        assert "# TYPE repro_solve_max_seconds gauge" in text

    def test_gauge_rendered_last_value(self):
        text = to_openmetrics(self._dump())
        assert "# TYPE repro_serve_inflight gauge" in text
        assert "repro_serve_inflight 7" in text

    def test_ends_with_eof_terminator(self):
        text = to_openmetrics(self._dump())
        assert text.endswith("# EOF\n")

    def test_deterministic(self):
        dump = self._dump()
        assert to_openmetrics(dump) == to_openmetrics(dump)

    def test_labels_escaped_and_sorted(self):
        text = to_openmetrics(
            {"counters": {"x": 1}},
            labels={"b": 'say "hi"\n', "a": "v"},
        )
        assert 'repro_x_total{a="v",b="say \\"hi\\"\\n"} 1' in text

    def test_histogram_rendered_with_cumulative_buckets(self):
        rec = SeriesRecorder()
        for v in (0.1, 0.2, 0.4, 0.8):
            rec.observe("serve.latency_s", v)
        text = to_openmetrics(rec.dump())
        assert "# TYPE repro_serve_latency_s histogram" in text
        assert 'repro_serve_latency_s_bucket{le="+Inf"} 4' in text
        assert "repro_serve_latency_s_count 4" in text
        assert "repro_serve_latency_s_sum 1.5" in text
        # le buckets are cumulative and non-decreasing.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_serve_latency_s_bucket")
        ]
        assert counts == sorted(counts)

    def test_nonfinite_values_formatted(self):
        text = to_openmetrics(
            {"counters": {"inf": math.inf, "nan": math.nan}}
        )
        assert "repro_inf_total +Inf" in text
        assert "repro_nan_total NaN" in text

    def test_write_openmetrics(self, tmp_path):
        path = tmp_path / "metrics.txt"
        write_openmetrics(self._dump(), str(path))
        assert path.read_text().endswith("# EOF\n")


class TestMultiEntryGrouping:
    def test_families_grouped_across_entries(self):
        entries = [
            ({"counters": {"serve.requests": 10}}, {"scenario": "small"}),
            ({"counters": {"serve.requests": 20}}, {"scenario": "large"}),
        ]
        text = to_openmetrics_multi(entries)
        # One TYPE line, two labelled samples under it — the spec's
        # required grouping that naive concatenation violates.
        assert text.count("# TYPE repro_serve_requests counter") == 1
        assert 'repro_serve_requests_total{scenario="small"} 10' in text
        assert 'repro_serve_requests_total{scenario="large"} 20' in text
        type_index = text.index("# TYPE repro_serve_requests counter")
        assert text.index("scenario=\"small\"") > type_index
        assert text.index("scenario=\"large\"") > type_index

    def test_single_eof_for_merged_document(self):
        entries = [
            ({"counters": {"a": 1}}, None),
            ({"counters": {"b": 2}}, None),
        ]
        text = to_openmetrics_multi(entries)
        assert text.count("# EOF") == 1
        assert text.endswith("# EOF\n")

    def test_bench_result_exports_every_entry(self):
        from repro.obs.bench import BenchScenario, bench_openmetrics, run_bench

        scenario = BenchScenario(
            name="tiny", num_nodes=9, num_chunks=2, capacity=3,
            serve_requests=100,
        )
        result = run_bench([scenario], ["Appx"], repeats=1, series=True)
        text = bench_openmetrics(result)
        assert 'scenario="tiny"' in text
        assert 'algorithm="Appx"' in text
        assert 'algorithm="serve"' in text
        assert text.endswith("# EOF\n")
