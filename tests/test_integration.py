"""Cross-feature integration tests: the pieces working together."""

import pytest

from repro.core import (
    ApproximationConfig,
    CachingProblem,
    DualAscentConfig,
    solve_approximation,
)
from repro.delay import latency_report
from repro.distributed import DistributedConfig, solve_distributed
from repro.exact import solve_exact
from repro.graphs import connected_random_network, diameter
from repro.metrics import evaluate_contention, placement_gini
from repro.online import OnlineFairCache, expire, publish
from repro.viz import render_delta_map, render_grid_placement
from repro.workloads import grid_problem


class TestBatteryAcrossAlgorithms:
    """The footnote-1 battery model must bind for every solver."""

    @pytest.fixture
    def battery_problem(self):
        return grid_problem(
            4, num_chunks=6, capacity=5,
            battery_capacity=2.0, energy_per_cache=1.0,
        )

    def test_approximation_respects_battery(self, battery_problem):
        placement = solve_approximation(battery_problem)
        placement.validate()
        assert max(placement.loads().values()) <= 2

    def test_distributed_respects_battery(self, battery_problem):
        outcome = solve_distributed(battery_problem)
        outcome.placement.validate()
        assert max(outcome.placement.loads().values()) <= 2

    def test_exact_respects_battery(self):
        problem = grid_problem(
            3, num_chunks=4, capacity=5,
            battery_capacity=1.0, energy_per_cache=1.0,
        )
        placement = solve_exact(problem)
        placement.validate()
        assert max(placement.loads().values()) <= 1

    def test_battery_weight_steers_placement(self):
        """High battery fairness weight pushes load off drained nodes."""
        base = grid_problem(4, num_chunks=4)
        weighted = grid_problem(
            4, num_chunks=4, battery_capacity=4.0, battery_weight=5.0
        )
        a = solve_approximation(base)
        b = solve_approximation(weighted)
        a.validate()
        b.validate()
        # both feasible; the battery-weighted one never exceeds budget
        assert max(b.loads().values()) <= 4


class TestOnlineWithBattery:
    def test_battery_drains_across_events(self):
        problem = grid_problem(
            4, num_chunks=0, battery_capacity=2.0, energy_per_cache=1.0,
        )
        cache = OnlineFairCache(
            problem,
            config=ApproximationConfig(dual=DualAscentConfig(span_threshold=2)),
        )
        for chunk in range(6):
            cache.process(publish(float(chunk), chunk))
        # eviction frees storage but not battery: nodes that cached twice
        # are out of the game forever
        cache.process(expire(10.0, 0))
        battery = cache.state.battery
        drained = [n for n in problem.clients if battery.remaining(n) == 0]
        for node in drained:
            assert not cache.state.can_cache(node)


class TestEndToEndPipeline:
    """Random network → all solvers → metrics → latency, in one flow."""

    def test_random_network_pipeline(self):
        graph, _ = connected_random_network(30, seed=9)
        problem = CachingProblem(graph=graph, producer=0, num_chunks=4)
        appx = solve_approximation(problem)
        dist = solve_distributed(problem).placement
        for placement in (appx, dist):
            placement.validate()
            report = evaluate_contention(placement)
            assert report.total > 0
            assert 0 <= placement_gini(placement) <= 1
            latency = latency_report(placement)
            assert latency.count == 29 * 4
            assert latency.mean > 0

    def test_viz_round_trip(self):
        problem = grid_problem(4, num_chunks=2)
        appx = solve_approximation(problem)
        exact = solve_exact(problem)
        text = render_grid_placement(appx)
        assert len(text.splitlines()) == 4
        delta = render_delta_map(4, appx.loads(), exact.loads(),
                                 producer=problem.producer)
        assert "*" in delta

    def test_diameter_bounds_dual_ascent_paths(self):
        """Sanity tying graph stats to the protocol: any client-server
        path in a placement is at most the network diameter."""
        problem = grid_problem(5, num_chunks=2)
        placement = solve_approximation(problem)
        d = diameter(problem.graph)
        state = problem.new_state()
        for chunk in placement.chunks:
            for client, server in chunk.assignment.items():
                path = state.costs.path(server, client)
                assert len(path) - 1 <= d


class TestConfigurationMatrix:
    """Weights and knobs compose without breaking feasibility."""

    @pytest.mark.parametrize("fairness_weight", [0.0, 1.0, 5.0])
    def test_fairness_weight_sweep(self, fairness_weight):
        problem = grid_problem(4, num_chunks=3,
                               fairness_weight=fairness_weight)
        placement = solve_approximation(problem)
        placement.validate()

    @pytest.mark.parametrize("m_scale", [0.5, 1.0, 3.0])
    def test_dissemination_scale_sweep(self, m_scale):
        problem = grid_problem(4, num_chunks=3,
                               dissemination_scale=m_scale)
        placement = solve_approximation(problem)
        placement.validate()

    def test_zero_contention_weight(self):
        problem = grid_problem(4, num_chunks=2, contention_weight=0.0)
        placement = solve_approximation(problem)
        placement.validate()

    @pytest.mark.parametrize("step", [0.5, 1.0, 4.0])
    def test_distributed_step_sweep(self, step):
        problem = grid_problem(4, num_chunks=2)
        outcome = solve_distributed(problem, DistributedConfig(step=step))
        outcome.placement.validate()
