"""Tests for the time-series telemetry layer (:mod:`repro.obs.timeseries`).

Covers the ring-buffer contract, the mark cadence, the snapshot
handoff, the instrumented producers (dual ascent, distributed protocol,
serve engines, sweep), and the headline determinism guarantee: enabling
series telemetry never changes a single byte of any report.
"""

from __future__ import annotations

import json

import pytest

from repro.core import solve_approximation
from repro.obs import (
    NullRecorder,
    Recorder,
    SERIES_SCHEMA,
    Series,
    SeriesConfig,
    SeriesRecorder,
    load_series_artifact,
    use_recorder,
    windowed_rates,
)
from repro.workloads import grid_problem


class TestSeries:
    def test_append_and_points(self):
        series = Series("x")
        series.append(1.0, 10)
        series.append(2.0, 20)
        assert series.points == [(1.0, 10.0), (2.0, 20.0)]
        assert series.last == (2.0, 20.0)
        assert len(series) == 2

    def test_ring_evicts_oldest_and_counts_drops(self):
        series = Series("x", capacity=3)
        for t in range(5):
            series.append(float(t), t)
        assert len(series) == 3
        assert series.dropped == 2
        assert series.points[0] == (2.0, 2.0)

    def test_kind_validated(self):
        with pytest.raises(ValueError):
            Series("x", kind="gauge")
        with pytest.raises(ValueError):
            Series("x", capacity=0)

    def test_to_dict_schema(self):
        series = Series("x", kind="counter", capacity=8)
        series.append(1.0, 5)
        data = series.to_dict()
        assert data == {
            "kind": "counter",
            "capacity": 8,
            "dropped": 0,
            "points": [[1.0, 5.0]],
        }


class TestWindowedRates:
    def test_rates_from_cumulative(self):
        points = [[0.0, 0.0], [1.0, 10.0], [3.0, 30.0]]
        assert windowed_rates(points) == [(1.0, 10.0), (3.0, 10.0)]

    def test_zero_width_windows_skipped(self):
        points = [[1.0, 5.0], [1.0, 7.0], [2.0, 9.0]]
        assert windowed_rates(points) == [(2.0, 2.0)]

    def test_empty_and_single(self):
        assert windowed_rates([]) == []
        assert windowed_rates([[1.0, 1.0]]) == []


class TestSeriesRecorder:
    def test_series_enabled_flags(self):
        assert SeriesRecorder().series_enabled is True
        assert Recorder().series_enabled is False
        assert NullRecorder().series_enabled is False

    def test_base_recorder_hooks_are_noops(self):
        rec = Recorder()
        rec.series_point("x", 1.0, 2.0)
        rec.series_mark(1.0)
        rec.observe("g", 3.0)  # folds into the gauge only
        assert rec.dump()["gauges"]["g"]["last"] == 3.0
        assert "series" not in rec.dump()

    def test_series_point_creates_and_appends(self):
        rec = SeriesRecorder()
        rec.series_point("a", 1.0, 10, kind="counter")
        rec.series_point("a", 2.0, 20)
        rec.series_point("b", 1.0, 5)
        assert rec.series_names() == ["a", "b"]
        assert rec.series("a").kind == "counter"
        assert rec.series("a").points == [(1.0, 10.0), (2.0, 20.0)]
        assert rec.series("missing") is None

    def test_mark_snapshots_prefixed_counters_on_cadence(self):
        rec = SeriesRecorder(SeriesConfig(interval=1.0))
        rec.count("serve.requests", 5)
        rec.count("unrelated.counter", 99)
        rec.series_mark(0.0)
        rec.series_mark(0.5)  # within interval: rejected
        rec.count("serve.requests", 5)
        rec.series_mark(1.0)  # accepted
        series = rec.series("serve.requests")
        assert series.kind == "counter"
        assert series.points == [(0.0, 5.0), (1.0, 10.0)]
        assert rec.series("unrelated.counter") is None

    def test_observe_feeds_gauge_and_histogram(self):
        rec = SeriesRecorder()
        for v in (0.1, 0.2, 0.3):
            rec.observe("serve.latency_s", v)
        assert rec.histogram("serve.latency_s").count == 3
        gauge = rec.dump()["gauges"]["serve.latency_s"]
        assert gauge["count"] == 3
        assert gauge["max"] == 0.3

    def test_dump_and_artifact_schema(self):
        rec = SeriesRecorder()
        rec.count("serve.requests", 3)
        rec.series_point("x", 1.0, 2.0)
        rec.observe("lat", 0.5)
        dump = rec.dump()
        assert set(dump) >= {"counters", "timers", "gauges",
                             "series", "histograms", "manifest"}
        artifact = rec.series_artifact(final=True)
        assert artifact["schema"] == SERIES_SCHEMA
        assert artifact["final"] is True
        assert "x" in artifact["series"]
        assert "lat" in artifact["histograms"]
        assert load_series_artifact(artifact)["schema"] == SERIES_SCHEMA

    def test_load_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            load_series_artifact({"schema": "repro-bench/1"})
        with pytest.raises(ValueError):
            load_series_artifact({})

    def test_memory_bounded_under_long_run(self):
        rec = SeriesRecorder(SeriesConfig(capacity=64))
        for i in range(10_000):
            rec.series_point("x", float(i), i, kind="counter")
        series = rec.series("x")
        assert len(series) == 64
        assert series.dropped == 10_000 - 64


class TestSnapshotHandoff:
    def test_write_snapshot_atomic_and_loadable(self, tmp_path):
        path = str(tmp_path / "series.json")
        rec = SeriesRecorder()
        rec.series_point("x", 1.0, 2.0)
        rec.write_snapshot(path, final=False)
        data = load_series_artifact(json.loads(open(path).read()))
        assert data["final"] is False
        assert not (tmp_path / "series.json.tmp").exists()

    def test_finalize_marks_final(self, tmp_path):
        path = str(tmp_path / "series.json")
        rec = SeriesRecorder(SeriesConfig(snapshot_path=path))
        rec.series_point("x", 1.0, 2.0)
        rec.finalize()
        assert json.loads(open(path).read())["final"] is True

    def test_maybe_snapshot_noop_without_path(self):
        rec = SeriesRecorder()
        assert rec.maybe_snapshot() is False

    def test_maybe_snapshot_throttled(self, tmp_path):
        path = str(tmp_path / "series.json")
        rec = SeriesRecorder(
            SeriesConfig(snapshot_path=path, snapshot_min_interval_s=3600)
        )
        assert rec.maybe_snapshot() is True
        assert rec.maybe_snapshot() is False  # within the throttle


class TestInstrumentedProducers:
    @pytest.fixture(scope="class")
    def problem(self):
        return grid_problem(4, num_chunks=3)

    def test_dual_ascent_emits_convergence_series(self, problem):
        rec = SeriesRecorder()
        with use_recorder(rec):
            solve_approximation(problem)
        for name in ("dual_ascent.objective", "dual_ascent.frozen",
                     "dual_ascent.admins", "dual_ascent.unserved"):
            series = rec.series(name)
            assert series is not None and len(series) > 0, name
        # Monotone virtual time across per-chunk solves, monotone
        # values for the counter-kind census series.
        for name in rec.series_names():
            times = [t for t, _ in rec.series(name).points]
            assert times == sorted(times), name
            if rec.series(name).kind == "counter":
                values = [v for _, v in rec.series(name).points]
                assert values == sorted(values), name

    def test_distributed_protocol_emits_tick_series(self, problem):
        from repro.distributed import solve_distributed

        rec = SeriesRecorder()
        with use_recorder(rec):
            solve_distributed(problem)
        for name in ("protocol.done", "protocol.messages",
                     "protocol.online_nodes"):
            series = rec.series(name)
            assert series is not None and len(series) > 0, name
            times = [t for t, _ in series.points]
            assert times == sorted(times), name

    def test_serve_emits_series_and_histograms(self, problem):
        from repro.serve import ZipfWorkload, serve_placement

        placement = solve_approximation(problem)
        rec = SeriesRecorder()
        with use_recorder(rec):
            serve_placement(
                placement, ZipfWorkload(seed=3), 2000, policy="cheapest"
            )
        assert rec.histogram("serve.latency_s").count == 2000
        assert rec.histogram("serve.queue_delay_s") is not None
        requests = rec.series("serve.requests")
        assert requests is not None and requests.kind == "counter"
        assert requests.last[1] == 2000.0

    def test_sweep_emits_progress_series(self):
        from repro.sweep import SweepGrid, run_sweep

        grid = SweepGrid(
            topologies=("grid:3",),
            workloads=("uniform", "zipf"),
            policies=("cheapest",),
            seeds=(1,),
            requests=200,
        )
        rec = SeriesRecorder()
        with use_recorder(rec):
            run_sweep(grid, workers=1, manifest_extra={"created_unix": 0})
        done = rec.series("sweep.cells_done")
        assert done is not None and done.kind == "counter"
        assert done.last[1] == 2.0
        assert rec.series("sweep.cell_gini") is not None


class TestDeterminismWithSeries:
    """Enabling telemetry must never change what a run computes."""

    def test_serve_report_byte_identical_with_series(self):
        from repro.serve import ZipfWorkload, serve_placement

        placement = solve_approximation(grid_problem(4, num_chunks=3))

        def run(recorder):
            with use_recorder(recorder):
                return serve_placement(
                    placement,
                    ZipfWorkload(seed=5),
                    200_000,
                    policy="least-loaded",
                ).to_json()

        baseline = run(NullRecorder())
        with_series = run(SeriesRecorder())
        assert with_series == baseline

        # And with bounded telemetry memory: every ring respects its
        # configured capacity even over 200k requests.
        recorder = SeriesRecorder(SeriesConfig(capacity=256))
        assert run(recorder) == baseline
        for name in recorder.series_names():
            assert len(recorder.series(name)) <= 256, name
        hist = recorder.histogram("serve.latency_s")
        assert hist.count == 200_000
        assert hist.bucket_count <= recorder.config.max_buckets

    def test_solve_placement_identical_with_series(self):
        problem = grid_problem(5, num_chunks=4)
        baseline = solve_approximation(problem)
        with use_recorder(SeriesRecorder()):
            with_series = solve_approximation(problem)
        assert [c.caches for c in with_series.chunks] == [
            c.caches for c in baseline.chunks
        ]
        assert with_series.loads() == baseline.loads()
