"""Unit tests for MST and Steiner-tree algorithms."""

import random

import pytest

from repro.errors import DisconnectedGraphError
from repro.graphs import (
    Graph,
    grid_graph,
    is_connected,
    kruskal_mst,
    metric_closure,
    prim_mst,
    steiner_cost,
    steiner_tree,
    tree_weight,
)
from repro.graphs.steiner import all_pairs_with_parents, dreyfus_wagner


def _random_weighted(num_nodes: int, seed: int) -> Graph:
    from repro.graphs import erdos_renyi_connected

    rng = random.Random(seed)
    base = erdos_renyi_connected(num_nodes, 0.35, seed=seed)
    g = Graph()
    for u, v, _ in base.edges():
        g.add_edge(u, v, rng.uniform(0.5, 4.0))
    return g


class TestMst:
    def test_kruskal_weight_on_triangle(self, triangle):
        assert tree_weight(kruskal_mst(triangle)) == 3.0

    def test_prim_matches_kruskal_weight(self):
        for seed in range(5):
            g = _random_weighted(12, seed)
            assert tree_weight(prim_mst(g)) == pytest.approx(
                tree_weight(kruskal_mst(g))
            )

    def test_mst_is_spanning_tree(self, grid4):
        mst = kruskal_mst(grid4)
        assert mst.num_nodes == 16
        assert mst.num_edges == 15
        assert is_connected(mst)

    def test_disconnected_raises(self):
        g = Graph([(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            kruskal_mst(g)
        with pytest.raises(DisconnectedGraphError):
            prim_mst(g)

    def test_empty_graph_prim(self):
        assert prim_mst(Graph()).num_nodes == 0

    def test_mst_edges_subset_of_graph(self, grid4):
        mst = kruskal_mst(grid4)
        for u, v, _ in mst.edges():
            assert grid4.has_edge(u, v)


class TestMetricClosure:
    def test_closure_is_complete(self, grid4):
        closure, _ = metric_closure(grid4, [0, 5, 15])
        assert closure.num_edges == 3

    def test_closure_weights_are_distances(self, grid4):
        closure, _ = metric_closure(grid4, [0, 15])
        assert closure.weight(0, 15) == 6.0

    def test_paths_returned_both_directions(self, grid4):
        _, paths = metric_closure(grid4, [0, 15])
        assert paths[(0, 15)][0] == 0
        assert paths[(15, 0)][0] == 15

    def test_disconnected_terminals_raise(self):
        g = Graph([(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            metric_closure(g, [0, 3])


class TestSteinerTree:
    def test_spans_terminals(self, grid4):
        terminals = [0, 3, 12, 15]
        tree = steiner_tree(grid4, terminals)
        for t in terminals:
            assert t in tree
        assert is_connected(tree)

    def test_two_terminals_is_shortest_path(self, grid4):
        tree = steiner_tree(grid4, [0, 15])
        assert steiner_cost(tree) == 6.0

    def test_single_terminal(self, grid4):
        tree = steiner_tree(grid4, [7])
        assert tree.num_nodes == 1
        assert steiner_cost(tree) == 0.0

    def test_empty_terminals_raise(self, grid4):
        with pytest.raises(ValueError):
            steiner_tree(grid4, [])

    def test_is_a_tree(self, grid4):
        tree = steiner_tree(grid4, [0, 3, 12, 15])
        assert tree.num_edges == tree.num_nodes - 1

    def test_no_nonterminal_leaves(self, grid4):
        terminals = {0, 3, 12, 15}
        tree = steiner_tree(grid4, terminals)
        for node in tree.nodes():
            if node not in terminals:
                assert tree.degree(node) >= 2

    def test_duplicate_terminals_ok(self, grid4):
        tree = steiner_tree(grid4, [0, 0, 15, 15])
        assert steiner_cost(tree) == 6.0

    def test_within_2x_of_exact(self):
        for seed in range(4):
            g = _random_weighted(10, seed)
            terminals = sorted(g.nodes())[:4]
            kmb = steiner_cost(steiner_tree(g, terminals))
            exact, _ = dreyfus_wagner(g, terminals)
            assert exact <= kmb + 1e-9
            assert kmb <= 2.0 * exact + 1e-9


class TestDreyfusWagner:
    def test_known_grid_optimum(self, grid4):
        cost, tree = dreyfus_wagner(grid4, [1, 7, 8, 14])
        assert cost == 7.0
        assert is_connected(tree)

    def test_tree_cost_matches_reported(self):
        for seed in range(4):
            g = _random_weighted(9, seed)
            terminals = sorted(g.nodes())[:4]
            cost, tree = dreyfus_wagner(g, terminals)
            assert steiner_cost(tree) == pytest.approx(cost)

    def test_two_terminals_equals_shortest_path(self, grid4):
        cost, _ = dreyfus_wagner(grid4, [0, 15])
        assert cost == 6.0

    def test_single_terminal(self, grid4):
        cost, tree = dreyfus_wagner(grid4, [5])
        assert cost == 0.0
        assert tree.num_nodes == 1

    def test_too_many_terminals_rejected(self):
        g = grid_graph(5)
        with pytest.raises(ValueError):
            dreyfus_wagner(g, list(range(17)))

    def test_precomputed_apsp_matches(self, grid4):
        apsp = all_pairs_with_parents(grid4)
        cost_a, _ = dreyfus_wagner(grid4, [0, 3, 12], apsp=apsp)
        cost_b, _ = dreyfus_wagner(grid4, [0, 3, 12])
        assert cost_a == cost_b

    def test_empty_terminals_raise(self, grid4):
        with pytest.raises(ValueError):
            dreyfus_wagner(grid4, [])
