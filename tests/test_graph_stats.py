"""Unit tests for topology statistics."""

import pytest

from repro.errors import DisconnectedGraphError
from repro.graphs import Graph, grid_graph, path_graph, star_graph
from repro.graphs.stats import (
    average_degree,
    center,
    degree_histogram,
    diameter,
    eccentricities,
    radius,
)


class TestEccentricity:
    def test_path(self):
        ecc = eccentricities(path_graph(5))
        assert ecc[0] == 4
        assert ecc[2] == 2

    def test_disconnected_raises(self):
        g = Graph([(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            eccentricities(g)

    def test_empty(self):
        assert eccentricities(Graph()) == {}


class TestDiameterRadius:
    def test_grid(self):
        g = grid_graph(4)
        assert diameter(g) == 6
        # even-sided grids have no single center; the four inner nodes
        # each reach a far corner in 4 hops
        assert radius(g) == 4
        assert set(center(g)) == {5, 6, 9, 10}

    def test_star(self):
        g = star_graph(5)
        assert diameter(g) == 2
        assert radius(g) == 1
        assert center(g) == (0,)

    def test_path_center(self):
        assert center(path_graph(5)) == (2,)

    def test_empty(self):
        assert diameter(Graph()) == 0
        assert radius(Graph()) == 0
        assert center(Graph()) == ()

    def test_single_node(self):
        g = Graph()
        g.add_node(0)
        assert diameter(g) == 0


class TestDegreeStats:
    def test_average_degree_grid(self):
        g = grid_graph(4)
        assert average_degree(g) == pytest.approx(2 * 24 / 16)

    def test_average_degree_empty(self):
        assert average_degree(Graph()) == 0.0

    def test_histogram(self):
        g = grid_graph(3)
        hist = degree_histogram(g)
        assert hist == {2: 4, 3: 4, 4: 1}
        assert sum(hist.values()) == 9
