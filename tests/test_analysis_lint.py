"""Tests for :mod:`repro.analysis`: lint rules, suppression, spec, CLI.

Each rule is exercised against a passing and a failing fixture under
``tests/analysis_fixtures/`` — hygiene rules as single-file snippets,
architecture rules as tiny package trees — and the real source tree is
asserted lint-clean against ``docs/layering.toml``.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis import LayeringSpec, lint_package, load_spec, run_lint
from repro.analysis.imports import SourceModule
from repro.analysis.linter import find_spec_path, lint_modules
from repro.analysis.spec import _parse_toml_subset
from repro.cli import main as cli_main
from repro.errors import ProblemError

FIXTURES = Path(__file__).parent / "analysis_fixtures"
SPEC_PATH = Path(__file__).parent.parent / "docs" / "layering.toml"

#: Spec used for single-file hygiene fixtures: every scoped rule covers
#: the whole ``fixtures`` pseudo-package.
HYGIENE_SPEC = LayeringSpec(
    layers={"fixtures": 0},
    unseeded_random_scope=("fixtures",),
    float_equality_scope=("fixtures",),
)


def lint_fixture(filename: str, spec: LayeringSpec = HYGIENE_SPEC):
    path = FIXTURES / filename
    text = path.read_text(encoding="utf-8")
    module = SourceModule(
        name=f"fixtures.{path.stem}",
        path=str(path),
        tree=ast.parse(text, filename=str(path)),
        lines=tuple(text.splitlines()),
    )
    return lint_modules([module], spec)


def rules_of(report) -> set:
    return {violation.rule for violation in report.violations}


class TestHygieneRules:
    @pytest.mark.parametrize(
        "rule, stem",
        [
            ("mutable-default", "mutable_default"),
            ("bare-except", "bare_except"),
            ("wallclock", "wallclock"),
            ("float-equality", "float_equality"),
            ("unseeded-random", "unseeded_random"),
        ],
    )
    def test_rule_pair(self, rule, stem):
        ok = lint_fixture(f"{stem}_ok.py")
        assert rule not in rules_of(ok), ok.render()
        bad = lint_fixture(f"{stem}_bad.py")
        assert rule in rules_of(bad), bad.render()

    def test_unseeded_random_catches_every_idiom(self):
        # seed=None default, Random(), shuffle-from-import, numpy.random,
        # and a module-global random.choice(): five distinct flags.
        report = lint_fixture("unseeded_random_bad.py")
        assert len(report.violations) >= 5

    def test_wallclock_exempt_scope(self):
        spec = LayeringSpec(
            layers={"fixtures": 0}, wallclock_exempt=("fixtures",)
        )
        report = lint_fixture("wallclock_bad.py", spec)
        assert "wallclock" not in rules_of(report)

    def test_scoped_rules_ignore_out_of_scope_modules(self):
        spec = LayeringSpec(layers={"fixtures": 0})
        report = lint_fixture("unseeded_random_bad.py", spec)
        assert "unseeded-random" not in rules_of(report)

    def test_noqa_suppresses_on_the_flagged_line(self):
        report = lint_fixture("noqa_suppressed.py")
        assert report.ok, report.render()
        assert report.suppressed == 1


class TestArchitectureRules:
    def lint_tree(self, package: str, spec: LayeringSpec):
        return lint_package(FIXTURES / package, spec)

    def layering_spec(self, pkg: str) -> LayeringSpec:
        return LayeringSpec(
            layers={pkg: 0, f"{pkg}.lowmod": 0, f"{pkg}.highmod": 1}
        )

    def test_layering_pair(self):
        ok = self.lint_tree(
            "arch_layering_ok", self.layering_spec("arch_layering_ok")
        )
        assert ok.ok, ok.render()
        bad = self.lint_tree(
            "arch_layering_bad", self.layering_spec("arch_layering_bad")
        )
        assert rules_of(bad) == {"layering"}, bad.render()

    def test_cycle_pair(self):
        ok = self.lint_tree(
            "arch_cycle_ok", LayeringSpec(layers={"arch_cycle_ok": 0})
        )
        assert ok.ok, ok.render()
        bad = self.lint_tree(
            "arch_cycle_bad", LayeringSpec(layers={"arch_cycle_bad": 0})
        )
        assert rules_of(bad) == {"cycle"}, bad.render()
        (violation,) = bad.violations
        assert "arch_cycle_bad.a" in violation.message
        assert "arch_cycle_bad.b" in violation.message

    def forbidden_spec(self, pkg: str) -> LayeringSpec:
        return LayeringSpec(
            layers={pkg: 0},
            forbidden={f"{pkg}.client": (f"{pkg}.secret",)},
        )

    def test_forbidden_pair(self):
        ok = self.lint_tree(
            "arch_forbidden_ok", self.forbidden_spec("arch_forbidden_ok")
        )
        assert ok.ok, ok.render()
        bad = self.lint_tree(
            "arch_forbidden_bad", self.forbidden_spec("arch_forbidden_bad")
        )
        assert rules_of(bad) == {"forbidden-import"}, bad.render()

    def stdlib_spec(self, pkg: str) -> LayeringSpec:
        # ``helper`` only exists in the ok tree: the ok fixture shows the
        # stdlib-only closure (importing another stdlib-only module is
        # fine), the bad one that anything else first-party still flags.
        return LayeringSpec(
            layers={pkg: 0},
            stdlib_only=(f"{pkg}.pure", f"{pkg}.helper"),
        )

    def test_stdlib_only_pair(self):
        ok = self.lint_tree(
            "arch_stdlib_ok", self.stdlib_spec("arch_stdlib_ok")
        )
        assert ok.ok, ok.render()
        bad = self.lint_tree(
            "arch_stdlib_bad", self.stdlib_spec("arch_stdlib_bad")
        )
        assert rules_of(bad) == {"stdlib-only"}, bad.render()
        flagged = {v.message.split()[-1] for v in bad.violations}
        assert "numpy" in flagged
        assert any("arch_stdlib_bad.other" in f for f in flagged)

    def test_unassigned_module_pair(self):
        ok = self.lint_tree(
            "arch_unassigned_ok",
            LayeringSpec(layers={"arch_unassigned_ok.known": 0}),
        )
        assert ok.ok, ok.render()
        bad = self.lint_tree(
            "arch_unassigned_bad",
            LayeringSpec(layers={"arch_unassigned_bad.known": 0}),
        )
        assert rules_of(bad) == {"unassigned-module"}, bad.render()
        (violation,) = bad.violations
        assert violation.path.endswith("stray.py")

    def test_lazy_imports_are_exempt_from_layering(self, tmp_path):
        pkg = tmp_path / "lazydemo"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "high.py").write_text("VALUE = 1\n")
        (pkg / "low.py").write_text(
            "def use():\n    from lazydemo import high\n"
            "    return high.VALUE\n"
        )
        spec = LayeringSpec(
            layers={"lazydemo": 0, "lazydemo.low": 0, "lazydemo.high": 1}
        )
        report = lint_package(pkg, spec)
        assert report.ok, report.render()


class TestLayeringSpec:
    def test_subset_parser_matches_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        text = SPEC_PATH.read_text(encoding="utf-8")
        assert _parse_toml_subset(text) == tomllib.loads(text)

    def test_real_spec_layers(self):
        spec = load_spec(SPEC_PATH)
        assert spec.layer_of("repro.errors") == 0
        assert spec.layer_of("repro.core.dual_ascent") < spec.layer_of(
            "repro.cli"
        )
        assert spec.layer_of("not.a.repro.module") is None
        assert "repro.obs.recorder" in spec.stdlib_only

    def test_bad_schema_rejected(self, tmp_path):
        bad = tmp_path / "layering.toml"
        bad.write_text('schema = "other/9"\n\n[layers]\nx = 0\n')
        with pytest.raises(ProblemError):
            load_spec(bad)

    def test_find_spec_path_walks_up(self):
        found = find_spec_path(SPEC_PATH.parent.parent / "src" / "repro")
        assert found == SPEC_PATH


class TestSourceTree:
    def test_repro_source_is_lint_clean(self):
        report = run_lint()
        assert report.ok, report.render()
        assert report.files_checked > 50


class TestCli:
    def test_lint_clean_exits_zero(self, capsys):
        assert cli_main(["lint"]) == 0
        assert "repro lint: clean" in capsys.readouterr().out

    def test_lint_reports_seeded_violation(self, tmp_path, capsys):
        pkg = tmp_path / "demo"
        pkg.mkdir()
        (pkg / "broken.py").write_text(
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except:\n"
            "        return 0\n"
        )
        spec = tmp_path / "layering.toml"
        spec.write_text(
            'schema = "repro-layering/1"\n\n[layers]\ndemo = 0\n'
        )
        status = cli_main(
            ["lint", "--package", str(pkg), "--spec", str(spec)]
        )
        out = capsys.readouterr().out
        assert status == 2
        assert "bare-except" in out
        assert "broken.py" in out
        assert "1 violation(s)" in out

    def test_lint_types_skips_gracefully_without_mypy(
        self, capsys, monkeypatch
    ):
        from repro.analysis import typecheck

        monkeypatch.setattr(typecheck, "mypy_available", lambda: False)
        assert cli_main(["lint", "--types"]) == 0
        assert "mypy is not installed" in capsys.readouterr().out
