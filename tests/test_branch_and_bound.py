"""Unit tests for the branch-and-bound MILP solver and backend agreement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import MAXIMIZE, Model, branch_and_bound, lin_sum


class TestBranchAndBound:
    def test_pure_lp_no_branching(self):
        res = branch_and_bound(
            c=np.array([1.0]),
            A_ub=None, b_ub=None, A_eq=None, b_eq=None,
            bounds=[(0.0, None)], integrality=np.array([0]),
        )
        assert res.status == "optimal"
        assert res.nodes_explored == 1

    def test_rounds_integral(self):
        # min x s.t. 3x >= 4, x integer → x = 2
        res = branch_and_bound(
            c=np.array([1.0]),
            A_ub=np.array([[-3.0]]), b_ub=np.array([-4.0]),
            A_eq=None, b_eq=None,
            bounds=[(0.0, None)], integrality=np.array([1]),
        )
        assert res.x[0] == pytest.approx(2.0)

    def test_infeasible(self):
        res = branch_and_bound(
            c=np.array([1.0]),
            A_ub=np.array([[1.0], [-1.0]]), b_ub=np.array([1.0, -3.0]),
            A_eq=None, b_eq=None,
            bounds=[(0.0, None)], integrality=np.array([1]),
        )
        assert res.status == "infeasible"

    def test_integer_infeasible_between_bounds(self):
        # 0.4 <= x <= 0.6, x integer → infeasible
        res = branch_and_bound(
            c=np.array([1.0]),
            A_ub=None, b_ub=None, A_eq=None, b_eq=None,
            bounds=[(0.4, 0.6)], integrality=np.array([1]),
        )
        assert res.status == "infeasible"

    def test_unbounded(self):
        res = branch_and_bound(
            c=np.array([-1.0]),
            A_ub=None, b_ub=None, A_eq=None, b_eq=None,
            bounds=[(0.0, None)], integrality=np.array([1]),
        )
        assert res.status == "unbounded"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            branch_and_bound(
                c=np.array([1.0]), A_ub=None, b_ub=None, A_eq=None,
                b_eq=None, bounds=[(0.0, 1.0)],
                integrality=np.array([1]), lp_engine="cplex",
            )

    def test_limit_without_incumbent_raises(self):
        # Force max_nodes=0-ish exploration: a model needing branching.
        with pytest.raises(RuntimeError):
            branch_and_bound(
                c=np.array([1.0, 1.0]),
                A_ub=np.array([[-3.0, -2.0]]), b_ub=np.array([-4.0]),
                A_eq=None, b_eq=None,
                bounds=[(0.0, None), (0.0, None)],
                integrality=np.array([1, 1]),
                max_nodes=1,
            )


def _random_model(seed: int):
    """A random feasible 0/1 knapsack-style model."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 8))
    m = Model(f"rand{seed}", sense=MAXIMIZE)
    x = [m.binary_var(f"x{i}") for i in range(n)]
    weights = rng.integers(1, 10, n)
    values = rng.integers(1, 20, n)
    cap = int(weights.sum() // 2) + 1
    m.add_constraint(lin_sum(int(w) * xi for w, xi in zip(weights, x)) <= cap)
    m.set_objective(lin_sum(int(v) * xi for v, xi in zip(values, x)))
    return m


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_backends_agree_on_random_knapsacks(seed):
    m = _random_model(seed)
    obj_bnb = m.solve(backend="bnb").objective
    obj_highs = m.solve(backend="highs").objective
    assert obj_bnb == pytest.approx(obj_highs, abs=1e-6)


@given(st.integers(min_value=0, max_value=200))
@settings(max_examples=10, deadline=None)
def test_simplex_engine_agrees(seed):
    m = _random_model(seed)
    obj_scipy = m.solve(backend="bnb", lp_engine="scipy").objective
    obj_simplex = m.solve(backend="bnb", lp_engine="simplex").objective
    assert obj_scipy == pytest.approx(obj_simplex, abs=1e-6)
