"""Tests for the determinism/RNG-flow/parallel-safety lint families,
the ``determinism.toml`` contracts, machine-readable lint output, and
the REPRO_SANITIZE serve-equivalence cross-check.

Every new rule gets a failing + passing fixture pair under
``tests/analysis_fixtures/`` (linted with only its family enabled so
sibling hygiene rules stay out of the assertion), plus synthetic-AST
unit tests for the dataflow corners the fixtures can't isolate.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from unittest import mock

import pytest

from repro.analysis import (
    DeterminismSpec,
    LayeringSpec,
    load_determinism_spec,
    run_lint,
)
from repro.analysis.determinism import check_determinism
from repro.analysis.imports import SourceModule
from repro.analysis.linter import (
    DET_FAMILIES,
    FAMILIES,
    find_determinism_path,
    lint_modules,
)
from repro.analysis.parallel import check_parallel
from repro.analysis.report import render_json, render_sarif
from repro.analysis.rngflow import check_rngflow
from repro.analysis.spec import _parse_toml_subset
from repro.cli import main as cli_main
from repro.errors import InvariantError, ProblemError

FIXTURES = Path(__file__).parent / "analysis_fixtures"
DET_SPEC_PATH = Path(__file__).parent.parent / "docs" / "determinism.toml"

#: Contracts used for single-file fixtures: the whole ``fixtures``
#: pseudo-package is deterministic and fork-safe, nothing allowlisted.
FIXTURE_DET = DeterminismSpec(
    modules={"fixtures": ("deterministic", "fork-safe")},
    blessed_seed_calls=("derive_seed",),
)

#: Layering spec the det families don't consult but the API requires.
FIXTURE_LAYERS = LayeringSpec(layers={"fixtures": 0})


def parse_fixture(filename: str) -> SourceModule:
    path = FIXTURES / filename
    text = path.read_text(encoding="utf-8")
    return SourceModule(
        name=f"fixtures.{path.stem}",
        path=str(path),
        tree=ast.parse(text, filename=str(path)),
        lines=tuple(text.splitlines()),
    )


def synthetic_module(source: str, name: str = "fixtures.synth") -> SourceModule:
    return SourceModule(
        name=name,
        path=f"<{name}>",
        tree=ast.parse(source),
        lines=tuple(source.splitlines()),
    )


def lint_det_fixture(filename: str, families=DET_FAMILIES):
    return lint_modules(
        [parse_fixture(filename)],
        FIXTURE_LAYERS,
        families=families,
        det_spec=FIXTURE_DET,
    )


def rules_of(report) -> set:
    return {violation.rule for violation in report.violations}


class TestRulePairs:
    @pytest.mark.parametrize(
        "rule, stem",
        [
            ("unordered-iteration", "det_unordered_iteration"),
            ("hash-ordering", "det_hash_ordering"),
            ("float-accumulation", "det_float_accumulation"),
            ("env-branching", "det_env_branching"),
            ("wallclock-determinism", "det_wallclock"),
            ("rng-module-state", "rng_module_state"),
            ("rng-seed-derivation", "rng_seed_derivation"),
            ("rng-worker-share", "rng_worker_share"),
            ("parallel-global-write", "par_global_write"),
            ("parallel-unordered-merge", "par_unordered_merge"),
            ("parallel-unsafe-capture", "par_unsafe_capture"),
        ],
    )
    def test_rule_pair(self, rule, stem):
        ok = lint_det_fixture(f"{stem}_ok.py")
        assert rule not in rules_of(ok), ok.render()
        bad = lint_det_fixture(f"{stem}_bad.py")
        assert rule in rules_of(bad), bad.render()

    def test_unordered_iteration_catches_every_idiom(self):
        # for-loop over a display, comprehension over set(), list() of a
        # tracked variable, and str.join of a set comprehension.
        report = lint_det_fixture("det_unordered_iteration_bad.py")
        flagged = [
            v for v in report.violations if v.rule == "unordered-iteration"
        ]
        assert len(flagged) >= 4, report.render()

    def test_module_state_catches_every_idiom(self):
        # module-scope ctor, two global draws, a from-import draw, and a
        # ``global`` rebind: five distinct flags.
        report = lint_det_fixture("rng_module_state_bad.py")
        flagged = [
            v for v in report.violations if v.rule == "rng-module-state"
        ]
        assert len(flagged) >= 5, report.render()

    def test_exempt_module_skips_det_families(self):
        exempt = DeterminismSpec(modules={"fixtures": ("exempt",)})
        report = lint_modules(
            [parse_fixture("det_unordered_iteration_bad.py")],
            FIXTURE_LAYERS,
            families=DET_FAMILIES,
            det_spec=exempt,
        )
        assert report.ok, report.render()

    def test_wallclock_allowlist(self):
        allowed = DeterminismSpec(
            modules={"fixtures": ("deterministic",)},
            wallclock_allow=("fixtures",),
        )
        report = lint_modules(
            [parse_fixture("det_wallclock_bad.py")],
            FIXTURE_LAYERS,
            families=("determinism",),
            det_spec=allowed,
        )
        assert "wallclock-determinism" not in rules_of(report)

    def test_env_allowlist(self):
        allowed = DeterminismSpec(
            modules={"fixtures": ("deterministic",)},
            env_allow=("fixtures",),
        )
        report = lint_modules(
            [parse_fixture("det_env_branching_bad.py")],
            FIXTURE_LAYERS,
            families=("determinism",),
            det_spec=allowed,
        )
        assert "env-branching" not in rules_of(report)

    def test_missing_det_spec_skips_with_note(self):
        report = lint_modules(
            [parse_fixture("det_unordered_iteration_bad.py")],
            FIXTURE_LAYERS,
            families=DET_FAMILIES,
            det_spec=None,
        )
        assert report.ok
        assert any("skipped families" in note for note in report.notes)

    def test_unknown_family_rejected(self):
        with pytest.raises(ProblemError):
            lint_modules(
                [parse_fixture("det_unordered_iteration_bad.py")],
                FIXTURE_LAYERS,
                families=("determinsm",),
            )


class TestDeterminismSynthetic:
    def check(self, source: str, det: DeterminismSpec = FIXTURE_DET):
        return check_determinism([synthetic_module(source)], det)

    def test_sorted_wrapping_is_clean(self):
        assert not self.check(
            "items = {1, 2}\n"
            "out = [i for i in sorted(items)]\n"
            "low = min(i for i in items)\n"
        )

    def test_key_hash_flagged(self):
        rows = self.check("out = sorted([1, 2], key=hash)\n")
        assert any(v.rule == "hash-ordering" for v in rows)

    def test_set_comprehension_targets_are_fine(self):
        # Building a set from unordered input is fine; order dies there.
        assert not self.check("chosen = {x for x in {1, 2, 3}}\n")

    def test_aliased_time_import_flagged(self):
        rows = self.check(
            "import time as t\n\ndef f():\n    return t.monotonic()\n"
        )
        assert any(v.rule == "wallclock-determinism" for v in rows)

    def test_time_time_left_to_hygiene(self):
        # time.time() belongs to the hygiene wallclock rule.
        assert not self.check(
            "import time\n\ndef f():\n    return time.time()\n"
        )


class TestRngflowSynthetic:
    def check(self, source: str):
        return check_rngflow([synthetic_module(source)], FIXTURE_DET)

    def test_from_import_ctor_tracked(self):
        rows = self.check(
            "from random import Random\nRNG = Random(1)\n"
        )
        assert any(v.rule == "rng-module-state" for v in rows)

    def test_function_local_ctor_clean(self):
        assert not self.check(
            "import random\n\ndef f(seed):\n"
            "    return random.Random(seed).random()\n"
        )

    def test_blessed_helper_allowed_nested(self):
        assert not self.check(
            "import random\n\ndef f(base):\n"
            "    return random.Random(derive_seed(base, 3))\n"
        )

    def test_non_blessed_nested_call_flagged(self):
        rows = self.check(
            "import random\nimport os\n\ndef f():\n"
            "    return random.Random(int.from_bytes(os.urandom(8), 'big'))\n"
        )
        assert any(v.rule == "rng-seed-derivation" for v in rows)

    def test_rng_in_process_args_flagged(self):
        rows = self.check(
            "import multiprocessing\nimport random\n\n"
            "def f(seed):\n"
            "    rng = random.Random(seed)\n"
            "    p = multiprocessing.Process(target=g, args=(rng,))\n"
            "    p.start()\n"
        )
        assert any(v.rule == "rng-worker-share" for v in rows)


class TestParallelSynthetic:
    def check(self, source: str, det: DeterminismSpec = FIXTURE_DET):
        return check_parallel([synthetic_module(source)], det)

    def test_reachable_callee_write_flagged(self):
        rows = self.check(
            "import multiprocessing\n"
            "MEMO = {}\n\n"
            "def run(xs):\n"
            "    with multiprocessing.Pool() as pool:\n"
            "        return pool.map(worker, xs)\n\n"
            "def worker(x):\n"
            "    return helper(x)\n\n"
            "def helper(x):\n"
            "    MEMO[x] = x\n"
            "    return x\n"
        )
        assert any(v.rule == "parallel-global-write" for v in rows)
        assert any("helper" in v.message for v in rows)

    def test_non_worker_write_not_flagged(self):
        # Only functions reachable from a dispatch site are workers.
        assert not self.check(
            "import multiprocessing\n"
            "MEMO = {}\n\n"
            "def run(xs):\n"
            "    with multiprocessing.Pool() as pool:\n"
            "        return pool.map(worker, xs)\n\n"
            "def worker(x):\n"
            "    return x\n\n"
            "def parent_only(x):\n"
            "    MEMO[x] = x\n"
        )

    def test_local_shadow_not_flagged(self):
        assert not self.check(
            "import multiprocessing\n"
            "MEMO = {}\n\n"
            "def run(xs):\n"
            "    with multiprocessing.Pool() as pool:\n"
            "        return pool.map(worker, xs)\n\n"
            "def worker(x):\n"
            "    MEMO = {}\n"
            "    MEMO[x] = x\n"
            "    return MEMO\n"
        )

    def test_as_completed_flagged(self):
        rows = self.check(
            "from concurrent.futures import as_completed\n\n"
            "def gather(futures):\n"
            "    return [f.result() for f in as_completed(futures)]\n"
        )
        assert any(v.rule == "parallel-unordered-merge" for v in rows)

    def test_exempt_module_skipped(self):
        exempt = DeterminismSpec(modules={"fixtures": ("exempt",)})
        assert not self.check(
            "import multiprocessing\n"
            "MEMO = {}\n\n"
            "def run(xs):\n"
            "    with multiprocessing.Pool() as pool:\n"
            "        return pool.map(worker, xs)\n\n"
            "def worker(x):\n"
            "    MEMO[x] = x\n",
            det=exempt,
        )


class TestDeterminismSpecFile:
    def test_subset_parser_matches_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        text = DET_SPEC_PATH.read_text(encoding="utf-8")
        assert _parse_toml_subset(text) == tomllib.loads(text)

    def test_real_contracts(self):
        det = load_determinism_spec(DET_SPEC_PATH)
        assert det.is_deterministic("repro.core.dual_ascent")
        assert det.is_fork_safe("repro.sweep")
        assert det.is_exempt("repro.cli")
        assert det.is_exempt("repro.obs.recorder")
        assert not det.is_deterministic("repro.obs.recorder")
        assert det.allows_wallclock("repro.core.approximation")
        assert not det.allows_wallclock("repro.core.dual_ascent")
        assert det.allows_env("repro.analysis.contracts")
        assert not det.allows_env("repro.serve.engine")

    def test_longest_prefix_wins(self):
        det = DeterminismSpec(
            modules={
                "pkg": ("deterministic",),
                "pkg.io": ("exempt",),
            }
        )
        assert det.is_deterministic("pkg.core")
        assert det.is_exempt("pkg.io.files")
        assert not det.is_deterministic("pkg.io.files")
        assert det.contracts_of("other") == ()

    def test_bad_schema_rejected(self, tmp_path):
        bad = tmp_path / "determinism.toml"
        bad.write_text('schema = "other/9"\n\n[modules]\nx = ["exempt"]\n')
        with pytest.raises(ProblemError):
            load_determinism_spec(bad)

    def test_unknown_contract_rejected(self, tmp_path):
        bad = tmp_path / "determinism.toml"
        bad.write_text(
            'schema = "repro-determinism/1"\n\n'
            '[modules]\nx = ["hermetic"]\n'
        )
        with pytest.raises(ProblemError):
            load_determinism_spec(bad)

    def test_find_determinism_path_walks_up(self):
        found = find_determinism_path(
            DET_SPEC_PATH.parent.parent / "src" / "repro"
        )
        assert found == DET_SPEC_PATH


class TestSourceTree:
    def test_repro_source_is_det_clean(self):
        report = run_lint(families=DET_FAMILIES)
        assert report.ok, report.render()
        # The justified suppressions (id() hashes, the sweep memo) are
        # counted, not silently dropped.
        assert report.suppressed >= 3

    def test_all_families_clean(self):
        report = run_lint(families=FAMILIES)
        assert report.ok, report.render()


class TestMachineReadableOutput:
    VIOLS = ()

    def sample_report(self):
        report = lint_det_fixture("det_hash_ordering_bad.py")
        assert not report.ok
        return report

    def test_json_is_byte_stable_and_parseable(self):
        report = self.sample_report()
        first = report.render("json")
        second = report.render("json")
        assert first == second
        doc = json.loads(first)
        assert doc["schema"] == "repro-lint/1"
        assert doc["ok"] is False
        assert doc["files_checked"] == 1
        rows = doc["violations"]
        assert rows == sorted(
            rows,
            key=lambda r: (r["rule"], r["path"], r["line"], r["message"]),
        )
        assert {"rule", "path", "line", "message"} == set(rows[0])

    def test_sarif_shape(self):
        report = self.sample_report()
        doc = json.loads(report.render("sarif"))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        result = run["results"][0]
        assert result["ruleId"] == "hash-ordering"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] >= 1

    def test_render_helpers_stable_empty(self):
        assert render_json([], 3) == render_json([], 3)
        assert json.loads(render_sarif([], 3))["runs"][0]["results"] == []

    def test_unknown_format_rejected(self):
        with pytest.raises(ProblemError):
            self.sample_report().render("yaml")


def _write_demo_package(tmp_path: Path):
    pkg = tmp_path / "demo"
    pkg.mkdir()
    (pkg / "broken.py").write_text(
        "def order(values):\n    return list(set(values))\n"
    )
    spec = tmp_path / "layering.toml"
    spec.write_text('schema = "repro-layering/1"\n\n[layers]\ndemo = 0\n')
    det = tmp_path / "determinism.toml"
    det.write_text(
        'schema = "repro-determinism/1"\n\n'
        '[modules]\ndemo = ["deterministic"]\n'
    )
    return pkg, spec, det


class TestCli:
    def test_det_families_clean_on_source(self, capsys):
        status = cli_main(
            ["lint", "--types", "determinism,rngflow,parallel"]
        )
        assert status == 0
        assert "repro lint: clean" in capsys.readouterr().out

    def test_unknown_type_rejected(self, capsys):
        assert cli_main(["lint", "--types", "nonsense"]) == 2
        err = capsys.readouterr().err
        assert "unknown lint type 'nonsense'" in err

    def test_json_format_byte_identity(self, tmp_path, capsys):
        pkg, spec, det = _write_demo_package(tmp_path)
        out_path = tmp_path / "lint-report.json"
        args = [
            "lint", "--package", str(pkg), "--spec", str(spec),
            "--det-spec", str(det), "--format", "json",
            "--output", str(out_path),
        ]
        status = cli_main(args)
        first = capsys.readouterr().out
        assert status == 2
        doc = json.loads(first)
        assert doc["ok"] is False
        assert doc["violations"][0]["rule"] == "unordered-iteration"
        # The --output artifact holds exactly the stdout bytes.
        assert out_path.read_text(encoding="utf-8") == first
        # Re-running produces byte-identical output.
        assert cli_main(args) == 2
        assert capsys.readouterr().out == first

    def test_sarif_format_byte_identity(self, tmp_path, capsys):
        pkg, spec, det = _write_demo_package(tmp_path)
        args = [
            "lint", "--package", str(pkg), "--spec", str(spec),
            "--det-spec", str(det), "--format", "sarif",
        ]
        assert cli_main(args) == 2
        first = capsys.readouterr().out
        assert json.loads(first)["version"] == "2.1.0"
        assert cli_main(args) == 2
        assert capsys.readouterr().out == first

    def test_missing_det_spec_notes_and_passes(self, tmp_path, capsys):
        pkg, spec, _det = _write_demo_package(tmp_path)
        # No --det-spec and none findable above tmp: families skipped,
        # the unordered-iteration bug invisible, exit 0 with a note.
        status = cli_main(
            ["lint", "--package", str(pkg), "--spec", str(spec)]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "skipped families" in out


class TestServeEquivalence:
    def test_equal_reports_pass(self):
        from repro.analysis import contracts

        contracts.check_serve_equivalence(
            batched_json='{"a": 1}',
            reference_json='{"a": 1}',
            context="unit",
        )

    def test_divergence_raises_with_line(self):
        from repro.analysis import contracts

        with pytest.raises(InvariantError) as err:
            contracts.check_serve_equivalence(
                batched_json='{\n  "a": 1\n}',
                reference_json='{\n  "a": 2\n}',
                context="unit",
            )
        assert "serve-equivalence" in str(err.value)
        assert "line 2" in str(err.value)

    def test_shadow_replay_fires_on_small_batched_runs(self):
        from repro.analysis import contracts
        from repro.core import solve_approximation
        from repro.serve.engine import serve_placement
        from repro.serve.workloads import WORKLOADS
        from repro.workloads import grid_problem

        placement = solve_approximation(grid_problem(4, num_chunks=3))
        workload = WORKLOADS["zipf"](seed=7)
        calls = []
        real = contracts.check_serve_equivalence

        def spy(**kwargs):
            calls.append(kwargs["context"])
            real(**kwargs)

        with mock.patch.object(
            contracts, "check_serve_equivalence", spy
        ):
            serve_placement(placement, workload, 300)
        assert calls, "sanitizer cross-check did not fire"

    def test_shadow_replay_skipped_above_cap(self):
        from repro.analysis import contracts
        from repro.core import solve_approximation
        from repro.serve.engine import serve_placement
        from repro.serve.workloads import WORKLOADS
        from repro.workloads import grid_problem

        placement = solve_approximation(grid_problem(4, num_chunks=3))
        workload = WORKLOADS["zipf"](seed=7)
        calls = []

        with mock.patch.object(
            contracts, "SERVE_EQUIVALENCE_MAX_REQUESTS", 10
        ), mock.patch.object(
            contracts,
            "check_serve_equivalence",
            lambda **kw: calls.append(kw),
        ):
            serve_placement(placement, workload, 300)
        assert not calls
