"""Fixture: merges keyed by completion order (flagged)."""

import multiprocessing


def run(payloads):
    merged = []
    with multiprocessing.Pool(2) as pool:
        for result in pool.imap_unordered(_cell, payloads):
            merged.append(result)
    return merged


def _cell(payload):
    return payload * 2
