"""Fixture: seeds from config arithmetic or blessed helpers (clean)."""

import random


def derive_seed(base, stream):
    return base * 1_000_003 + stream


def arithmetic_seeded(base, chunk):
    return random.Random(base * 1_000_003 + chunk)


def blessed_seeded(base, stream):
    return random.Random(derive_seed(base, stream))


def literal_seeded():
    return random.Random(2017)
