import math

VALUE = math.inf
