"""Fixture: set iteration feeding ordered output (flagged)."""


def order_from_display():
    out = []
    for item in {3, 1, 2}:
        out.append(item)
    return out


def order_from_call(values):
    return [v * 2 for v in set(values)]


def order_from_variable(values):
    chosen = set(values)
    return list(chosen)


def order_from_join(names):
    return ",".join({str(n) for n in names})
