import math

VALUE = math.tau
