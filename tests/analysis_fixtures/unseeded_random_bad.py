"""Failing fixture for the unseeded-random rule: every unseeded idiom."""

import random
from random import shuffle

import numpy as np


def pick(items, seed=None):
    rng = random.Random()
    shuffle(items)
    noise = np.random.rand()
    return random.choice(items), rng, noise
