"""Fixture: monotonic/wall clock reads in result paths (flagged)."""

import time
from datetime import datetime


def measure(work):
    start = time.perf_counter()
    work()
    return time.perf_counter() - start


def deadline():
    return time.monotonic() + 5.0


def stamp():
    return datetime.now().isoformat()
