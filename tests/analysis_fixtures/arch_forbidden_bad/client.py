from arch_forbidden_bad import secret

VALUE = secret.VALUE
