"""Forbidden-import fixture package (failing)."""
