"""Fixture: Pool workers mutating module-level state (flagged)."""

import multiprocessing

_RESULTS = {}
_COUNTS = []


def run(payloads):
    with multiprocessing.Pool(2) as pool:
        pool.map(_cell, payloads)
    return dict(_RESULTS)


def _cell(payload):
    value = _solve(payload)
    _RESULTS[payload] = value
    _COUNTS.append(payload)
    return value


def _solve(payload):
    return payload * 2
