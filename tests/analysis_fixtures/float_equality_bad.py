"""Failing fixture for the float-equality rule: exact float compares."""


def paid_exactly(paid: float) -> bool:
    return paid == 1.0


def unpaid(paid: float) -> bool:
    return paid != 0.0
