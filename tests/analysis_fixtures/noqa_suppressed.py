"""Fixture for line-scoped suppression: the violation carries a noqa."""


def parse(text: str) -> int:
    try:
        return int(text)
    except:  # repro: noqa=bare-except
        return 0
