"""Failing fixture for the wallclock rule: raw time.time() reads."""

import time
from time import time as now


def measure() -> float:
    start = time.time()
    return now() - start
