"""Fixture: RNG seeds derived from non-blessed sources (flagged)."""

import random
import time


def clock_seeded():
    return random.Random(time.time_ns())


def hash_seeded(label):
    return random.Random(hash(label))
