"""A dependency-free sibling; importing it keeps `pure` stdlib-only."""

import math

HELPED = math.tau
