import json
import math

VALUE = json.dumps(math.pi)
