import json
import math

from arch_stdlib_ok.helper import HELPED

VALUE = json.dumps(math.pi + HELPED)
