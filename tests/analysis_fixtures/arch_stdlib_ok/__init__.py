"""Stdlib-only fixture package (passing)."""
