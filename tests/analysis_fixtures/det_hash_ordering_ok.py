"""Fixture: stable keys instead of hash()/id() (clean)."""


def bucket(value, buckets):
    return int(value) % buckets


def order_by_name(items):
    return sorted(items, key=str)


def tag(obj, index):
    return f"obj-{index}"
