"""Passing fixture for the float-equality rule: tolerance comparison."""

EPS = 1e-9


def paid_exactly(paid: float, cost: float) -> bool:
    return abs(paid - cost) <= EPS
