"""Stdlib-only fixture package (failing: third-party import)."""
