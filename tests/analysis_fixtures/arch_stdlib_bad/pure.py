import numpy

VALUE = numpy.__name__
