import numpy

from arch_stdlib_bad.other import VALUE as OTHER

VALUE = numpy.__name__ + OTHER
