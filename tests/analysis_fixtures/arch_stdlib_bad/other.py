"""A first-party module OUTSIDE the stdlib_only scope."""

VALUE = "not dependency-free by contract"
