"""Fixture: simulated time instead of clock reads (clean)."""


def measure(work, sim_clock):
    start = sim_clock.now
    work()
    return sim_clock.now - start


def deadline(sim_clock):
    return sim_clock.now + 5.0


def stamp(created_unix):
    return str(created_unix)
