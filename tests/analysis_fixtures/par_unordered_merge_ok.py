"""Fixture: merge order fixed by shard index (clean)."""

import multiprocessing


def run(payloads):
    with multiprocessing.Pool(2) as pool:
        return list(pool.imap(_cell, payloads))


def _cell(payload):
    return payload * 2
