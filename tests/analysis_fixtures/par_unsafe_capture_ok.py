"""Fixture: workers open their own handles, take explicit payloads (clean)."""

import multiprocessing


def run(payloads, factor):
    jobs = [(p, factor) for p in payloads]
    with multiprocessing.Pool(2) as pool:
        return pool.map(_cell, jobs)


def _cell(arg):
    payload, factor = arg
    with open("/tmp/fixture.log", "a") as log:
        log.write(f"{payload}\n")
    return payload * factor
