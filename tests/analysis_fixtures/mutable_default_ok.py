"""Passing fixture for the mutable-default rule: defaults are immutable."""

from typing import List, Optional


def accumulate(values: Optional[List[int]] = None, start: int = 0) -> int:
    items = list(values) if values is not None else []
    return start + sum(items)
