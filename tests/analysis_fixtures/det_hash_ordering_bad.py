"""Fixture: hash()/id()-dependent values and orderings (flagged)."""


def bucket(value, buckets):
    return hash(value) % buckets


def order_by_identity(items):
    return sorted(items, key=id)


def tag(obj):
    return f"obj-{id(obj)}"
