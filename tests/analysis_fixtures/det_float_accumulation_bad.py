"""Fixture: float accumulation over unordered collections (flagged)."""

import math


def total_cost(costs):
    return sum({c * 1.5 for c in costs})


def total_weight(edges):
    pending = set(edges)
    return math.fsum(w for w in pending)
