"""Passing fixture for the wallclock rule: monotonic clock only."""

import time


def measure() -> float:
    start = time.perf_counter()
    return time.perf_counter() - start
