"""Fixture: behavior driven by explicit arguments, not env (clean)."""


def pick_mode(fast):
    if fast:
        return "fast"
    return "full"


def pick_scale(scale=1):
    return int(scale)
