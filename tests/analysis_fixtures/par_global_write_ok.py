"""Fixture: Pool workers return results; parent merges by index (clean)."""

import multiprocessing


def run(payloads):
    with multiprocessing.Pool(2) as pool:
        values = pool.map(_cell, payloads)
    return dict(zip(payloads, values))


def _cell(payload):
    return _solve(payload)


def _solve(payload):
    return payload * 2
