from arch_cycle_ok import b

VALUE = b.VALUE
