"""Cycle fixture package (passing)."""
