"""Fixture: process-global RNG state (flagged)."""

import random
from random import shuffle

_SHARED = random.Random(7)


def draw():
    return random.random()


def pick(items):
    return random.choice(items)


def mix(items):
    shuffle(items)
    return items


def reseed(seed):
    global _SHARED
    _SHARED = random.Random(seed)
