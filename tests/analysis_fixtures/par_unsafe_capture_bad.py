"""Fixture: fork-unsafe captures in Pool workers (flagged)."""

import multiprocessing

_LOG = open("/tmp/fixture.log", "a")


def run(payloads, factor):
    with multiprocessing.Pool(2) as pool:
        return pool.map(lambda p: p * factor, payloads)


def run_logged(payloads):
    with multiprocessing.Pool(2) as pool:
        return pool.map(_cell, payloads)


def _cell(payload):
    _LOG.write(f"{payload}\n")
    return payload * 2
