import math

VALUE = math.e
