"""Forbidden-import fixture package (passing)."""
