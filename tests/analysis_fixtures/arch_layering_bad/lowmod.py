from arch_layering_bad import highmod

VALUE = highmod.VALUE
