import math

VALUE = math.pi
