"""Layering fixture package (failing: upward import)."""
