"""Passing fixture for the bare-except rule: a typed handler."""


def parse(text: str) -> int:
    try:
        return int(text)
    except ValueError:
        return 0
