"""Fixture: float accumulation in a canonical order (clean)."""

import math


def total_cost(costs):
    return sum(sorted(c * 1.5 for c in costs))


def total_weight(edges):
    pending = set(edges)
    return math.fsum(sorted(pending))
