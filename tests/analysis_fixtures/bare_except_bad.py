"""Failing fixture for the bare-except rule: catches everything."""


def parse(text: str) -> int:
    try:
        return int(text)
    except:
        return 0
