"""Fixture: workers get derived seeds, never RNG objects (clean)."""

import multiprocessing
import random


def run_cells(payloads, seed):
    jobs = [(seed * 1_000_003 + i, p) for i, p in enumerate(payloads)]
    with multiprocessing.Pool(2) as pool:
        return pool.map(_cell, jobs)


def _cell(arg):
    cell_seed, payload = arg
    rng = random.Random(cell_seed)
    return rng.random() * payload
