"""Passing fixture for the unseeded-random rule: explicit seeds only."""

import random

DEFAULT_SEED = 2017


def pick(items, seed: int = DEFAULT_SEED):
    rng = random.Random(seed)
    return rng.choice(items)
