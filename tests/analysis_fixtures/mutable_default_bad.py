"""Failing fixture for the mutable-default rule: shared mutable defaults."""


def gather(values=[], *, table={}):
    values.append(len(table))
    return values
