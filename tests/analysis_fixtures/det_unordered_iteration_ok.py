"""Fixture: set contents consumed in sorted or order-free ways (clean)."""


def order_from_display():
    out = []
    for item in sorted({3, 1, 2}):
        out.append(item)
    return out


def order_from_call(values):
    return [v * 2 for v in sorted(set(values))]


def membership_only(values, probe):
    chosen = set(values)
    return probe in chosen


def order_free_reductions(values):
    chosen = set(values)
    return len(chosen), min(chosen), max(chosen), any(v > 0 for v in chosen)


def dict_views_are_ordered(mapping):
    # dicts iterate in insertion order — deterministic, not flagged.
    return [mapping[k] for k in mapping] + list(mapping.values())
