"""Fixture: a Random instance crossing a worker boundary (flagged)."""

import multiprocessing
import random


def run_cells(payloads, seed):
    rng = random.Random(seed)
    with multiprocessing.Pool(2) as pool:
        return pool.map(_cell, [(rng, p) for p in payloads])


def _cell(arg):
    rng, payload = arg
    return rng.random() * payload
