from arch_cycle_bad import a

VALUE = a.VALUE
