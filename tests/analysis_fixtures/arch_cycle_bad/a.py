from arch_cycle_bad import b

VALUE = 1
