"""Cycle fixture package (failing: a <-> b)."""
