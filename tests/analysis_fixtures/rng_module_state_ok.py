"""Fixture: explicitly seeded, locally owned RNG instances (clean)."""

import random


def draw(seed):
    rng = random.Random(seed)
    return rng.random()


def pick(items, rng):
    return rng.choice(items)


def mix(items, seed):
    rng = random.Random(seed)
    shuffled = list(items)
    rng.shuffle(shuffled)
    return shuffled
