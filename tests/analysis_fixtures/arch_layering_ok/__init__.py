"""Layering fixture package (passing)."""
