from arch_layering_ok import lowmod

VALUE = lowmod.VALUE
