"""Fixture: env-var-dependent branching in a result path (flagged)."""

import os


def pick_mode():
    if os.environ.get("FIXTURE_FAST"):
        return "fast"
    return "full"


def pick_scale():
    return int(os.getenv("FIXTURE_SCALE", "1"))
