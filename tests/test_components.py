"""Unit tests for connected-component helpers."""

import pytest

from repro.graphs import (
    Graph,
    connected_components,
    is_connected,
    largest_connected_component,
)


class TestComponents:
    def test_single_component(self, grid4):
        comps = connected_components(grid4)
        assert len(comps) == 1
        assert comps[0] == set(grid4.nodes())

    def test_two_components_sorted_by_size(self):
        g = Graph([(0, 1), (1, 2), (10, 11)])
        comps = connected_components(g)
        assert len(comps) == 2
        assert comps[0] == {0, 1, 2}
        assert comps[1] == {10, 11}

    def test_isolated_nodes_are_components(self):
        g = Graph()
        g.add_nodes([1, 2, 3])
        assert len(connected_components(g)) == 3

    def test_empty_graph_has_no_components(self):
        assert connected_components(Graph()) == []


class TestIsConnected:
    def test_connected_grid(self, grid4):
        assert is_connected(grid4)

    def test_disconnected(self):
        g = Graph([(0, 1), (2, 3)])
        assert not is_connected(g)

    def test_empty_graph_not_connected(self):
        assert not is_connected(Graph())

    def test_single_node_connected(self):
        g = Graph()
        g.add_node(0)
        assert is_connected(g)


class TestLargest:
    def test_largest_component(self):
        g = Graph([(0, 1), (1, 2), (10, 11)])
        assert largest_connected_component(g) == {0, 1, 2}

    def test_empty_graph_raises(self):
        with pytest.raises(ValueError):
            largest_connected_component(Graph())
