"""Unit tests for the disjoint-set structure."""

from repro.graphs import UnionFind


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind([1, 2, 3])
        assert uf.num_sets == 3
        assert len(uf) == 3

    def test_find_self(self):
        uf = UnionFind([1])
        assert uf.find(1) == 1

    def test_lazy_element_creation(self):
        uf = UnionFind()
        assert uf.find("x") == "x"
        assert len(uf) == 1

    def test_union_merges(self):
        uf = UnionFind([1, 2])
        assert uf.union(1, 2) is True
        assert uf.connected(1, 2)
        assert uf.num_sets == 1

    def test_union_same_set_returns_false(self):
        uf = UnionFind([1, 2])
        uf.union(1, 2)
        assert uf.union(1, 2) is False

    def test_transitive_connectivity(self):
        uf = UnionFind(range(4))
        uf.union(0, 1)
        uf.union(2, 3)
        assert not uf.connected(0, 3)
        uf.union(1, 2)
        assert uf.connected(0, 3)

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add(1)
        uf.add(1)
        assert len(uf) == 1

    def test_num_sets_tracks_unions(self):
        uf = UnionFind(range(10))
        for i in range(9):
            uf.union(i, i + 1)
        assert uf.num_sets == 1

    def test_path_compression_consistency(self):
        uf = UnionFind(range(100))
        for i in range(99):
            uf.union(i, i + 1)
        root = uf.find(0)
        assert all(uf.find(i) == root for i in range(100))

    def test_heterogeneous_elements(self):
        uf = UnionFind()
        uf.union("a", (1, 2))
        assert uf.connected("a", (1, 2))
