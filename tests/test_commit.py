"""Unit tests for the shared commit/accounting layer."""

import pytest

from repro.core import commit_chunk, nearest_server_assignment
from repro.errors import ProblemError
from repro.core.placement import edge_key
from repro.workloads import grid_problem


class TestNearestAssignment:
    def test_self_service_when_caching(self, small_problem):
        state = small_problem.new_state()
        assignment = nearest_server_assignment(state, [1, 14])
        assert assignment[1] == 1
        assert assignment[14] == 14

    def test_producer_when_no_caches(self, small_problem):
        state = small_problem.new_state()
        assignment = nearest_server_assignment(state, [])
        assert all(s == small_problem.producer for s in assignment.values())

    def test_all_clients_covered(self, small_problem):
        state = small_problem.new_state()
        assignment = nearest_server_assignment(state, [5])
        assert set(assignment) == set(small_problem.clients)

    def test_picks_cheaper_server(self, small_problem):
        state = small_problem.new_state()
        assignment = nearest_server_assignment(state, [0])
        # node 1 is adjacent to cache 0; producer 9 is farther
        assert assignment[1] == 0


class TestCommitChunk:
    def test_commit_updates_storage(self, small_problem):
        state = small_problem.new_state()
        placement = commit_chunk(state, 0, [1, 2])
        assert state.storage.used(1) == 1
        assert placement.caches == frozenset({1, 2})

    def test_duplicate_caches_deduplicated(self, small_problem):
        state = small_problem.new_state()
        placement = commit_chunk(state, 0, [1, 1, 2])
        assert placement.caches == frozenset({1, 2})
        assert state.storage.used(1) == 1

    def test_empty_caches_all_producer(self, small_problem):
        state = small_problem.new_state()
        placement = commit_chunk(state, 0, [])
        assert placement.tree_edges == frozenset()
        assert placement.stage_cost.dissemination == 0.0
        assert all(
            s == small_problem.producer for s in placement.assignment.values()
        )

    def test_stage_fairness_before_commit(self, small_problem):
        state = small_problem.new_state()
        commit_chunk(state, 0, [1])
        second = commit_chunk(state, 1, [1])
        assert second.stage_cost.fairness == pytest.approx(0.25)

    def test_full_node_rejected(self):
        problem = grid_problem(3, num_chunks=2, capacity=1)
        state = problem.new_state()
        commit_chunk(state, 0, [1])
        with pytest.raises(ProblemError):
            commit_chunk(state, 1, [1])

    def test_producer_cache_rejected(self, small_problem):
        state = small_problem.new_state()
        with pytest.raises(ProblemError):
            commit_chunk(state, 0, [small_problem.producer])

    def test_unknown_node_rejected(self, small_problem):
        state = small_problem.new_state()
        with pytest.raises(ProblemError):
            commit_chunk(state, 0, [999])

    def test_explicit_assignment_validated(self, small_problem):
        state = small_problem.new_state()
        bad = {j: 14 for j in small_problem.clients}  # 14 not caching
        with pytest.raises(ProblemError):
            commit_chunk(state, 0, [1], assignment=bad)

    def test_explicit_assignment_missing_client(self, small_problem):
        state = small_problem.new_state()
        partial = {small_problem.clients[0]: 1}
        with pytest.raises(ProblemError):
            commit_chunk(state, 0, [1], assignment=partial)

    def test_tree_connects_caches(self, small_problem):
        state = small_problem.new_state()
        placement = commit_chunk(state, 0, [0, 15])
        from repro.core import CachePlacement

        CachePlacement(
            problem=small_problem,
            chunks=[placement]
            + [commit_chunk(state, c, []) for c in (1, 2)],
        ).validate()

    def test_given_tree_edges_used(self, small_problem):
        state = small_problem.new_state()
        # producer 9 and cache 10 are adjacent on the 4x4 grid
        tree = frozenset({edge_key(9, 10)})
        placement = commit_chunk(state, 0, [10], tree_edges=tree)
        assert placement.tree_edges == tree
        # stage cost uses the pre-commit storage state
        expected = small_problem.new_state().costs.edge_cost(9, 10)
        assert placement.stage_cost.dissemination == pytest.approx(expected)

    def test_access_cost_matches_assignment(self, small_problem):
        state = small_problem.new_state()
        placement = commit_chunk(state, 0, [5])
        # recompute manually with a fresh state (same storage content)
        fresh = small_problem.new_state()
        expected = sum(
            fresh.costs.contention_cost(server, client)
            for client, server in placement.assignment.items()
        )
        assert placement.stage_cost.access == pytest.approx(expected)
