"""Hypothesis property tests for the graph substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    bfs_all_hop_counts,
    dijkstra,
    erdos_renyi_connected,
    grid_graph,
    is_connected,
    kruskal_mst,
    prim_mst,
    steiner_cost,
    steiner_tree,
    tree_weight,
)
from repro.graphs.steiner import dreyfus_wagner

connected_graphs = st.builds(
    erdos_renyi_connected,
    num_nodes=st.integers(min_value=2, max_value=14),
    edge_prob=st.floats(min_value=0.1, max_value=0.9),
    seed=st.integers(min_value=0, max_value=10_000),
)


def _reweight(graph: Graph, seed: int) -> Graph:
    rng = random.Random(seed)
    g = Graph()
    g.add_nodes(graph.nodes())
    for u, v, _ in graph.edges():
        g.add_edge(u, v, rng.uniform(0.1, 5.0))
    return g


@given(connected_graphs)
@settings(max_examples=40, deadline=None)
def test_mst_algorithms_agree(graph):
    assert tree_weight(kruskal_mst(graph)) == tree_weight(prim_mst(graph))


@given(connected_graphs, st.integers(min_value=0, max_value=999))
@settings(max_examples=40, deadline=None)
def test_weighted_mst_algorithms_agree(graph, seed):
    g = _reweight(graph, seed)
    assert abs(tree_weight(kruskal_mst(g)) - tree_weight(prim_mst(g))) < 1e-9


@given(connected_graphs)
@settings(max_examples=40, deadline=None)
def test_mst_is_spanning_tree(graph):
    mst = kruskal_mst(graph)
    assert mst.num_nodes == graph.num_nodes
    assert mst.num_edges == graph.num_nodes - 1
    assert is_connected(mst)


@given(connected_graphs)
@settings(max_examples=30, deadline=None)
def test_dijkstra_triangle_inequality(graph):
    nodes = list(graph.nodes())
    dist, _ = dijkstra(graph, nodes[0])
    for u, v, w in graph.edges():
        assert dist[v] <= dist[u] + w + 1e-9
        assert dist[u] <= dist[v] + w + 1e-9


@given(connected_graphs)
@settings(max_examples=30, deadline=None)
def test_hop_counts_bounded_by_nodes(graph):
    hops = bfs_all_hop_counts(graph, next(iter(graph.nodes())))
    assert len(hops) == graph.num_nodes
    assert all(0 <= h < graph.num_nodes for h in hops.values())


@given(
    connected_graphs,
    st.integers(min_value=0, max_value=999),
    st.integers(min_value=2, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_kmb_within_twice_exact_steiner(graph, seed, num_terminals):
    g = _reweight(graph, seed)
    terminals = sorted(g.nodes())[: min(num_terminals, g.num_nodes)]
    exact, _ = dreyfus_wagner(g, terminals)
    kmb = steiner_cost(steiner_tree(g, terminals))
    assert exact <= kmb + 1e-9
    assert kmb <= 2.0 * exact + 1e-9


@given(
    connected_graphs,
    st.integers(min_value=2, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_steiner_tree_spans_and_is_tree(graph, num_terminals):
    terminals = sorted(graph.nodes())[: min(num_terminals, graph.num_nodes)]
    tree = steiner_tree(graph, terminals)
    assert all(t in tree for t in terminals)
    assert tree.num_edges == tree.num_nodes - 1
    assert is_connected(tree)


@given(st.integers(min_value=2, max_value=8))
@settings(max_examples=10, deadline=None)
def test_grid_edge_count_formula(side):
    g = grid_graph(side)
    assert g.num_edges == 2 * side * (side - 1)
    assert g.num_nodes == side * side
