"""Unit tests for shortest-path algorithms."""

import pytest

from repro.errors import NodeNotFoundError, NoPathError
from repro.graphs import (
    Graph,
    all_pairs_dijkstra,
    bfs_all_hop_counts,
    bfs_shortest_path,
    bfs_tree,
    dijkstra,
    dijkstra_node_costs,
    floyd_warshall,
    grid_graph,
    path_from_tree,
)


class TestBfsPaths:
    def test_trivial_path(self, path5):
        assert bfs_shortest_path(path5, 2, 2) == [2]

    def test_path_endpoints(self, grid4):
        path = bfs_shortest_path(grid4, 0, 15)
        assert path[0] == 0 and path[-1] == 15

    def test_path_length_is_minimal(self, grid4):
        assert len(bfs_shortest_path(grid4, 0, 15)) == 7  # 6 hops

    def test_consecutive_nodes_adjacent(self, grid4):
        path = bfs_shortest_path(grid4, 0, 15)
        for u, v in zip(path, path[1:]):
            assert grid4.has_edge(u, v)

    def test_no_path_raises(self):
        g = Graph([(0, 1), (2, 3)])
        with pytest.raises(NoPathError):
            bfs_shortest_path(g, 0, 3)

    def test_missing_nodes_raise(self, path5):
        with pytest.raises(NodeNotFoundError):
            bfs_shortest_path(path5, 0, 99)
        with pytest.raises(NodeNotFoundError):
            bfs_shortest_path(path5, 99, 0)

    def test_hop_counts_match_paths(self, grid4):
        hops = bfs_all_hop_counts(grid4, 0)
        for target in grid4.nodes():
            assert hops[target] == len(bfs_shortest_path(grid4, 0, target)) - 1

    def test_bfs_tree_reconstruction(self, grid4):
        tree = bfs_tree(grid4, 0)
        path = path_from_tree(tree, 0, 15)
        assert path[0] == 0 and path[-1] == 15
        assert len(path) == 7

    def test_path_from_tree_unreachable_raises(self):
        g = Graph([(0, 1), (2, 3)])
        tree = bfs_tree(g, 0)
        with pytest.raises(NoPathError):
            path_from_tree(tree, 0, 3)


class TestDijkstra:
    def test_weighted_shortest(self, triangle):
        dist, _ = dijkstra(triangle, 0)
        # 0->2 direct is 4.0, via 1 is 3.0
        assert dist[2] == 3.0

    def test_parents_reconstruct(self, triangle):
        _, parents = dijkstra(triangle, 0)
        assert path_from_tree(parents, 0, 2) == [0, 1, 2]

    def test_early_stop_with_target(self, grid4):
        dist, _ = dijkstra(grid4, 0, target=1)
        assert dist[1] == 1.0

    def test_unreachable_absent_from_dist(self):
        g = Graph([(0, 1), (2, 3)])
        dist, _ = dijkstra(g, 0)
        assert 3 not in dist

    def test_missing_source_raises(self, grid4):
        with pytest.raises(NodeNotFoundError):
            dijkstra(grid4, 777)

    def test_all_pairs_symmetry(self, triangle):
        ap = all_pairs_dijkstra(triangle)
        for u in triangle.nodes():
            for v in triangle.nodes():
                assert ap[u][v] == ap[v][u]


class TestNodeCostDijkstra:
    def test_source_cost_zero_distance(self, path5):
        dist, _ = dijkstra_node_costs(path5, 0, lambda n: 1.0)
        # path 0..4: node costs 1 each, including source: dist[4] = 5
        assert dist[4] == 5.0
        assert dist[0] == 1.0  # source own cost (include_source default)

    def test_exclude_source(self, path5):
        dist, _ = dijkstra_node_costs(
            path5, 0, lambda n: 1.0, include_source=False
        )
        assert dist[4] == 4.0

    def test_degree_cost_on_grid(self, grid4):
        dist, _ = dijkstra_node_costs(grid4, 0, grid4.degree)
        # 0 -> 1: deg(0)+deg(1) = 2 + 3
        assert dist[1] == 5.0

    def test_avoids_expensive_nodes(self):
        # Two routes 0->3: via hub 1 (cost 10) or via 2 (cost 1).
        g = Graph([(0, 1), (1, 3), (0, 2), (2, 3)])
        cost = {0: 1.0, 1: 10.0, 2: 1.0, 3: 1.0}
        dist, parents = dijkstra_node_costs(g, 0, cost.__getitem__)
        assert dist[3] == 3.0
        assert path_from_tree(parents, 0, 3) == [0, 2, 3]


class TestFloydWarshall:
    def test_matches_dijkstra(self, grid4):
        fw = floyd_warshall(grid4)
        for source in grid4.nodes():
            dist, _ = dijkstra(grid4, source)
            for target in grid4.nodes():
                assert fw[source][target] == pytest.approx(dist[target])

    def test_disconnected_is_inf(self):
        g = Graph([(0, 1), (2, 3)])
        fw = floyd_warshall(g)
        assert fw[0][2] == float("inf")

    def test_diagonal_zero(self, triangle):
        fw = floyd_warshall(triangle)
        assert all(fw[v][v] == 0.0 for v in triangle.nodes())

    def test_weighted_triangle(self, triangle):
        fw = floyd_warshall(triangle)
        assert fw[0][2] == 3.0
