"""Unit tests for the LP-format export."""

import pytest

from repro.ilp import MAXIMIZE, Model
from repro.ilp.export import to_lp_string, write_lp


@pytest.fixture
def model():
    m = Model("demo", sense=MAXIMIZE)
    x = m.binary_var("x")
    y = m.integer_var("y", lower=0, upper=7)
    z = m.continuous_var("z", upper=4.0)
    m.add_constraint(2 * x + y - z <= 5, "cap")
    m.add_constraint(y >= 1, "floor")
    m.set_objective(3 * x + 2 * y + z)
    return m


class TestLpString:
    def test_sections_present(self, model):
        text = to_lp_string(model)
        for section in ("Maximize", "Subject To", "Bounds", "Generals",
                        "Binaries", "End"):
            assert section in text

    def test_objective_terms(self, model):
        text = to_lp_string(model)
        assert "3 x" in text and "2 y" in text

    def test_constraints_serialized(self, model):
        text = to_lp_string(model)
        assert "cap:" in text and "<= 5" in text
        # >= rows are normalized as expr - rhs >= 0 → "- 1 >= ... " form
        assert "floor:" in text

    def test_minimize_header(self):
        m = Model("m")
        x = m.continuous_var("x")
        m.set_objective(x + 0.0)
        assert "Minimize" in to_lp_string(m)

    def test_unsafe_names_sanitized(self):
        m = Model("m")
        v = m.binary_var("x[1,2] weird")
        m.set_objective(v + 0.0)
        text = to_lp_string(m)
        assert "[" not in text.replace("\\ model", "")
        assert "x_1_2__weird" in text

    def test_objective_constant_encoded(self):
        m = Model("m")
        x = m.binary_var("x")
        m.set_objective(x + 10)
        text = to_lp_string(m)
        assert "__const" in text
        assert "__const = 1" in text

    def test_write_lp(self, model, tmp_path):
        path = tmp_path / "model.lp"
        write_lp(model, str(path))
        assert path.read_text().startswith("\\ model: demo")

    def test_roundtrip_solvable_shape(self, model):
        """The exported model still matches the in-memory optimum."""
        solution = model.solve()
        # x=1, y=7 violates cap (2+7=9>5+z ... z free up). Just sanity:
        assert solution.status == "optimal"
        text = to_lp_string(model)
        assert text.count("\n") > 5
