"""Tests for the ``REPRO_SANITIZE`` runtime invariant sanitizer."""

from __future__ import annotations

import pytest

from repro.analysis import contracts
from repro.core import DualAscentConfig, build_confl_instance, dual_ascent
from repro.errors import InvariantError
from repro.workloads import grid_problem


class TestToggle:
    def test_enabled_values(self, monkeypatch):
        for value, expected in [
            ("1", True),
            ("true", True),
            ("0", False),
            ("", False),
        ]:
            monkeypatch.setenv(contracts.ENV_VAR, value)
            assert contracts.sanitize_enabled() is expected
        monkeypatch.delenv(contracts.ENV_VAR)
        assert contracts.sanitize_enabled() is False


@pytest.fixture
def dual_result():
    instance = build_confl_instance(grid_problem(4, num_chunks=1).new_state())
    config = DualAscentConfig()
    result = dual_ascent(instance, config)
    return instance, config, result


def check_result(instance, config, result, **overrides):
    kwargs = dict(
        producer=instance.producer,
        clients=list(instance.clients),
        facilities=list(result.payments),
        open_cost=instance.open_cost,
        connect_cost=instance.connect_cost,
        admins=result.admins,
        assignment=result.assignment,
        alpha=result.alpha,
        payments=result.payments,
        span_counts=result.span_counts,
        step=config.step,
        threshold=config.resolved_threshold(instance),
    )
    kwargs.update(overrides)
    contracts.check_dual_solution(**kwargs)


class TestDualFeasibility:
    def test_real_solution_passes(self, dual_result):
        check_result(*dual_result)

    def test_corrupted_assignment_caught(self, dual_result):
        instance, config, result = dual_result
        # Freeze some client onto a non-ADMIN, non-producer node: the
        # kind of bug a broken freeze handler would introduce.
        corrupt = dict(result.assignment)
        client = next(iter(corrupt))
        closed = next(
            node
            for node in instance.facilities
            if node not in set(result.admins) and node != instance.producer
        )
        corrupt[client] = closed
        with pytest.raises(InvariantError) as excinfo:
            check_result(*dual_result, assignment=corrupt)
        assert excinfo.value.rule == "dual-feasibility"

    def test_underpaid_admin_caught(self, dual_result):
        instance, config, result = dual_result
        if not result.admins:
            pytest.skip("instance opened no facilities")
        broke = dict(result.payments)
        broke[result.admins[0]] = -1.0
        with pytest.raises(InvariantError):
            check_result(*dual_result, payments=broke)

    def test_unaffordable_connection_caught(self, dual_result):
        instance, config, result = dual_result
        cheated = dict(result.alpha)
        client = next(iter(cheated))
        cheated[client] = -5.0
        with pytest.raises(InvariantError):
            check_result(*dual_result, alpha=cheated)

    def test_producer_cannot_be_admin(self, dual_result):
        instance, config, result = dual_result
        with pytest.raises(InvariantError):
            check_result(
                *dual_result,
                admins=list(result.admins) + [instance.producer],
            )


class TestStorageMonotonic:
    def test_exact_growth_passes(self):
        contracts.check_storage_monotonic(
            chunk=0,
            used_before={1: 0, 2: 3},
            used_after={1: 1, 2: 3},
            cached_nodes=[1],
        )

    def test_shrinking_storage_caught(self):
        with pytest.raises(InvariantError) as excinfo:
            contracts.check_storage_monotonic(
                chunk=0,
                used_before={1: 2},
                used_after={1: 1},
                cached_nodes=[],
            )
        assert excinfo.value.rule == "storage-monotonic"

    def test_phantom_copy_caught(self):
        with pytest.raises(InvariantError):
            contracts.check_storage_monotonic(
                chunk=0,
                used_before={1: 0, 2: 0},
                used_after={1: 1, 2: 1},
                cached_nodes=[1],
            )


class TestChunkCommit:
    def commit_kwargs(self, **overrides):
        kwargs = dict(
            chunk=0,
            producer=0,
            clients=[1, 2],
            caches=[1],
            assignment={1: 1, 2: 0},
            tree_edges=[frozenset({0, 1})],
            has_edge=lambda u, v: True,
            stage_costs={"fairness": 1.0, "access": 2.0},
        )
        kwargs.update(overrides)
        return kwargs

    def test_feasible_commit_passes(self):
        contracts.check_chunk_commit(**self.commit_kwargs())

    def test_disconnected_tree_caught(self):
        with pytest.raises(InvariantError) as excinfo:
            contracts.check_chunk_commit(
                **self.commit_kwargs(tree_edges=[])
            )
        assert "constraint 6" in str(excinfo.value)

    def test_server_without_copy_caught(self):
        with pytest.raises(InvariantError) as excinfo:
            contracts.check_chunk_commit(
                **self.commit_kwargs(assignment={1: 2, 2: 0})
            )
        assert "constraint 5" in str(excinfo.value)

    def test_negative_stage_cost_caught(self):
        with pytest.raises(InvariantError):
            contracts.check_chunk_commit(
                **self.commit_kwargs(stage_costs={"access": -3.0})
            )


class TestMessageCensus:
    def census_kwargs(self, **overrides):
        kwargs = dict(
            chunk=0,
            known_types=("NPI", "BADMIN", "CC"),
            messages_before={},
            messages_after={"NPI": 9, "BADMIN": 8, "CC": 4},
            transmissions_before={},
            transmissions_after={"NPI": 20, "BADMIN": 18, "CC": 6},
            num_nodes=9,
            num_admins=1,
            hop_limit=2,
        )
        kwargs.update(overrides)
        return kwargs

    def test_consistent_census_passes(self):
        contracts.check_message_census(**self.census_kwargs())

    def test_lossy_npi_flood_caught(self):
        with pytest.raises(InvariantError) as excinfo:
            contracts.check_message_census(
                **self.census_kwargs(
                    messages_after={"NPI": 8, "BADMIN": 8, "CC": 4}
                )
            )
        assert excinfo.value.rule == "message-census"

    def test_unknown_type_caught(self):
        with pytest.raises(InvariantError):
            contracts.check_message_census(
                **self.census_kwargs(
                    messages_after={"NPI": 9, "BADMIN": 8, "XXX": 1}
                )
            )

    def test_hop_envelope_caught(self):
        with pytest.raises(InvariantError):
            contracts.check_message_census(
                **self.census_kwargs(
                    transmissions_after={"NPI": 20, "BADMIN": 18, "CC": 9}
                )
            )


class TestIncrementalCostRows:
    def base_kwargs(self, **overrides):
        rows = {0: {0: 0.0, 1: 5.0, 2: 8.0}, 1: {0: 5.0, 1: 0.0, 2: 6.0}}
        kwargs = dict(
            dirty_nodes=[1],
            patched={s: dict(row) for s, row in rows.items()},
            fresh={s: dict(row) for s, row in rows.items()},
        )
        kwargs.update(overrides)
        return kwargs

    def test_identical_rows_pass(self):
        contracts.check_incremental_cost_rows(**self.base_kwargs())

    def test_value_drift_caught(self):
        kwargs = self.base_kwargs()
        kwargs["patched"][0][2] += 3.0
        with pytest.raises(InvariantError) as exc:
            contracts.check_incremental_cost_rows(**kwargs)
        assert "incremental-costs" in str(exc.value)

    def test_exact_equality_no_tolerance(self):
        # The contract is bit-for-bit: even a tiny drift is a defect.
        kwargs = self.base_kwargs()
        kwargs["patched"][1][2] += 1e-9
        with pytest.raises(InvariantError):
            contracts.check_incremental_cost_rows(**kwargs)

    def test_missing_source_caught(self):
        kwargs = self.base_kwargs()
        del kwargs["patched"][1]
        with pytest.raises(InvariantError):
            contracts.check_incremental_cost_rows(**kwargs)

    def test_target_set_divergence_caught(self):
        kwargs = self.base_kwargs()
        kwargs["patched"][0][99] = 1.0
        with pytest.raises(InvariantError):
            contracts.check_incremental_cost_rows(**kwargs)


class TestWiring:
    def test_suite_runs_with_sanitizer_on(self):
        # conftest.py sets REPRO_SANITIZE=1 for the whole suite unless
        # the caller overrode it; this guards against the setdefault
        # being dropped.
        assert contracts.sanitize_enabled()

    def test_dual_ascent_checks_itself(self, monkeypatch):
        monkeypatch.setenv(contracts.ENV_VAR, "1")
        instance = build_confl_instance(
            grid_problem(4, num_chunks=1).new_state()
        )
        result = dual_ascent(instance)
        assert set(result.assignment) == set(instance.clients)
