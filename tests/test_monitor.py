"""Tests for the live run monitor (:mod:`repro.obs.monitor`)."""

from __future__ import annotations

import io
import json

from repro.obs import SeriesConfig, SeriesRecorder
from repro.obs.monitor import (
    SPARK_GLYPHS,
    load_snapshot,
    monitor_loop,
    render_snapshot,
    sparkline,
)


def _snapshot(tmp_path, final=True):
    path = str(tmp_path / "series.json")
    rec = SeriesRecorder(SeriesConfig(snapshot_path=path))
    for i in range(10):
        rec.series_point("serve.requests", float(i), i * 100, kind="counter")
        rec.series_point("serve.inflight", float(i), (i % 3) + 1)
        rec.observe("serve.latency_s", 0.1 * (i + 1))
    rec.count("serve.requests", 900)
    rec.write_snapshot(path, final=final)
    return path


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_low_glyph(self):
        assert sparkline([5, 5, 5]) == SPARK_GLYPHS[0] * 3

    def test_ramp_spans_glyphs(self):
        line = sparkline(list(range(8)))
        assert line[0] == SPARK_GLYPHS[0]
        assert line[-1] == SPARK_GLYPHS[-1]
        assert len(line) == 8

    def test_width_truncates_to_tail(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10


class TestRenderSnapshot:
    def test_frame_contains_all_sections(self, tmp_path):
        snapshot = load_snapshot(_snapshot(tmp_path))
        frame = render_snapshot(snapshot)
        assert "repro monitor [final]" in frame
        assert "serve.requests" in frame
        assert "serve.inflight" in frame
        assert "serve.latency_s" in frame
        assert "counters:" in frame

    def test_live_state_in_header(self, tmp_path):
        snapshot = load_snapshot(_snapshot(tmp_path, final=False))
        assert "repro monitor [live]" in render_snapshot(snapshot)

    def test_counter_series_shows_windowed_rate(self, tmp_path):
        snapshot = load_snapshot(_snapshot(tmp_path))
        frame = render_snapshot(snapshot)
        # serve.requests grows 100/step: the rate suffix, not the raw
        # cumulative value, is displayed for counter-kind series.
        assert "100.0/t" in frame


class TestMonitorLoop:
    def test_once_renders_single_frame_and_exits_zero(self, tmp_path):
        path = _snapshot(tmp_path, final=False)
        out = io.StringIO()
        assert monitor_loop(path, once=True, stream=out) == 0
        assert "repro monitor [live]" in out.getvalue()

    def test_final_snapshot_ends_loop(self, tmp_path):
        path = _snapshot(tmp_path, final=True)
        out = io.StringIO()
        assert monitor_loop(path, interval_s=0.01, stream=out) == 0
        assert "repro monitor [final]" in out.getvalue()

    def test_once_with_missing_file_exits_three(self, tmp_path):
        out = io.StringIO()
        code = monitor_loop(
            str(tmp_path / "absent.json"), once=True, stream=out
        )
        assert code == 3
        assert "no snapshot" in out.getvalue()

    def test_max_wait_gives_up(self, tmp_path):
        out = io.StringIO()
        code = monitor_loop(
            str(tmp_path / "absent.json"),
            interval_s=0.01,
            max_wait_s=0.02,
            stream=out,
        )
        assert code == 3
        assert "gave up" in out.getvalue()

    def test_rejects_non_series_document(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "repro-bench/1"}))
        out = io.StringIO()
        # A wrong-schema file is never rendered; with once=... the loop
        # would spin, so use load_snapshot directly.
        try:
            load_snapshot(str(path))
        except ValueError as error:
            assert "repro-series/1" in str(error)
        else:  # pragma: no cover
            raise AssertionError("wrong schema accepted")


class TestCLI:
    def test_monitor_once_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = _snapshot(tmp_path, final=True)
        assert main(["monitor", path, "--once"]) == 0
        captured = capsys.readouterr()
        assert "repro monitor [final]" in captured.out

    def test_monitor_missing_file_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["monitor", str(tmp_path / "absent.json"), "--once"])
        assert code == 3
