"""Shared fixtures: canonical graphs and caching problems.

The whole suite runs with the :mod:`repro.analysis.contracts` sanitizer
enabled (unless the caller already set ``REPRO_SANITIZE``), so every
dual ascent, chunk commit, and protocol session is invariant-checked.
"""

from __future__ import annotations

import os

os.environ.setdefault("REPRO_SANITIZE", "1")

import pytest

from repro.graphs import Graph, grid_graph, path_graph
from repro.workloads import grid_problem


@pytest.fixture
def triangle() -> Graph:
    """A 3-cycle with distinct weights."""
    return Graph([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])


@pytest.fixture
def grid4() -> Graph:
    return grid_graph(4)


@pytest.fixture
def grid6() -> Graph:
    return grid_graph(6)


@pytest.fixture
def path5() -> Graph:
    return path_graph(5)


@pytest.fixture
def paper_problem():
    """The paper's default scenario: 6x6 grid, producer 9, 5 chunks."""
    return grid_problem(6)


@pytest.fixture
def small_problem():
    """A quick 4x4 scenario for algorithm tests."""
    return grid_problem(4, num_chunks=3)
