"""Unit tests for the structured event tracer (repro.obs.trace)."""

import json

import pytest

from repro.obs import (
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)
from repro.obs.trace import DEFAULT_CAPACITY, TRACE_SCHEMA
from repro.workloads import grid_problem, random_problem


class TestRecording:
    def test_instant_event(self):
        tr = Tracer()
        tr.instant("tick", track="proto", args={"n": 1})
        (event,) = tr.events
        assert event.name == "tick"
        assert event.ph == "i"
        assert event.track == "proto"
        assert event.args == {"n": 1}
        assert event.ts >= 0.0

    def test_span_records_duration_on_exit(self):
        tr = Tracer()
        with tr.span("phase", track="solver") as span:
            span.add(extra=42)
        (event,) = tr.events
        assert event.ph == "X"
        assert event.dur >= 0.0
        assert event.args == {"extra": 42}

    def test_span_records_even_on_exception(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("phase"):
                raise ValueError("boom")
        assert len(tr.events) == 1

    def test_timestamps_are_monotonic(self):
        tr = Tracer()
        for i in range(10):
            tr.instant(f"e{i}")
        stamps = [event.ts for event in tr.events]
        assert stamps == sorted(stamps)

    def test_default_capacity(self):
        assert Tracer().capacity == DEFAULT_CAPACITY

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestRingBuffer:
    def test_overflow_drops_oldest_and_counts(self):
        tr = Tracer(capacity=10)
        for i in range(25):
            tr.instant(f"e{i}")
        assert len(tr.events) == 10
        assert tr.dropped == 15
        # The oldest were overwritten: only the newest 10 remain.
        assert [event.name for event in tr.events] == [
            f"e{i}" for i in range(15, 25)
        ]

    def test_no_drops_below_capacity(self):
        tr = Tracer(capacity=10)
        for i in range(10):
            tr.instant(f"e{i}")
        assert tr.dropped == 0
        assert len(tr.events) == 10

    def test_export_reports_drop_accounting(self):
        tr = Tracer(capacity=4)
        for i in range(9):
            tr.instant(f"e{i}")
        other = tr.export()["otherData"]
        assert other["schema"] == TRACE_SCHEMA
        assert other["capacity"] == 4
        assert other["retained_events"] == 4
        assert other["dropped_events"] == 5

    def test_drop_accounting_in_process_metadata(self):
        # Perfetto hides otherData, so the drop counters also ride on
        # the process_name metadata event, visible in the UI itself.
        tr = Tracer(capacity=4)
        for i in range(9):
            tr.instant(f"e{i}")
        process = tr.export()["traceEvents"][0]
        assert process["name"] == "process_name"
        assert process["args"]["dropped_events"] == 5
        assert process["args"]["retained_events"] == 4

    def test_write_warns_on_stderr_when_dropped(self, tmp_path, capsys):
        tr = Tracer(capacity=4)
        for i in range(9):
            tr.instant(f"e{i}")
        tr.write(str(tmp_path / "trace.json"), manifest={})
        captured = capsys.readouterr()
        assert "warning" in captured.err
        assert "dropped the 5 oldest" in captured.err

    def test_write_silent_without_drops(self, tmp_path, capsys):
        tr = Tracer(capacity=10)
        tr.instant("only")
        tr.write(str(tmp_path / "trace.json"), manifest={})
        assert capsys.readouterr().err == ""


class TestChromeExport:
    REQUIRED = {"name", "ph", "ts", "pid", "tid"}

    def _trace(self):
        tr = Tracer()
        with tr.span("outer", track="solver"):
            tr.instant("inner", track="proto", args={"k": "v"})
        tr.instant("lone", track="proto")
        return tr

    def test_every_event_has_the_required_fields(self):
        doc = self._trace().export()
        assert doc["traceEvents"]
        for event in doc["traceEvents"]:
            assert self.REQUIRED <= set(event), event
            assert event["ph"] in {"X", "i", "M"}
            if event["ph"] == "X":
                assert "dur" in event and event["dur"] >= 0.0
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_tracks_become_named_threads(self):
        doc = self._trace().export()
        thread_names = {
            event["tid"]: event["args"]["name"]
            for event in doc["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert set(thread_names.values()) == {"solver", "proto"}
        data_events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        # Every data event's tid maps to its track's thread.
        for event in data_events:
            assert thread_names[event["tid"]] == event["cat"]

    def test_export_is_json_serialisable(self):
        doc = self._trace().export()
        assert json.loads(json.dumps(doc)) == doc

    def test_manifest_embedded(self):
        doc = self._trace().export(manifest={"schema": "x", "note": "hi"})
        assert doc["otherData"]["manifest"] == {"schema": "x", "note": "hi"}
        default = self._trace().export()["otherData"]["manifest"]
        assert default["schema"] == "repro-manifest/1"

    def test_write_round_trips(self, tmp_path):
        tr = self._trace()
        path = tmp_path / "trace.json"
        # Pin the manifest: each export() builds a fresh one otherwise
        # (with a fresh created_unix timestamp).
        manifest = {"schema": "repro-manifest/1", "pinned": True}
        tr.write(str(path), manifest=manifest)
        assert json.loads(path.read_text()) == tr.export(manifest=manifest)


class TestNullTracer:
    def test_records_nothing(self):
        tr = NullTracer()
        tr.instant("x", args={"heavy": list(range(100))})
        with tr.span("y") as span:
            span.add(z=1)
        assert tr.events == []
        assert tr.dropped == 0
        assert tr.enabled is False

    def test_span_is_shared_noop(self):
        tr = NullTracer()
        assert tr.span("a") is tr.span("b")

    def test_default_tracer_is_null(self):
        assert isinstance(get_tracer(), NullTracer)


class TestActiveTracer:
    def test_use_tracer_swaps_and_restores(self):
        default = get_tracer()
        tr = Tracer()
        with use_tracer(tr) as active:
            assert active is tr
            assert get_tracer() is tr
        assert get_tracer() is default

    def test_restores_on_exception(self):
        default = get_tracer()
        with pytest.raises(RuntimeError):
            with use_tracer(Tracer()):
                raise RuntimeError
        assert get_tracer() is default

    def test_set_tracer_none_restores_default(self):
        tr = Tracer()
        set_tracer(tr)
        try:
            assert get_tracer() is tr
        finally:
            set_tracer(None)
        assert isinstance(get_tracer(), NullTracer)


class TestSolverInstrumentation:
    """The hot paths actually emit events through an active tracer."""

    def _names(self, tracer):
        counts = {}
        for event in tracer.events:
            counts[event.name] = counts.get(event.name, 0) + 1
        return counts

    def test_distributed_run_traces_every_table2_message(self):
        from repro.distributed import solve_distributed

        problem, _ = random_problem(20, seed=7, num_chunks=2, capacity=4)
        tr = Tracer()
        with use_tracer(tr):
            outcome = solve_distributed(problem)
        names = self._names(tr)
        # One msg.<TYPE> instant per delivered message, per Table II type.
        for msg_type, count in outcome.stats.messages.items():
            if count:
                assert names[f"msg.{msg_type}"] == count
        assert names["chunk_session"] == problem.num_chunks
        assert names["dist.tick"] == sum(outcome.ticks_per_chunk)
        assert names["sim.run"] == problem.num_chunks
        assert names["commit.chunk"] == problem.num_chunks
        # Commit spans carry the placement payload.
        commits = [e for e in tr.events if e.name == "commit.chunk"]
        for event in commits:
            assert set(event.args) >= {"chunk", "caches", "copies",
                                       "fairness", "access", "dissemination"}

    def test_dual_ascent_traces_rounds_and_openings(self):
        from repro.core import solve_approximation

        problem = grid_problem(4, num_chunks=2)
        tr = Tracer()
        with use_tracer(tr):
            solve_approximation(problem)
        names = self._names(tr)
        assert names["dual_ascent.round"] > 0
        rounds = [e for e in tr.events if e.name == "dual_ascent.round"]
        for event in rounds:
            assert set(event.args) >= {"round", "jump", "frozen", "admins",
                                       "tight_edges", "alpha_active_max"}
        opens = [e for e in tr.events if e.name == "dual_ascent.admin_open"]
        for event in opens:
            assert event.args["payment"] >= 0.0
            assert event.args["tight_clients"] >= 1

    def test_commit_traces_cost_attribution(self):
        from repro.core import solve_approximation

        problem = grid_problem(4, num_chunks=2)
        tr = Tracer()
        with use_tracer(tr):
            solve_approximation(problem)
        modes = [
            e.args["mode"]
            for e in tr.events
            if e.name == "costs.invalidate"
        ]
        assert modes  # attribution instants present
        # Default hops policy: every commit patches incrementally.
        assert set(modes) <= {"incremental", "full"}
        assert "incremental" in modes
        cached = [e for e in tr.events if e.name == "storage.cache"]
        assert cached
        for event in cached:
            assert set(event.args) == {"node", "chunk", "used"}

    def test_runner_wraps_solvers_in_spans(self):
        from repro.experiments import run_algorithms

        problem = grid_problem(4, num_chunks=1)
        tr = Tracer()
        with use_tracer(tr):
            run_algorithms(problem, ["Appx"])
        spans = [e for e in tr.events if e.name == "solver.Appx"]
        assert len(spans) == 1
        assert spans[0].ph == "X"
        assert spans[0].args["algorithm"] == "Appx"

    def test_untraced_run_records_nothing(self):
        from repro.core import solve_approximation

        solve_approximation(grid_problem(4, num_chunks=1))
        assert get_tracer().events == []
        assert get_tracer().dropped == 0

    def test_exported_solver_trace_is_schema_valid(self):
        from repro.distributed import solve_distributed

        problem, _ = random_problem(20, seed=7, num_chunks=1, capacity=4)
        tr = Tracer()
        with use_tracer(tr):
            solve_distributed(problem)
        doc = tr.export()
        json.dumps(doc)  # JSON-safe payloads all the way down
        for event in doc["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
            assert event["ph"] in {"X", "i", "M"}
