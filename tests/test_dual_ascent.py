"""Unit tests for the ConFL instance builder and the dual ascent."""

import math

import pytest

from repro.core import (
    CachingProblem,
    DualAscentConfig,
    build_confl_instance,
    dual_ascent,
)
from repro.errors import SolverError
from repro.graphs import grid_graph, path_graph, star_graph
from repro.workloads import grid_problem


class TestConFLInstance:
    def test_clients_and_facilities(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        assert small_problem.producer not in instance.clients
        assert small_problem.producer not in instance.facilities
        assert len(instance.clients) == 15
        assert len(instance.facilities) == 15

    def test_full_nodes_not_facilities(self):
        problem = grid_problem(3, num_chunks=1, capacity=1)
        state = problem.new_state()
        state.cache(0, 0)
        instance = build_confl_instance(state)
        assert 0 not in instance.facilities

    def test_open_costs_track_storage(self, small_problem):
        state = small_problem.new_state()
        state.cache(1, 0)
        instance = build_confl_instance(state)
        assert instance.open_cost[1] == pytest.approx(0.25)
        assert instance.raw_open_cost[2] == 0.0

    def test_weights_applied(self):
        problem = grid_problem(
            4, num_chunks=1, fairness_weight=2.0, contention_weight=3.0
        )
        state = problem.new_state()
        state.cache(1, 0)
        instance = build_confl_instance(state)
        assert instance.open_cost[1] == pytest.approx(0.5)
        raw = instance.raw_connect_cost[problem.producer][0]
        assert instance.connect_cost[problem.producer][0] == pytest.approx(3 * raw)

    def test_connect_cost_self_zero(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        assert instance.connect_cost[1][1] == 0.0

    def test_steiner_graph_weights(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        g = small_problem.graph
        assert instance.steiner_graph.weight(0, 1) == g.degree(0) + g.degree(1)

    def test_max_connect_cost_positive(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        assert instance.max_connect_cost() > 0


class TestDualAscent:
    def test_every_client_served(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        result = dual_ascent(instance)
        assert set(result.assignment) == set(instance.clients)

    def test_assignment_targets_valid(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        result = dual_ascent(instance)
        valid = set(result.admins) | {instance.producer}
        assert set(result.assignment.values()) <= valid

    def test_admins_unique(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        result = dual_ascent(instance)
        assert len(result.admins) == len(set(result.admins))

    def test_deterministic(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        a = dual_ascent(instance)
        b = dual_ascent(instance)
        assert a.admins == b.admins
        assert a.assignment == b.assignment
        assert a.rounds == b.rounds

    def test_rounds_bounded_by_max_cost(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        config = DualAscentConfig(step=1.0)
        result = dual_ascent(instance, config)
        assert result.rounds <= instance.max_connect_cost() + 1

    def test_larger_step_fewer_rounds(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        slow = dual_ascent(instance, DualAscentConfig(step=0.5))
        fast = dual_ascent(instance, DualAscentConfig(step=4.0))
        assert fast.rounds < slow.rounds

    def test_bad_step_rejected(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        with pytest.raises(SolverError):
            dual_ascent(instance, DualAscentConfig(step=0.0))

    def test_high_threshold_opens_nothing_on_star(self):
        # Star: producer at hub; all leaves 1 hop from producer; with a
        # threshold above the leaf count no facility can open.
        problem = CachingProblem(graph=star_graph(4), producer=0, num_chunks=1)
        instance = build_confl_instance(problem.new_state())
        result = dual_ascent(instance, DualAscentConfig(span_threshold=50))
        assert result.admins == []
        assert all(t == 0 for t in result.assignment.values())

    def test_threshold_one_opens_quickly(self):
        problem = CachingProblem(
            graph=path_graph(7), producer=0, num_chunks=1
        )
        instance = build_confl_instance(problem.new_state())
        result = dual_ascent(instance, DualAscentConfig(span_threshold=1))
        assert len(result.admins) >= 1

    def test_alpha_nonnegative_monotone(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        result = dual_ascent(instance)
        assert all(a >= 0 for a in result.alpha.values())

    def test_full_storage_never_admin(self):
        problem = grid_problem(3, num_chunks=1, capacity=1)
        state = problem.new_state()
        for node in problem.clients:
            state.cache(node, 0)
        instance = build_confl_instance(state)
        result = dual_ascent(instance)
        assert result.admins == []

    def test_resolved_threshold_fallbacks(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        assert DualAscentConfig(span_threshold=None).resolved_threshold(
            instance
        ) == max(1, int(round(instance.dissemination_scale)))
        assert DualAscentConfig(span_threshold=7).resolved_threshold(instance) == 7


class TestDualInvariants:
    """Invariants the primal-dual argument of Theorem 1 relies on."""

    def test_frozen_clients_afford_their_server(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        result = dual_ascent(instance)
        for client, server in result.assignment.items():
            assert result.alpha[client] >= (
                instance.connect_cost[server][client] - 1e-9
            )

    def test_open_facilities_fully_paid(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        result = dual_ascent(instance)
        for admin in result.admins:
            assert result.payments[admin] >= instance.open_cost[admin] - 1e-9

    def test_admins_had_enough_spans(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        config = DualAscentConfig()
        result = dual_ascent(instance, config)
        threshold = config.resolved_threshold(instance)
        for admin in result.admins:
            assert result.span_counts[admin] >= threshold

    def test_jump_optimization_preserves_trajectory(self, small_problem):
        """Event-jumping must give the same result as tiny uniform steps
        (it only skips rounds in which nothing can happen)."""
        instance = build_confl_instance(small_problem.new_state())
        coarse = dual_ascent(instance, DualAscentConfig(step=1.0))
        fine = dual_ascent(instance, DualAscentConfig(step=1.0))
        assert coarse.admins == fine.admins
        assert coarse.assignment == fine.assignment


class TestWorkedExample:
    """Pin the 5-node path trace documented in docs/ALGORITHMS.md."""

    def _instance(self):
        from repro.graphs import Graph

        g = Graph()
        for a, b in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            g.add_edge(a, b)
        problem = CachingProblem(graph=g, producer=0, num_chunks=1)
        return build_confl_instance(problem.new_state())

    def test_documented_outcome(self):
        result = dual_ascent(self._instance())
        assert result.admins == [3]
        assert result.rounds == 4
        assert result.assignment == {1: 0, 2: 3, 3: 3, 4: 3}
        assert result.alpha == {1: 3.0, 2: 4.0, 3: 4.0, 4: 4.0}
        assert result.payments[3] == pytest.approx(5.0)
        assert result.span_counts[3] == 3

    def test_documented_counters(self):
        from repro.obs import Recorder, use_recorder

        rec = Recorder()
        with use_recorder(rec):
            dual_ascent(self._instance())
        assert rec.counter("dual_ascent.rounds") == 4
        assert rec.counter("dual_ascent.freezes.direct") == 1
        assert rec.counter("dual_ascent.freezes.via_opening") == 3
        assert rec.counter("dual_ascent.admins_opened") == 1
