"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_args(self):
        args = build_parser().parse_args(["experiment", "fig6", "--fast"])
        assert args.command == "experiment"
        assert args.id == "fig6"
        assert args.fast

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_solve_requires_topology(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve"])

    def test_solve_grid(self):
        args = build_parser().parse_args(
            ["solve", "--grid", "4", "--algorithm", "appx"]
        )
        assert args.grid == 4

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.command == "bench"
        assert args.output == "BENCH.json"
        assert args.scenario is None
        assert args.algorithms == "appx,dist"
        assert args.repeats is None
        assert not args.quick
        assert args.max_full_rebuilds is None
        assert args.compare is None
        assert args.threshold == 25.0
        assert args.trace is None

    def test_bench_compare_and_trace_flags(self):
        args = build_parser().parse_args(
            ["bench", "--compare", "BENCH_PR3.json", "--threshold", "10",
             "--trace", "t.json"]
        )
        assert args.compare == "BENCH_PR3.json"
        assert args.threshold == 10.0
        assert args.trace == "t.json"

    def test_solve_trace_flag(self):
        args = build_parser().parse_args(
            ["solve", "--grid", "4", "--trace", "t.json"]
        )
        assert args.trace == "t.json"

    def test_bench_quick_flags(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "--max-full-rebuilds", "0"]
        )
        assert args.quick
        assert args.max_full_rebuilds == 0

    def test_bench_custom_args(self):
        args = build_parser().parse_args(
            ["bench", "-o", "BENCH_PR1.json", "--scenario", "small",
             "--scenario", "large", "--repeats", "1"]
        )
        assert args.output == "BENCH_PR1.json"
        assert args.scenario == ["small", "large"]


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "appx" in out

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 1

    def test_solve_grid_appx(self, capsys):
        assert main(["solve", "--grid", "4", "--chunks", "2",
                     "--algorithm", "appx"]) == 0
        out = capsys.readouterr().out
        assert "total contention cost" in out
        assert "chunk 0" in out

    def test_solve_random_hopc(self, capsys):
        assert main(["solve", "--random", "15", "--seed", "3",
                     "--chunks", "1", "--algorithm", "hopc"]) == 0
        assert "Hopc" in capsys.readouterr().out

    def test_experiment_fast(self, capsys):
        assert main(["experiment", "fig6", "--fast"]) == 0
        assert "p75-fairness" in capsys.readouterr().out


class TestShowMap:
    def test_grid_map_rendered(self, capsys):
        assert main(["solve", "--grid", "3", "--chunks", "1",
                     "--show-map"]) == 0
        out = capsys.readouterr().out
        assert "per-node load map" in out
        assert "*" in out

    def test_map_requires_grid(self, capsys):
        assert main(["solve", "--random", "12", "--chunks", "1",
                     "--show-map"]) == 0
        assert "--show-map requires" in capsys.readouterr().out

    def test_greedy_alias(self, capsys):
        assert main(["solve", "--grid", "4", "--chunks", "1",
                     "--algorithm", "greedy"]) == 0
        assert "Greedy" in capsys.readouterr().out


class TestBench:
    def test_custom_nodes_scenario_writes_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "bench.json"
        assert main(["bench", "--nodes", "12", "--repeats", "1",
                     "--algorithms", "appx", "-o", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["schema"] == "repro-bench/1"
        scenario = data["scenarios"][0]
        assert scenario["network"]["nodes"] == 12
        assert "Appx" in scenario["algorithms"]
        printed = capsys.readouterr().out
        assert "custom-12" in printed
        assert str(out) in printed

    def test_unknown_scenario_rejected(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--scenario", "galactic",
                     "-o", str(out)]) == 2
        assert not out.exists()
        assert "unknown scenario" in capsys.readouterr().err

    def test_unknown_algorithm_rejected(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--algorithms", "appx,bogus",
                     "-o", str(out)]) == 2
        assert not out.exists()
        err = capsys.readouterr().err
        assert "unknown algorithm" in err and "bogus" in err

    def test_empty_algorithms_rejected(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--algorithms", ",", "-o", str(out)]) == 2
        assert not out.exists()
        assert "no algorithms" in capsys.readouterr().err

    def test_zero_repeats_rejected(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--nodes", "10", "--repeats", "0",
                     "-o", str(out)]) == 2
        assert not out.exists()
        assert "--repeats" in capsys.readouterr().err

    def test_nodes_and_scenario_conflict(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--nodes", "10", "--scenario", "small",
                     "-o", str(out)]) == 2
        assert not out.exists()
        assert "mutually exclusive" in capsys.readouterr().err

    def test_quick_conflicts_with_scenario(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--scenario", "small",
                     "-o", str(out)]) == 2
        assert not out.exists()
        assert "mutually exclusive" in capsys.readouterr().err

    def test_quick_runs_small_once_within_budget(self, tmp_path, capsys):
        import json

        out = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--algorithms", "appx",
                     "--max-full-rebuilds", "0", "-o", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["repeats"] == 1
        assert [s["name"] for s in data["scenarios"]] == [
            "small", "serve-scale", "dist-faults", "adaptive-drift",
        ]
        counters = data["scenarios"][0]["algorithms"]["Appx"]["counters"]
        assert counters.get("costs.full_rebuilds", 0) == 0
        assert counters["costs.incremental_patches"] > 0
        # serve-scale gates the serving engine only: no solver entries,
        # and the batched path's counters are in the serve section.
        scale = data["scenarios"][1]
        assert scale["algorithms"] == {}
        assert scale["serve"]["requests"] == 200_000
        assert scale["serve"]["counters"]["serve.batch.requests"] == 200_000
        # dist-faults gates the fault plane only: one DistFaults entry,
        # no serve section.
        faults = data["scenarios"][2]
        assert set(faults["algorithms"]) == {"DistFaults"}
        assert faults.get("serve") is None
        # adaptive-drift gates the control loop only: one Adaptive entry
        # carrying the loop summary, which must beat the static arm.
        adaptive = data["scenarios"][3]
        assert set(adaptive["algorithms"]) == {"Adaptive"}
        summary = adaptive["algorithms"]["Adaptive"]["adaptive"]
        assert summary["savings"] > 0
        assert "full-rebuild budget OK" in capsys.readouterr().out

    def test_full_rebuild_budget_overrun_fails(self, tmp_path, capsys,
                                               monkeypatch):
        import json

        # Force the engine over budget: pretend every patch was a drop.
        from repro.obs import bench as bench_mod

        original = bench_mod.bench_algorithm

        def inflated(problem, algorithm, repeats=1, series=False):
            outcome = original(problem, algorithm, repeats=repeats,
                               series=series)
            outcome["counters"]["costs.full_rebuilds"] = 7
            return outcome

        monkeypatch.setattr(bench_mod, "bench_algorithm", inflated)
        out = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--algorithms", "appx",
                     "--max-full-rebuilds", "0", "-o", str(out)]) == 3
        assert json.loads(out.read_text())["schema"] == "repro-bench/1"
        err = capsys.readouterr().err
        assert "full cost" in err and "budget 0" in err


class TestTraceExport:
    def test_solve_writes_perfetto_trace(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        assert main(["solve", "--random", "20", "--chunks", "1",
                     "--algorithm", "dist", "--trace", str(trace_path)]) == 0
        doc = json.loads(trace_path.read_text())
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
        names = {event["name"] for event in events}
        # Per-round Algorithm 2 message events, keyed by Table II type.
        assert "msg.NPI" in names and "msg.CC" in names
        assert "dist.tick" in names
        assert "solver.Dist" in names
        assert doc["otherData"]["manifest"]["schema"] == "repro-manifest/1"
        assert "wrote trace" in capsys.readouterr().out

    def test_bench_writes_trace(self, tmp_path):
        import json

        trace_path = tmp_path / "bench-trace.json"
        out = tmp_path / "bench.json"
        assert main(["bench", "--nodes", "12", "--repeats", "1",
                     "--algorithms", "appx", "-o", str(out),
                     "--trace", str(trace_path)]) == 0
        doc = json.loads(trace_path.read_text())
        names = {event["name"] for event in doc["traceEvents"]}
        assert "dual_ascent.round" in names
        assert "commit.chunk" in names

    def test_no_trace_flag_writes_nothing(self, tmp_path):
        out = tmp_path / "bench.json"
        assert main(["bench", "--nodes", "10", "--repeats", "1",
                     "--algorithms", "appx", "-o", str(out)]) == 0
        assert not (tmp_path / "trace.json").exists()


def test_experiment_all_accepted():
    args = build_parser().parse_args(["experiment", "all", "--fast"])
    assert args.id == "all"
