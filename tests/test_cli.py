"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_args(self):
        args = build_parser().parse_args(["experiment", "fig6", "--fast"])
        assert args.command == "experiment"
        assert args.id == "fig6"
        assert args.fast

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_solve_requires_topology(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve"])

    def test_solve_grid(self):
        args = build_parser().parse_args(
            ["solve", "--grid", "4", "--algorithm", "appx"]
        )
        assert args.grid == 4


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "appx" in out

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 1

    def test_solve_grid_appx(self, capsys):
        assert main(["solve", "--grid", "4", "--chunks", "2",
                     "--algorithm", "appx"]) == 0
        out = capsys.readouterr().out
        assert "total contention cost" in out
        assert "chunk 0" in out

    def test_solve_random_hopc(self, capsys):
        assert main(["solve", "--random", "15", "--seed", "3",
                     "--chunks", "1", "--algorithm", "hopc"]) == 0
        assert "Hopc" in capsys.readouterr().out

    def test_experiment_fast(self, capsys):
        assert main(["experiment", "fig6", "--fast"]) == 0
        assert "p75-fairness" in capsys.readouterr().out


class TestShowMap:
    def test_grid_map_rendered(self, capsys):
        assert main(["solve", "--grid", "3", "--chunks", "1",
                     "--show-map"]) == 0
        out = capsys.readouterr().out
        assert "per-node load map" in out
        assert "*" in out

    def test_map_requires_grid(self, capsys):
        assert main(["solve", "--random", "12", "--chunks", "1",
                     "--show-map"]) == 0
        assert "--show-map requires" in capsys.readouterr().out

    def test_greedy_alias(self, capsys):
        assert main(["solve", "--grid", "4", "--chunks", "1",
                     "--algorithm", "greedy"]) == 0
        assert "Greedy" in capsys.readouterr().out


def test_experiment_all_accepted():
    args = build_parser().parse_args(["experiment", "all", "--fast"])
    assert args.id == "all"
