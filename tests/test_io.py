"""Unit tests for placement/problem JSON serialization."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CachingProblem, solve_approximation
from repro.errors import ProblemError
from repro.graphs import Graph, grid_graph
from repro.io import (
    decode_node,
    encode_node,
    graph_from_dict,
    graph_to_dict,
    load_placement,
    placement_from_dict,
    placement_to_dict,
    problem_from_dict,
    problem_to_dict,
    save_placement,
)
from repro.workloads import grid_problem

node_labels = st.recursive(
    st.one_of(
        st.integers(min_value=-10**6, max_value=10**6),
        st.text(max_size=12),
        st.booleans(),
    ),
    lambda children: st.tuples(children, children),
    max_leaves=4,
)


class TestNodeCodec:
    @given(node_labels)
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, label):
        assert decode_node(encode_node(label)) == label

    def test_bool_not_confused_with_int(self):
        assert decode_node(encode_node(True)) is True
        assert decode_node(encode_node(1)) == 1
        assert type(decode_node(encode_node(1))) is int

    def test_tuple_nesting(self):
        label = (1, ("a", 2))
        assert decode_node(encode_node(label)) == label

    def test_unsupported_type_rejected(self):
        with pytest.raises(ProblemError):
            encode_node([1, 2])

    def test_malformed_payload_rejected(self):
        with pytest.raises(ProblemError):
            decode_node({"v": 1})
        with pytest.raises(ProblemError):
            decode_node({"t": "complex", "v": 1})


class TestGraphCodec:
    def test_round_trip_weights(self):
        g = Graph([(0, 1, 2.5), ((1, 2), "x", 1.0)])
        restored = graph_from_dict(graph_to_dict(g))
        assert restored.weight(0, 1) == 2.5
        assert restored.has_edge((1, 2), "x")
        assert restored.num_nodes == g.num_nodes

    def test_isolated_nodes_kept(self):
        g = Graph()
        g.add_node(7)
        restored = graph_from_dict(graph_to_dict(g))
        assert 7 in restored


class TestProblemCodec:
    def test_round_trip(self):
        problem = grid_problem(4, num_chunks=3, capacity=2,
                               fairness_weight=2.0)
        restored = problem_from_dict(problem_to_dict(problem))
        assert restored.producer == problem.producer
        assert restored.num_chunks == 3
        assert restored.fairness_weight == 2.0
        assert restored.new_storage().capacity(0) == 2
        assert restored.graph.num_edges == problem.graph.num_edges


class TestPlacementCodec:
    @pytest.fixture(scope="class")
    def placement(self):
        return solve_approximation(grid_problem(4, num_chunks=3))

    def test_round_trip_equivalence(self, placement):
        restored = placement_from_dict(placement_to_dict(placement))
        assert restored.algorithm == placement.algorithm
        assert [c.caches for c in restored.chunks] == [
            c.caches for c in placement.chunks
        ]
        assert restored.objective_value() == pytest.approx(
            placement.objective_value()
        )
        assert restored.loads() == placement.loads()

    def test_payload_is_json_safe(self, placement):
        text = json.dumps(placement_to_dict(placement))
        assert "chunk" in text

    def test_file_round_trip(self, placement, tmp_path):
        path = tmp_path / "placement.json"
        save_placement(placement, str(path))
        restored = load_placement(str(path))
        assert restored.total_copies() == placement.total_copies()

    def test_version_checked(self, placement):
        payload = placement_to_dict(placement)
        payload["format_version"] = 99
        with pytest.raises(ProblemError):
            placement_from_dict(payload)

    def test_tampered_placement_rejected(self, placement):
        """Deserialization re-validates: a corrupted assignment fails."""
        payload = placement_to_dict(placement)
        payload["chunks"][0]["assignment"] = payload["chunks"][0]["assignment"][:1]
        with pytest.raises(ProblemError):
            placement_from_dict(payload)
