"""Unit tests for the observability layer (repro.obs)."""

import json
import time

import pytest

from repro.obs import (
    NullRecorder,
    Recorder,
    get_recorder,
    set_recorder,
    use_recorder,
)
from repro.obs.bench import (
    BENCH_SCHEMA,
    BenchScenario,
    DEFAULT_SUITE,
    SUITE_BY_NAME,
    bench_algorithm,
    render_bench,
    run_bench,
    write_bench,
)
from repro.workloads import grid_problem


class TestCounters:
    def test_default_increment_is_one(self):
        rec = Recorder()
        rec.count("x")
        rec.count("x")
        assert rec.counter("x") == 2

    def test_custom_increment(self):
        rec = Recorder()
        rec.count("rounds", 7)
        rec.count("rounds", 3)
        assert rec.counter("rounds") == 10

    def test_missing_counter_is_zero(self):
        assert Recorder().counter("never") == 0


class TestTimers:
    def test_records_seconds_and_calls(self):
        rec = Recorder()
        with rec.timer("phase"):
            time.sleep(0.001)
        dump = rec.dump()
        assert dump["timers"]["phase"]["calls"] == 1
        assert dump["timers"]["phase"]["seconds"] > 0

    def test_nesting_builds_paths(self):
        rec = Recorder()
        with rec.timer("outer"):
            with rec.timer("inner"):
                pass
            with rec.timer("inner"):
                pass
        dump = rec.dump()
        assert set(dump["timers"]) == {"outer", "outer/inner"}
        assert dump["timers"]["outer/inner"]["calls"] == 2

    def test_same_name_nested_twice(self):
        rec = Recorder()
        with rec.timer("a"):
            with rec.timer("a"):
                pass
        assert set(rec.dump()["timers"]) == {"a", "a/a"}

    def test_stack_unwinds_on_exception(self):
        rec = Recorder()
        with pytest.raises(ValueError):
            with rec.timer("outer"):
                raise ValueError("boom")
        assert rec.active_phase is None
        # A later timer must not inherit the failed phase as a parent.
        with rec.timer("later"):
            pass
        assert "later" in rec.dump()["timers"]

    def test_timer_seconds_accessor(self):
        rec = Recorder()
        with rec.timer("t"):
            pass
        assert rec.timer_seconds("t") >= 0.0
        assert rec.timer_seconds("absent") == 0.0

    def test_per_call_min_max_mean(self):
        rec = Recorder()
        with rec.timer("t"):
            time.sleep(0.002)
        with rec.timer("t"):
            pass
        stat = rec.dump()["timers"]["t"]
        assert stat["calls"] == 2
        assert 0.0 <= stat["min"] <= stat["max"]
        assert stat["max"] >= 0.002
        assert stat["mean"] == pytest.approx(stat["seconds"] / 2)
        # min/max bracket the mean and the render shows the worst case.
        assert stat["min"] <= stat["mean"] <= stat["max"]
        assert "max" in rec.render()


class TestGauges:
    def test_summary_statistics(self):
        rec = Recorder()
        for value in (3, 1, 2):
            rec.gauge("depth", value)
        stat = rec.dump()["gauges"]["depth"]
        assert stat == {"last": 2, "min": 1, "max": 3, "mean": 2.0, "count": 3}

    def test_repeated_calls_aggregate_not_overwrite(self):
        # A gauge sampled many times must keep the full count and the
        # extremes, not just the latest value.
        rec = Recorder()
        for value in range(10):
            rec.gauge("q", value)
        for value in range(9, -1, -1):
            rec.gauge("q", value)
        stat = rec.dump()["gauges"]["q"]
        assert stat["count"] == 20
        assert stat["min"] == 0
        assert stat["max"] == 9
        assert stat["last"] == 0
        assert stat["mean"] == pytest.approx(4.5)

    def test_single_sample(self):
        rec = Recorder()
        rec.gauge("one", 7.5)
        assert rec.dump()["gauges"]["one"] == {
            "last": 7.5, "min": 7.5, "max": 7.5, "mean": 7.5, "count": 1,
        }


class TestDump:
    def test_json_round_trip(self):
        rec = Recorder()
        rec.count("c", 5)
        rec.gauge("g", 1.5)
        with rec.timer("t"):
            pass
        assert json.loads(rec.to_json()) == rec.dump()

    def test_reset_clears_everything(self):
        rec = Recorder()
        rec.count("c")
        rec.gauge("g", 1)
        with rec.timer("t"):
            pass
        rec.reset()
        dump = rec.dump()
        assert dump["counters"] == {}
        assert dump["timers"] == {}
        assert dump["gauges"] == {}

    def test_dump_embeds_manifest(self):
        rec = Recorder()
        manifest = rec.dump()["manifest"]
        assert manifest["schema"] == "repro-manifest/1"
        assert set(manifest) >= {"python", "platform", "git_sha",
                                 "created_unix"}
        # The manifest is stable across dumps of the same recorder, so
        # dump() == json.loads(to_json()) holds (created_unix is pinned
        # at construction).
        assert rec.dump()["manifest"] == manifest

    def test_annotations_reach_manifest_and_survive_reset(self):
        rec = Recorder()
        rec.annotate(scenario="small", seed=2017)
        rec.count("c")
        rec.reset()
        manifest = rec.dump()["manifest"]
        assert manifest["scenario"] == "small"
        assert manifest["seed"] == 2017

    def test_render_mentions_all_sections(self):
        rec = Recorder()
        rec.count("my.counter")
        rec.gauge("my.gauge", 4)
        with rec.timer("my_phase"):
            pass
        text = rec.render()
        assert "my.counter" in text
        assert "my.gauge" in text
        assert "my_phase" in text

    def test_empty_render(self):
        assert Recorder().render() == "(recorder is empty)"


class TestNullRecorder:
    def test_records_nothing(self):
        rec = NullRecorder()
        rec.count("c", 100)
        rec.gauge("g", 1)
        with rec.timer("t"):
            pass
        dump = rec.dump()
        assert dump["counters"] == {}
        assert dump["timers"] == {}
        assert dump["gauges"] == {}

    def test_timer_is_shared_noop(self):
        rec = NullRecorder()
        assert rec.timer("a") is rec.timer("b")

    def test_overhead_is_small(self):
        # The no-op path must stay in the tens-of-ns regime; a generous
        # bound keeps this stable on slow CI machines.
        rec = NullRecorder()
        start = time.perf_counter()
        for _ in range(100_000):
            rec.count("x")
        assert time.perf_counter() - start < 0.5


class TestActiveRecorder:
    def test_default_is_null(self):
        assert isinstance(get_recorder(), NullRecorder)

    def test_use_recorder_swaps_and_restores(self):
        default = get_recorder()
        rec = Recorder()
        with use_recorder(rec) as active:
            assert active is rec
            assert get_recorder() is rec
        assert get_recorder() is default

    def test_restores_on_exception(self):
        default = get_recorder()
        with pytest.raises(RuntimeError):
            with use_recorder(Recorder()):
                raise RuntimeError
        assert get_recorder() is default

    def test_set_recorder_none_restores_default(self):
        rec = Recorder()
        set_recorder(rec)
        try:
            assert get_recorder() is rec
        finally:
            set_recorder(None)
        assert isinstance(get_recorder(), NullRecorder)


class TestInstrumentation:
    """The hot paths actually report through an active recorder."""

    @pytest.fixture
    def problem(self):
        return grid_problem(4, num_chunks=2)

    def test_approximation_phases_and_counters(self, problem):
        from repro.core import solve_approximation

        rec = Recorder()
        with use_recorder(rec):
            solve_approximation(problem)
        dump = rec.dump()
        for path in (
            "solve_approximation",
            "solve_approximation/cost_rebuild",
            "solve_approximation/dual_ascent",
            "solve_approximation/commit",
            "solve_approximation/commit/steiner",
        ):
            assert path in dump["timers"], path
        assert rec.counter("dual_ascent.runs") == problem.num_chunks
        assert rec.counter("dual_ascent.rounds") > 0
        assert rec.counter("costs.invalidations") > 0
        assert rec.counter("costs.row_builds") > 0
        # Every client freezes exactly once per chunk.
        freezes = (
            rec.counter("dual_ascent.freezes.direct")
            + rec.counter("dual_ascent.freezes.via_opening")
        )
        assert freezes == len(problem.clients) * problem.num_chunks

    def test_distributed_messages_and_gauges(self, problem):
        from repro.distributed import solve_distributed

        rec = Recorder()
        with use_recorder(rec):
            outcome = solve_distributed(problem)
        dump = rec.dump()
        assert rec.counter("dist.messages.total") == outcome.stats.total_messages()
        assert rec.counter("dist.messages.NPI") == outcome.stats.messages["NPI"]
        # The always-on Table II census (summed per chunk session) must
        # agree with the MessageStats totals exactly.
        assert rec.counter("protocol.msgs.total") == outcome.stats.total_messages()
        for msg_type, count in outcome.stats.messages.items():
            if count:
                assert rec.counter(f"protocol.msgs.{msg_type}") == count
        assert rec.counter("sim.events") == outcome.sim_events
        assert rec.counter("dist.chunk_sessions") == problem.num_chunks
        assert "dist.node_tight_queue" in dump["gauges"]
        assert "sim.max_queue_depth" in dump["gauges"]
        assert "solve_distributed" in dump["timers"]
        assert "solve_distributed/chunk_session/commit" in dump["timers"]

    def test_uninstrumented_run_leaves_default_recorder_empty(self, problem):
        from repro.core import solve_approximation

        solve_approximation(problem)
        dump = get_recorder().dump()
        assert dump["counters"] == {}
        assert dump["timers"] == {}
        assert dump["gauges"] == {}


class TestBench:
    TINY = BenchScenario("tiny", 12, seed=3, num_chunks=2)

    def test_default_suite_has_the_acceptance_scenarios(self):
        assert [s.name for s in DEFAULT_SUITE] == [
            "small", "medium", "large", "serve-scale", "dist-faults",
            "adaptive-drift",
        ]
        assert SUITE_BY_NAME["large"].num_nodes == 100
        scale = SUITE_BY_NAME["serve-scale"]
        assert scale.serve_only
        assert scale.serve_requests == 200_000
        adaptive = SUITE_BY_NAME["adaptive-drift"]
        assert adaptive.adaptive_only

    def test_bench_algorithm_reports_wall_and_recorder(self):
        outcome = bench_algorithm(self.TINY.build(), "Appx", repeats=2)
        assert outcome["wall_seconds"] > 0
        assert outcome["counters"]["dual_ascent.runs"] == 2
        assert "solve_approximation" in outcome["timers"]
        assert outcome["placement"]["total_cost"] > 0

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            bench_algorithm(self.TINY.build(), "Quantum")

    def test_run_and_write_round_trip(self, tmp_path):
        result = run_bench([self.TINY], algorithms=("Appx", "Dist"), repeats=1)
        assert result["schema"] == BENCH_SCHEMA
        assert [s["name"] for s in result["scenarios"]] == ["tiny"]
        algos = result["scenarios"][0]["algorithms"]
        assert set(algos) == {"Appx", "Dist"}
        assert algos["Dist"]["counters"]["dist.messages.total"] > 0
        path = tmp_path / "bench.json"
        write_bench(result, str(path))
        assert json.loads(path.read_text()) == result
        text = render_bench(result)
        assert "tiny" in text and "Appx" in text and "Dist" in text

    def test_bench_document_carries_manifest(self):
        result = run_bench([self.TINY], algorithms=("Appx",), repeats=1)
        manifest = result["manifest"]
        assert manifest["schema"] == "repro-manifest/1"
        assert manifest["repeats"] == 1
        assert manifest["algorithms"] == ["Appx"]
        assert manifest["scenarios"] == [self.TINY.network_info()]
        assert "git_sha" in manifest and "python" in manifest
