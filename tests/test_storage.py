"""Unit tests for StorageState."""

import pytest

from repro.core import StorageState
from repro.errors import CapacityError, ProblemError


@pytest.fixture
def storage():
    return StorageState(nodes=range(4), capacity=2, producer=0)


class TestBasics:
    def test_initial_state(self, storage):
        assert storage.used(1) == 0
        assert storage.capacity(1) == 2
        assert storage.available(1) == 2
        assert storage.total_cached() == 0

    def test_membership(self, storage):
        assert 1 in storage
        assert 99 not in storage

    def test_per_node_capacities(self):
        s = StorageState(nodes=[1, 2], capacity={1: 3, 2: 0})
        assert s.capacity(1) == 3
        assert s.capacity(2) == 0
        assert not s.can_cache(2)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ProblemError):
            StorageState(nodes=[1], capacity=-1)

    def test_producer_must_be_a_node(self):
        with pytest.raises(ProblemError):
            StorageState(nodes=[1, 2], capacity=2, producer=9)


class TestCaching:
    def test_add_and_query(self, storage):
        storage.add(1, 0)
        assert storage.used(1) == 1
        assert storage.chunks_at(1) == {0}
        assert storage.holders(0) == {1}

    def test_producer_never_caches(self, storage):
        assert not storage.can_cache(0)
        with pytest.raises(CapacityError):
            storage.add(0, 1)

    def test_capacity_enforced(self, storage):
        storage.add(1, 0)
        storage.add(1, 1)
        assert not storage.can_cache(1)
        with pytest.raises(CapacityError):
            storage.add(1, 2)

    def test_duplicate_chunk_rejected(self, storage):
        storage.add(1, 0)
        with pytest.raises(CapacityError):
            storage.add(1, 0)

    def test_remove(self, storage):
        storage.add(1, 0)
        storage.remove(1, 0)
        assert storage.used(1) == 0
        with pytest.raises(CapacityError):
            storage.remove(1, 0)

    def test_loads(self, storage):
        storage.add(1, 0)
        storage.add(1, 1)
        storage.add(2, 0)
        assert storage.loads() == {0: 0, 1: 2, 2: 1, 3: 0}
        assert storage.total_cached() == 3

    def test_chunks_at_returns_copy(self, storage):
        storage.add(1, 0)
        chunks = storage.chunks_at(1)
        chunks.add(99)
        assert storage.chunks_at(1) == {0}

    def test_copy_is_independent(self, storage):
        storage.add(1, 0)
        clone = storage.copy()
        clone.add(2, 0)
        assert storage.used(2) == 0
        assert clone.used(1) == 1
        assert clone.producer == storage.producer

    def test_no_producer_allows_all(self):
        s = StorageState(nodes=[1, 2], capacity=1)
        s.add(1, 0)
        s.add(2, 0)
        assert s.total_cached() == 2
