"""Unit tests for the battery-fairness extension (paper footnote 1)."""

import math

import pytest

from repro.core import CachingProblem, solve_approximation
from repro.core.resources import (
    BatteryState,
    battery_fairness_cost,
    combined_fairness_cost,
)
from repro.errors import ProblemError
from repro.graphs import grid_graph
from repro.workloads import grid_problem


class TestBatteryFairnessCost:
    def test_full_battery_free(self):
        assert battery_fairness_cost(0.0, 10.0) == 0.0

    def test_dead_battery_infinite(self):
        assert battery_fairness_cost(10.0, 10.0) == math.inf

    def test_same_shape_as_eq1(self):
        # consumed/capacity 1..4 of 5 matches the storage sequence
        values = [battery_fairness_cost(float(s), 5.0) for s in range(5)]
        assert values == pytest.approx([0, 0.25, 2 / 3, 1.5, 4.0])

    def test_invalid_rejected(self):
        with pytest.raises(ProblemError):
            battery_fairness_cost(-1.0, 5.0)
        with pytest.raises(ProblemError):
            battery_fairness_cost(6.0, 5.0)


class TestCombined:
    def test_without_battery(self):
        assert combined_fairness_cost(2.0, None) == 2.0

    def test_weighted_sum(self):
        assert combined_fairness_cost(2.0, 3.0, 1.0, 0.5) == 3.5


class TestBatteryState:
    @pytest.fixture
    def battery(self):
        return BatteryState(range(4), 10.0, producer=0)

    def test_initial(self, battery):
        assert battery.capacity(1) == 10.0
        assert battery.remaining(1) == 10.0
        assert battery.consumed(1) == 0.0

    def test_drain_and_recharge(self, battery):
        battery.drain(1, 4.0)
        assert battery.remaining(1) == 6.0
        battery.recharge(1, 2.0)
        assert battery.remaining(1) == 8.0

    def test_overdrain_rejected(self, battery):
        with pytest.raises(ProblemError):
            battery.drain(1, 11.0)

    def test_negative_amounts_rejected(self, battery):
        with pytest.raises(ProblemError):
            battery.drain(1, -1.0)
        with pytest.raises(ProblemError):
            battery.recharge(1, -1.0)

    def test_can_spend(self, battery):
        battery.drain(1, 9.5)
        assert battery.can_spend(1, 0.5)
        assert not battery.can_spend(1, 1.0)

    def test_producer_fairness_infinite(self, battery):
        assert battery.fairness_cost(0) == math.inf

    def test_per_node_capacities(self):
        b = BatteryState([1, 2], {1: 5.0, 2: 0.0})
        assert not b.can_spend(2, 1.0)
        assert b.fairness_cost(2) == math.inf

    def test_negative_capacity_rejected(self):
        with pytest.raises(ProblemError):
            BatteryState([1], -1.0)

    def test_copy_independent(self, battery):
        battery.drain(1, 5.0)
        clone = battery.copy()
        clone.drain(1, 2.0)
        assert battery.consumed(1) == 5.0
        assert clone.consumed(1) == 7.0

    def test_levels(self, battery):
        battery.drain(1, 5.0)
        assert battery.levels()[1] == pytest.approx(0.5)


class TestProblemIntegration:
    def test_battery_created_when_configured(self):
        problem = grid_problem(4, battery_capacity=3.0)
        state = problem.new_state()
        assert state.battery is not None
        assert state.battery.capacity(0) == 3.0

    def test_no_battery_by_default(self):
        state = grid_problem(4).new_state()
        assert state.battery is None

    def test_cache_drains_battery(self):
        problem = grid_problem(4, battery_capacity=3.0, energy_per_cache=1.0)
        state = problem.new_state()
        state.cache(1, 0)
        assert state.battery.consumed(1) == 1.0

    def test_battery_limits_caching(self):
        # battery allows 2 caches even though storage allows 5
        problem = grid_problem(4, battery_capacity=2.0, energy_per_cache=1.0)
        state = problem.new_state()
        state.cache(1, 0)
        state.cache(1, 1)
        assert not state.can_cache(1)
        assert state.cache_budget(1) == 0

    def test_fairness_includes_battery_term(self):
        problem = grid_problem(
            4, battery_capacity=4.0, battery_weight=2.0, energy_per_cache=1.0
        )
        state = problem.new_state()
        state.cache(1, 0)
        # storage: 1/(5-1) = 0.25; battery: 1/(4-1) = 1/3, weighted x2
        assert state.costs.fairness_cost(1) == pytest.approx(0.25 + 2 / 3)

    def test_eviction_keeps_battery_spent(self):
        problem = grid_problem(4, battery_capacity=3.0)
        state = problem.new_state()
        state.cache(1, 0)
        state.evict(1, 0)
        assert state.battery.consumed(1) == 1.0
        assert state.storage.used(1) == 0

    def test_solve_with_batteries_feasible(self):
        problem = grid_problem(4, num_chunks=4, battery_capacity=2.0)
        placement = solve_approximation(problem)
        placement.validate()
        # battery cap of 2 units binds harder than storage cap of 5
        assert max(placement.loads().values()) <= 2

    def test_battery_dead_nodes_excluded(self):
        problem = grid_problem(
            3, num_chunks=3, battery_capacity=1.0, energy_per_cache=1.0
        )
        placement = solve_approximation(problem)
        placement.validate()
        assert max(placement.loads().values()) <= 1

    def test_invalid_battery_params_rejected(self):
        with pytest.raises(ProblemError):
            CachingProblem(
                graph=grid_graph(3), producer=0, num_chunks=1,
                battery_weight=-1.0,
            )
        with pytest.raises(ProblemError):
            CachingProblem(
                graph=grid_graph(3), producer=0, num_chunks=1,
                energy_per_cache=-1.0,
            )
