"""Unit tests for Algorithm 1 (the approximation algorithm)."""

import pytest

from repro.core import (
    ApproximationConfig,
    DualAscentConfig,
    solve_approximation,
    solve_approximation_timed,
)
from repro.workloads import grid_problem


class TestApproximation:
    def test_placement_is_feasible(self, small_problem):
        placement = solve_approximation(small_problem)
        placement.validate()

    def test_all_chunks_placed(self, small_problem):
        placement = solve_approximation(small_problem)
        assert len(placement.chunks) == small_problem.num_chunks
        assert [c.chunk for c in placement.chunks] == list(small_problem.chunks)

    def test_deterministic(self, small_problem):
        a = solve_approximation(small_problem)
        b = solve_approximation(small_problem)
        assert [c.caches for c in a.chunks] == [c.caches for c in b.chunks]
        assert a.objective_value() == b.objective_value()

    def test_producer_never_caches(self, paper_problem):
        placement = solve_approximation(paper_problem)
        for chunk in placement.chunks:
            assert paper_problem.producer not in chunk.caches

    def test_fairness_spreads_chunks(self, paper_problem):
        placement = solve_approximation(paper_problem)
        loads = placement.loads()
        used = [v for v in loads.values() if v > 0]
        # fairness: many nodes share the load, none hoards
        assert len(used) >= 15
        assert max(used) <= 4

    def test_capacity_respected(self):
        problem = grid_problem(3, num_chunks=6, capacity=2)
        placement = solve_approximation(problem)
        placement.validate()  # validate() enforces capacity
        assert max(placement.loads().values()) <= 2

    def test_zero_chunks(self):
        problem = grid_problem(3, num_chunks=0)
        placement = solve_approximation(problem)
        placement.validate()
        assert placement.chunks == []

    def test_stage_costs_populated(self, small_problem):
        placement = solve_approximation(small_problem)
        for chunk in placement.chunks:
            assert chunk.stage_cost.access > 0
            if chunk.caches:
                assert chunk.stage_cost.dissemination > 0

    def test_first_chunk_fairness_free(self, small_problem):
        placement = solve_approximation(small_problem)
        assert placement.chunks[0].stage_cost.fairness == 0.0

    def test_later_chunks_pay_fairness(self, paper_problem):
        placement = solve_approximation(paper_problem)
        total_fairness = placement.stage_cost_total().fairness
        assert total_fairness > 0.0

    def test_reassign_toggle_changes_assignment_not_caches(self, small_problem):
        on = solve_approximation(
            small_problem, ApproximationConfig(reassign_clients=True)
        )
        off = solve_approximation(
            small_problem, ApproximationConfig(reassign_clients=False)
        )
        assert [c.caches for c in on.chunks] == [c.caches for c in off.chunks]
        on_cost = on.stage_cost_total().access
        off_cost = off.stage_cost_total().access
        assert on_cost <= off_cost + 1e-9

    def test_span_threshold_controls_spread(self, paper_problem):
        few = solve_approximation(
            paper_problem,
            ApproximationConfig(dual=DualAscentConfig(span_threshold=6)),
        )
        many = solve_approximation(
            paper_problem,
            ApproximationConfig(dual=DualAscentConfig(span_threshold=2)),
        )
        assert many.total_copies() > few.total_copies()

    def test_timed_variant_matches(self, small_problem):
        timed = solve_approximation_timed(small_problem)
        plain = solve_approximation(small_problem)
        assert timed.placement.objective_value() == plain.objective_value()
        assert len(timed.per_chunk_seconds) == small_problem.num_chunks
        assert timed.total_seconds >= 0

    def test_algorithm_label(self, small_problem):
        assert solve_approximation(small_problem).algorithm == "approximation"
