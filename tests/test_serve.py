"""Unit tests for the request-plane serving engine (:mod:`repro.serve`).

The contract under test, in order of importance: *determinism* (same
seed → bit-identical request streams and byte-identical reports, for
every workload generator and every selection policy), then the workload
shapes, the selection semantics, failure injection, observability
hookup, and the CLI surface.
"""

from __future__ import annotations

import itertools
import json

import pytest

from repro.baselines import solve_hopcount
from repro.core import solve_approximation
from repro.errors import ProblemError
from repro.obs import Recorder, Tracer, use_recorder, use_tracer
from repro.serve import (
    SELECTION_POLICIES,
    WORKLOADS,
    CheapestCost,
    FlashCrowdWorkload,
    HotspotWorkload,
    LeastLoaded,
    PowerOfTwoChoices,
    ServeConfig,
    ServeReport,
    UniformWorkload,
    ZipfWorkload,
    make_selector,
    serve_placement,
)
from repro.workloads import grid_problem


@pytest.fixture(scope="module")
def placement():
    return solve_approximation(grid_problem(4, num_chunks=3))


def take(workload, clients, num_chunks, n):
    return list(
        itertools.islice(workload.stream(clients, num_chunks), n)
    )


CLIENTS = list(range(12))


class TestWorkloadStreams:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_same_seed_same_stream(self, name):
        workload = WORKLOADS[name](seed=7)
        a = take(workload, CLIENTS, 4, 200)
        b = take(workload, CLIENTS, 4, 200)
        assert a == b

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_different_seed_different_stream(self, name):
        a = take(WORKLOADS[name](seed=1), CLIENTS, 4, 100)
        b = take(WORKLOADS[name](seed=2), CLIENTS, 4, 100)
        assert a != b

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_stream_shape(self, name):
        requests = take(WORKLOADS[name](seed=3), CLIENTS, 4, 150)
        assert [r.index for r in requests] == list(range(150))
        times = [r.time for r in requests]
        assert times == sorted(times)
        assert all(t > 0 for t in times)
        assert all(r.client in CLIENTS for r in requests)
        assert all(0 <= r.chunk < 4 for r in requests)

    def test_interleaved_streams_independent(self):
        # Two live streams from one workload object must not share
        # state: interleaving them changes nothing.
        workload = HotspotWorkload(seed=11)
        solo = take(workload, CLIENTS, 4, 50)
        s1 = workload.stream(CLIENTS, 4)
        s2 = workload.stream(CLIENTS, 4)
        interleaved = []
        for _ in range(50):
            interleaved.append(next(s1))
            next(s2)
        assert interleaved == solo

    def test_zipf_skews_toward_low_chunks(self):
        requests = take(ZipfWorkload(seed=5, exponent=1.2), CLIENTS, 5, 3000)
        counts = [0] * 5
        for r in requests:
            counts[r.chunk] += 1
        assert counts[0] == max(counts)
        assert counts[0] > counts[4] * 2

    def test_uniform_covers_chunks(self):
        requests = take(UniformWorkload(seed=5), CLIENTS, 5, 2000)
        assert {r.chunk for r in requests} == set(range(5))

    def test_hotspot_concentrates_clients(self):
        workload = HotspotWorkload(seed=9, hot_fraction=0.25, boost=8.0)
        requests = take(workload, CLIENTS, 2, 4000)
        counts = {c: 0 for c in CLIENTS}
        for r in requests:
            counts[r.client] += 1
        top3 = sum(sorted(counts.values())[-3:])
        # 3 of 12 clients at 8x demand hold 8*3/(8*3+9) ~ 73% of traffic.
        assert top3 > 0.5 * len(requests)

    def test_flash_crowd_burst_targets_chunk_zero(self):
        workload = FlashCrowdWorkload(
            seed=13, rate=5.0, burst_start=2.0, burst_duration=4.0,
            burst_factor=20.0,
        )
        requests = take(workload, CLIENTS, 5, 2000)
        in_burst = [r for r in requests if 2.0 <= r.time < 6.0]
        out_burst = [r for r in requests if not 2.0 <= r.time < 6.0]
        assert in_burst and out_burst
        assert all(r.chunk == 0 for r in in_burst)
        # 20x the arrival rate inside a window a fraction of the span.
        span = requests[-1].time
        burst_share = len(in_burst) / len(requests)
        assert burst_share > 4.0 / span  # far above the uniform share

    def test_validation(self):
        with pytest.raises(ProblemError):
            UniformWorkload(rate=-1.0)
        with pytest.raises(ProblemError):
            ZipfWorkload(exponent=-1.0)
        with pytest.raises(ProblemError):
            HotspotWorkload(hot_fraction=1.5)
        with pytest.raises(ProblemError):
            FlashCrowdWorkload(burst_factor=0.5)
        with pytest.raises(ProblemError):
            UniformWorkload().stream([], 3)
        with pytest.raises(ProblemError):
            UniformWorkload().stream(CLIENTS, 0)
        with pytest.raises(ProblemError):
            UniformWorkload().stream_batches([], 3)
        with pytest.raises(ProblemError):
            UniformWorkload().stream_batches(CLIENTS, 0)
        with pytest.raises(ProblemError):
            UniformWorkload().stream_batches(CLIENTS, 3, batch_size=0)

    def test_zero_rate_streams_are_empty(self):
        workload = UniformWorkload(seed=3, rate=0.0)
        assert list(workload.stream(CLIENTS, 4)) == []
        assert list(workload.stream_batches(CLIENTS, 4)) == []

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_batches_match_per_request_stream(self, name, batch_size):
        # The batched engine's equivalence guarantee starts here: the
        # SoA columns must carry exactly the per-request stream values.
        workload = WORKLOADS[name](seed=17)
        requests = take(workload, CLIENTS, 4, 200)
        batches = workload.stream_batches(CLIENTS, 4, batch_size=batch_size)
        flat = []
        while len(flat) < 200:
            times, clients, chunks = next(batches)
            flat.extend(zip(times, clients, chunks))
        flat = flat[:200]
        assert flat == [(r.time, r.client, r.chunk) for r in requests]


class _StaticView:
    """A scripted ServeView for selection-policy unit tests."""

    def __init__(self, costs, depths, rng=None):
        import random

        self._costs = costs
        self._depths = depths
        self.rng = rng or random.Random(0)

    def cost(self, server, client):
        return self._costs[server]

    def queue_depth(self, server):
        return self._depths[server]


class TestSelection:
    def test_cheapest_picks_min_cost(self):
        selector = CheapestCost()
        selector.bind(_StaticView({"a": 3.0, "b": 1.0, "p": 2.0}, {}))
        assert selector.choose(0, 0, ["a", "b", "p"]) == "b"

    def test_cheapest_tie_prefers_earlier(self):
        selector = CheapestCost()
        selector.bind(_StaticView({"a": 1.0, "b": 1.0, "p": 1.0}, {}))
        assert selector.choose(0, 0, ["a", "b", "p"]) == "a"

    def test_least_loaded_ignores_cost(self):
        selector = LeastLoaded()
        selector.bind(
            _StaticView({"a": 0.5, "b": 9.0}, {"a": 4, "b": 0})
        )
        assert selector.choose(0, 0, ["a", "b"]) == "b"

    def test_least_loaded_breaks_ties_by_cost(self):
        selector = LeastLoaded()
        selector.bind(
            _StaticView({"a": 2.0, "b": 1.0}, {"a": 1, "b": 1})
        )
        assert selector.choose(0, 0, ["a", "b"]) == "b"

    def test_p2c_single_candidate(self):
        selector = PowerOfTwoChoices()
        selector.bind(_StaticView({"a": 1.0}, {"a": 9}))
        assert selector.choose(0, 0, ["a"]) == "a"

    def test_p2c_prefers_less_loaded_sample(self):
        import random

        selector = PowerOfTwoChoices()
        view = _StaticView(
            {"a": 1.0, "b": 1.0}, {"a": 5, "b": 0}, rng=random.Random(4)
        )
        selector.bind(view)
        # With two candidates, both are always sampled: "b" must win.
        for _ in range(10):
            assert selector.choose(0, 0, ["a", "b"]) == "b"

    def test_make_selector(self):
        assert isinstance(make_selector("cheapest"), CheapestCost)
        passthrough = LeastLoaded()
        assert make_selector(passthrough) is passthrough
        with pytest.raises(KeyError):
            make_selector("nope")

    def test_registry_names_match_classes(self):
        for name, cls in SELECTION_POLICIES.items():
            assert cls.name == name
        for name, cls in WORKLOADS.items():
            assert cls.name == name


class TestEngineDeterminism:
    @pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
    @pytest.mark.parametrize("policy", sorted(SELECTION_POLICIES))
    def test_report_byte_identical(self, placement, workload_name, policy):
        workload = WORKLOADS[workload_name](seed=21)
        config = ServeConfig(failure_rate=0.3, seed=21)
        first = serve_placement(
            placement, workload, 250, policy=policy, config=config
        )
        second = serve_placement(
            placement, workload, 250, policy=policy, config=config
        )
        assert first.to_json() == second.to_json()

    def test_engine_seed_changes_failures(self, placement):
        workload = ZipfWorkload(seed=21)
        reports = [
            serve_placement(
                placement, workload, 300,
                config=ServeConfig(failure_rate=0.5, seed=seed),
            )
            for seed in (1, 2, 3, 4)
        ]
        assert len({r.failovers for r in reports}) > 1


class TestBatchedEquivalence:
    """The batched hot path is a pure optimisation: byte-identical
    ServeReport JSON to the per-request reference path, for every
    workload × policy combination, at two seeds (the ISSUE 6 acceptance
    harness)."""

    @pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
    @pytest.mark.parametrize("policy", sorted(SELECTION_POLICIES))
    @pytest.mark.parametrize("seed", [7, 21])
    def test_batched_matches_per_request(
        self, placement, workload_name, policy, seed
    ):
        workload = WORKLOADS[workload_name](seed=seed)
        reference = serve_placement(
            placement, workload, 300, policy=policy,
            config=ServeConfig(
                failure_rate=0.3, seed=seed, engine="per-request"
            ),
        )
        batched = serve_placement(
            placement, workload, 300, policy=policy,
            config=ServeConfig(
                failure_rate=0.3, seed=seed, engine="batched", batch_size=64
            ),
        )
        assert batched.to_json() == reference.to_json()

    def test_batch_size_does_not_change_report(self, placement):
        workload = ZipfWorkload(seed=5)
        reports = [
            serve_placement(
                placement, workload, 300,
                config=ServeConfig(seed=5, batch_size=size),
            ).to_json()
            for size in (1, 3, 100, 8192)
        ]
        assert len(set(reports)) == 1

    def test_batched_counters_match_per_request(self, placement):
        workload = ZipfWorkload(seed=9)
        dumps = {}
        for engine in ("per-request", "batched"):
            recorder = Recorder()
            with use_recorder(recorder):
                serve_placement(
                    placement, workload, 200,
                    config=ServeConfig(
                        failure_rate=0.4, timeout=1.0, seed=9, engine=engine
                    ),
                )
            dumps[engine] = recorder.dump()["counters"]
        for name in ("serve.requests", "serve.failovers", "serve.timeouts"):
            assert dumps["batched"].get(name, 0) == \
                dumps["per-request"].get(name, 0)
        assert dumps["batched"]["serve.batch.requests"] == 200
        assert dumps["batched"]["serve.batch.batches"] >= 1
        assert dumps["batched"]["serve.batch.table_entries"] > 0
        assert "serve.batch.batches" not in dumps["per-request"]

    def test_batched_trace_instants_match(self, placement):
        tracer = Tracer()
        with use_tracer(tracer):
            report = serve_placement(placement, ZipfWorkload(seed=2), 50)
        names = [event.name for event in tracer.events]
        assert names.count("serve.request") == report.completed
        assert "serve.batch" in names

    def test_engine_flag_validated(self):
        with pytest.raises(ProblemError):
            ServeConfig(engine="bogus")
        with pytest.raises(ProblemError):
            ServeConfig(batch_size=0)


class TestDegenerateReplays:
    """Zero-rate, zero-request, and single-node replays exit cleanly
    with the canonical zero-request report on both engine paths."""

    @pytest.mark.parametrize("engine", ["batched", "per-request"])
    def test_zero_rate_workload(self, placement, engine):
        report = serve_placement(
            placement, UniformWorkload(seed=2, rate=0.0), 500,
            config=ServeConfig(engine=engine),
        )
        assert report.requests == 500
        assert report.completed == 0
        assert report.makespan == 0.0
        assert report.throughput == 0.0
        assert report.latency_p99 == 0.0
        assert all(v == 0 for v in report.served_loads.values())

    @pytest.mark.parametrize("engine", ["batched", "per-request"])
    def test_single_node_topology(self, engine):
        # A 1x1 grid is just the producer: no clients, no requests.
        problem = grid_problem(1, num_chunks=2)
        single = solve_approximation(problem)
        report = serve_placement(
            single, ZipfWorkload(seed=2), 100,
            config=ServeConfig(engine=engine),
        )
        assert report.completed == 0
        assert report.served_gini == 0.0
        assert report.served_jains == 1.0

    def test_zero_rate_reports_identical_across_engines(self, placement):
        reports = [
            serve_placement(
                placement, ZipfWorkload(seed=2, rate=0.0), 100,
                config=ServeConfig(engine=engine),
            ).to_json()
            for engine in ("batched", "per-request")
        ]
        assert reports[0] == reports[1]

    def test_zero_duration_burst_behaves_like_zipf(self, placement):
        crowd = FlashCrowdWorkload(seed=4, burst_duration=0.0)
        plain = ZipfWorkload(seed=4)
        a = serve_placement(placement, crowd, 200)
        b = serve_placement(placement, plain, 200)
        assert a.completed == b.completed == 200
        assert a.latency_mean == b.latency_mean




class TestEngineSemantics:
    def test_all_requests_complete(self, placement):
        report = serve_placement(placement, UniformWorkload(seed=2), 400)
        assert report.completed == report.requests == 400
        assert report.makespan > 0
        assert report.throughput == pytest.approx(400 / report.makespan)
        assert sum(report.served_loads.values()) + report.producer_served == 400

    def test_latency_percentiles_ordered(self, placement):
        r = serve_placement(placement, ZipfWorkload(seed=2), 400)
        assert 0 <= r.latency_p50 <= r.latency_p95 <= r.latency_p99
        assert r.latency_p99 <= r.latency_max

    def test_all_dead_falls_back_to_producer(self, placement):
        report = serve_placement(
            placement, ZipfWorkload(seed=2), 200,
            config=ServeConfig(failure_rate=1.0),
        )
        assert report.producer_served == 200
        assert report.failovers > 0
        assert report.retried_requests > 0
        assert all(v == 0 for v in report.served_loads.values())

    def test_no_failures_no_failovers(self, placement):
        report = serve_placement(placement, ZipfWorkload(seed=2), 200)
        assert report.failovers == 0
        assert report.retried_requests == 0

    def test_retry_penalty_raises_latency(self, placement):
        workload = ZipfWorkload(seed=2)
        cheap = serve_placement(
            placement, workload, 200,
            config=ServeConfig(failure_rate=1.0, retry_penalty=0.0, seed=5),
        )
        dear = serve_placement(
            placement, workload, 200,
            config=ServeConfig(failure_rate=1.0, retry_penalty=2.0, seed=5),
        )
        assert dear.latency_mean > cheap.latency_mean

    def test_tight_timeout_counts_all(self, placement):
        report = serve_placement(
            placement, ZipfWorkload(seed=2), 150,
            config=ServeConfig(timeout=0.0),
        )
        # Every remotely-served request exceeds a zero timeout (and a
        # self-serve can too, when it queues behind another transfer at
        # its own node).
        assert report.timeouts >= report.completed - report.self_served
        assert report.timeouts <= report.completed

    def test_zero_requests(self, placement):
        report = serve_placement(placement, ZipfWorkload(seed=2), 0)
        assert report.completed == 0
        assert report.makespan == 0.0
        assert report.throughput == 0.0
        assert report.latency_p99 == 0.0

    def test_config_validation(self):
        with pytest.raises(ProblemError):
            ServeConfig(failure_rate=1.5)
        with pytest.raises(ProblemError):
            ServeConfig(timeout=-1.0)
        with pytest.raises(ProblemError):
            ServeConfig(retry_penalty=-0.1)

    def test_hopcount_concentrates_served_load(self, placement):
        problem = placement.problem
        hopc = solve_hopcount(problem)
        workload = ZipfWorkload(seed=2)
        fair = serve_placement(placement, workload, 500)
        lumpy = serve_placement(hopc, workload, 500)
        assert fair.served_gini < lumpy.served_gini


class TestObservability:
    def test_counters_recorded(self, placement):
        recorder = Recorder()
        with use_recorder(recorder):
            report = serve_placement(
                placement, ZipfWorkload(seed=2), 200,
                config=ServeConfig(failure_rate=0.5, timeout=1.0),
            )
        dump = recorder.dump()
        assert dump["counters"]["serve.requests"] == report.completed
        assert dump["counters"]["serve.failovers"] == report.failovers
        assert dump["counters"]["serve.timeouts"] == report.timeouts
        assert "serve.replay" in dump["timers"]

    def test_trace_events_emitted(self, placement):
        tracer = Tracer()
        with use_tracer(tracer):
            report = serve_placement(placement, ZipfWorkload(seed=2), 50)
        names = [event.name for event in tracer.events]
        assert "serve.session" in names
        assert names.count("serve.request") == report.completed

    def test_report_identical_with_and_without_obs(self, placement):
        # Zero-overhead contract: instrumentation must not perturb the
        # replay.
        bare = serve_placement(placement, ZipfWorkload(seed=2), 150)
        with use_recorder(Recorder()), use_tracer(Tracer()):
            instrumented = serve_placement(
                placement, ZipfWorkload(seed=2), 150
            )
        assert bare.to_json() == instrumented.to_json()


class TestServeReport:
    def test_round_trip(self, placement):
        report = serve_placement(placement, ZipfWorkload(seed=2), 100)
        clone = ServeReport.from_dict(report.to_dict())
        assert clone == report
        assert clone.to_json() == report.to_json()

    def test_json_is_valid_and_schema_tagged(self, placement):
        report = serve_placement(placement, ZipfWorkload(seed=2), 100)
        data = json.loads(report.to_json())
        assert data["schema"] == "repro-serve/1"
        assert data["requests"] == 100

    def test_render_mentions_key_stats(self, placement):
        text = serve_placement(
            placement, ZipfWorkload(seed=2), 100
        ).render()
        assert "served-load Gini" in text
        assert "throughput" in text


class TestServeCli:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--grid", "4"])
        assert args.command == "serve"
        assert args.workload == "zipf"
        assert args.policy == "cheapest"
        assert args.requests == 10_000
        assert args.failure_rate == 0.0
        assert args.trace is None

    def test_topology_required(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_grid_runs(self, capsys):
        from repro.cli import main

        assert main([
            "serve", "--grid", "4", "--chunks", "2", "--requests", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "served-load Gini" in out

    def test_json_output_deterministic(self, capsys):
        from repro.cli import main

        argv = [
            "serve", "--grid", "4", "--chunks", "2", "--requests", "150",
            "--workload", "zipf", "--seed", "2017", "--json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert json.loads(first)["schema"] == "repro-serve/1"

    def test_unknown_workload_rejected(self, capsys):
        from repro.cli import main

        assert main([
            "serve", "--grid", "4", "--workload", "bogus",
        ]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_unknown_policy_rejected(self, capsys):
        from repro.cli import main

        assert main([
            "serve", "--grid", "4", "--policy", "bogus",
        ]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_list_mentions_serve_registries(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "workloads:" in out
        assert "zipf" in out
        assert "selection policies:" in out
        assert "p2c" in out

    def test_trace_written(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "serve-trace.json"
        assert main([
            "serve", "--grid", "4", "--chunks", "2", "--requests", "50",
            "--trace", str(path),
        ]) == 0
        events = json.loads(path.read_text())["traceEvents"]
        assert any(e.get("name") == "serve.session" for e in events)
