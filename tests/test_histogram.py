"""Tests for the streaming histogram (:mod:`repro.obs.histogram`).

The headline contract is the relative-error bound: every quantile the
sketch reports is within ``relative_error`` (α, default 1.5%) of the
exact interpolated :func:`repro.delay.latency.percentile` over the same
samples.  The property-style class at the bottom asserts that bound on
real serve latency distributions across every workload × policy pair.
"""

from __future__ import annotations

import random

import pytest

from repro.delay.latency import percentile
from repro.obs import StreamingHistogram, use_recorder
from repro.obs.histogram import (
    DEFAULT_MAX_BUCKETS,
    DEFAULT_RELATIVE_ERROR,
    MIN_TRACKABLE,
)
from repro.obs.timeseries import SeriesRecorder


class TestBasics:
    def test_empty_histogram(self):
        hist = StreamingHistogram()
        assert hist.count == 0
        assert hist.sum == 0.0
        assert hist.quantile(50) == 0.0
        assert hist.quantiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_single_value(self):
        hist = StreamingHistogram()
        hist.add(3.5)
        assert hist.count == 1
        assert hist.sum == 3.5
        assert hist.minimum == 3.5
        assert hist.maximum == 3.5
        for p in (0, 50, 99, 100):
            assert hist.quantile(p) == pytest.approx(3.5, rel=0.02)

    def test_weighted_add(self):
        hist = StreamingHistogram()
        hist.add(1.0, count=10)
        assert hist.count == 10
        assert hist.sum == pytest.approx(10.0)

    def test_zero_values_tracked_exactly(self):
        hist = StreamingHistogram()
        for _ in range(5):
            hist.add(0.0)
        hist.add(100.0)
        assert hist.count == 6
        assert hist.quantile(50) == 0.0

    def test_tiny_values_fold_into_zero_bucket(self):
        hist = StreamingHistogram()
        hist.add(MIN_TRACKABLE / 10)
        assert hist.count == 1
        assert hist.quantile(50) == 0.0

    def test_float_cancellation_residue_tolerated(self):
        # Queue delays computed as a - b - c can leave residues like
        # -1.8e-15; those clamp to the zero bucket instead of raising.
        hist = StreamingHistogram()
        hist.add(-1.8e-15)
        assert hist.count == 1
        assert hist.quantile(50) == 0.0

    def test_materially_negative_rejected(self):
        hist = StreamingHistogram()
        with pytest.raises(ValueError):
            hist.add(-0.5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            StreamingHistogram(relative_error=0.0)
        with pytest.raises(ValueError):
            StreamingHistogram(relative_error=1.0)
        with pytest.raises(ValueError):
            StreamingHistogram(max_buckets=1)
        with pytest.raises(ValueError):
            StreamingHistogram().quantile(101)

    def test_zero_count_add_is_noop(self):
        hist = StreamingHistogram()
        hist.add(1.0, count=0)
        assert hist.count == 0


class TestAccuracy:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_quantiles_within_alpha_of_exact(self, seed):
        rng = random.Random(seed)
        values = [rng.expovariate(1.0) + 0.001 for _ in range(5000)]
        hist = StreamingHistogram()
        for v in values:
            hist.add(v)
        for p in (50, 90, 95, 99, 99.9):
            exact = percentile(values, p)
            approx = hist.quantile(p)
            assert approx == pytest.approx(
                exact, rel=DEFAULT_RELATIVE_ERROR
            ), f"p{p}: exact={exact} sketch={approx}"

    def test_min_max_exact(self):
        rng = random.Random(7)
        values = [rng.uniform(0.5, 9.5) for _ in range(1000)]
        hist = StreamingHistogram()
        for v in values:
            hist.add(v)
        assert hist.minimum == min(values)
        assert hist.maximum == max(values)
        # Edge quantiles come from bucket representatives, clamped to
        # the exact [min, max] envelope — within α like any quantile.
        assert hist.quantile(0) == pytest.approx(
            min(values), rel=2 * DEFAULT_RELATIVE_ERROR
        )
        assert hist.quantile(100) == pytest.approx(
            max(values), rel=2 * DEFAULT_RELATIVE_ERROR
        )

    def test_mean_exact(self):
        values = [0.1, 0.2, 0.3, 4.0]
        hist = StreamingHistogram()
        for v in values:
            hist.add(v)
        assert hist.mean == pytest.approx(sum(values) / len(values))


class TestMemoryBound:
    def test_bucket_count_bounded_under_wide_range(self):
        hist = StreamingHistogram(max_buckets=64)
        rng = random.Random(11)
        for _ in range(20_000):
            hist.add(10 ** rng.uniform(-6, 6))
        assert hist.bucket_count <= 64
        assert hist.collapsed > 0
        assert hist.count == 20_000

    def test_collapse_preserves_upper_quantiles(self):
        # Collapsing folds the *lowest* buckets, so upper quantiles stay
        # within the α bound even after heavy collapsing.
        rng = random.Random(13)
        values = [10 ** rng.uniform(-6, 6) for _ in range(20_000)]
        hist = StreamingHistogram(max_buckets=64)
        for v in values:
            hist.add(v)
        exact = percentile(values, 99)
        assert hist.quantile(99) == pytest.approx(exact, rel=0.05)


class TestMergeAndSerialization:
    def test_merge_matches_union(self):
        rng = random.Random(17)
        a_vals = [rng.expovariate(2.0) for _ in range(2000)]
        b_vals = [rng.expovariate(0.5) for _ in range(2000)]
        a = StreamingHistogram()
        b = StreamingHistogram()
        union = StreamingHistogram()
        for v in a_vals:
            a.add(v)
            union.add(v)
        for v in b_vals:
            b.add(v)
            union.add(v)
        a.merge(b)
        assert a.count == union.count
        assert a.sum == pytest.approx(union.sum)
        for p in (50, 95, 99):
            assert a.quantile(p) == pytest.approx(union.quantile(p))

    def test_merge_requires_same_resolution(self):
        with pytest.raises(ValueError):
            StreamingHistogram(relative_error=0.01).merge(
                StreamingHistogram(relative_error=0.02)
            )

    def test_round_trip_via_dict(self):
        hist = StreamingHistogram()
        rng = random.Random(19)
        for _ in range(500):
            hist.add(rng.uniform(0.001, 10.0))
        clone = StreamingHistogram.from_dict(hist.to_dict())
        assert clone.count == hist.count
        assert clone.sum == pytest.approx(hist.sum)
        assert clone.to_dict() == hist.to_dict()

    def test_bucket_bounds_cumulative(self):
        hist = StreamingHistogram()
        for v in (0.5, 1.0, 2.0, 4.0):
            hist.add(v)
        bounds = hist.bucket_bounds()
        uppers = [u for u, _ in bounds]
        counts = [c for _, c in bounds]
        assert uppers == sorted(uppers)
        assert counts == sorted(counts)
        assert counts[-1] == hist.count

    def test_default_constants(self):
        assert DEFAULT_RELATIVE_ERROR == 0.015
        assert DEFAULT_MAX_BUCKETS == 512


class TestServeLatencyProperty:
    """The documented bound, on real data: for every serve workload ×
    selection policy, the streaming p50/p95/p99 of request latency is
    within α of the exact interpolated percentile the
    :class:`~repro.serve.stats.ServeReport` computes."""

    @pytest.fixture(scope="class")
    def placement(self):
        from repro.core import solve_approximation
        from repro.workloads import grid_problem

        return solve_approximation(grid_problem(4, num_chunks=3))

    def _serve_pairs(self):
        from repro.serve import SELECTION_POLICIES, WORKLOADS

        return [
            (w, p)
            for w in sorted(WORKLOADS)
            for p in sorted(SELECTION_POLICIES)
        ]

    def test_streaming_quantiles_match_exact_report(self, placement):
        from repro.serve import WORKLOADS, serve_placement

        for workload_name, policy in self._serve_pairs():
            recorder = SeriesRecorder()
            with use_recorder(recorder):
                report = serve_placement(
                    placement,
                    WORKLOADS[workload_name](seed=23),
                    2000,
                    policy=policy,
                )
            hist = recorder.histogram("serve.latency_s")
            assert hist is not None, (workload_name, policy)
            assert hist.count == report.completed
            exact = {
                50: report.latency_p50,
                95: report.latency_p95,
                99: report.latency_p99,
            }
            for p, exact_value in exact.items():
                approx = hist.quantile(p)
                assert approx == pytest.approx(
                    exact_value, rel=hist.relative_error, abs=1e-9
                ), (
                    f"{workload_name}/{policy} p{p}: "
                    f"exact={exact_value} sketch={approx}"
                )
