"""Unit tests for the greedy fairness-aware ConFL heuristic."""

import pytest

from repro.core import build_confl_instance, solve_approximation
from repro.baselines import greedy_chunk_selection, solve_greedy_confl
from repro.workloads import grid_problem


class TestGreedySelection:
    def test_selects_facilities_only(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        selected = greedy_chunk_selection(instance)
        assert set(selected) <= set(instance.facilities)
        assert small_problem.producer not in selected

    def test_no_duplicates(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        selected = greedy_chunk_selection(instance)
        assert len(selected) == len(set(selected))

    def test_each_pick_improved_the_objective(self, small_problem):
        """Greedy invariant: the chosen set beats serving all from the
        producer on the chunk objective it optimizes."""
        instance = build_confl_instance(small_problem.new_state())
        selected = greedy_chunk_selection(instance)
        producer_only = sum(
            instance.connect_cost[instance.producer][j]
            for j in instance.clients
        )
        with_caches = sum(
            min(
                instance.connect_cost[s][j]
                for s in [instance.producer] + selected
            )
            for j in instance.clients
        ) + sum(instance.open_cost[i] for i in selected)
        assert not selected or with_caches < producer_only

    def test_deterministic(self, small_problem):
        instance = build_confl_instance(small_problem.new_state())
        assert greedy_chunk_selection(instance) == greedy_chunk_selection(instance)


class TestSolveGreedy:
    def test_feasible(self, paper_problem):
        placement = solve_greedy_confl(paper_problem)
        placement.validate()
        assert placement.algorithm == "greedy-confl"

    def test_fairness_feed_forward(self, paper_problem):
        placement = solve_greedy_confl(paper_problem)
        sets = [c.caches for c in placement.chunks]
        assert len(set(sets)) > 1  # not the same set every chunk

    def test_capacity_respected(self):
        problem = grid_problem(3, num_chunks=8, capacity=2)
        placement = solve_greedy_confl(problem)
        placement.validate()
        assert max(placement.loads().values()) <= 2

    def test_competitive_with_approximation(self, paper_problem):
        """No bound, but practically in the same league (Sec. II's point
        about greedy ConFL heuristics)."""
        greedy = solve_greedy_confl(paper_problem)
        appx = solve_approximation(paper_problem)
        g = greedy.stage_cost_total()
        a = appx.stage_cost_total()
        greedy_total = g.access + g.dissemination
        appx_total = a.access + a.dissemination
        assert greedy_total <= 1.5 * appx_total

    def test_registered_in_experiments(self, small_problem):
        from repro.experiments import GREEDY, run_algorithms

        placements = run_algorithms(small_problem, [GREEDY])
        assert placements[GREEDY].algorithm == "greedy-confl"
