"""Unit tests for the 802.11 DCF delay model."""

import pytest

from repro.core import StorageState
from repro.delay import (
    DcfParameters,
    contention_cost_to_delay,
    hop_delay,
    linearized_hop_delay,
    path_delay,
)
from repro.graphs import grid_graph


class TestParameters:
    def test_defaults_sane(self):
        params = DcfParameters()
        assert params.difs > 0
        assert params.chunk_transmission > params.slot_time

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DcfParameters(difs=-1.0)


class TestHopDelay:
    def test_idle_hop_is_difs(self):
        params = DcfParameters()
        assert hop_delay(0, 0, params) == pytest.approx(params.difs)

    def test_components_add_up(self):
        params = DcfParameters(difs=1.0, slot_time=2.0,
                               chunk_transmission=3.0, collision_duration=4.0)
        # DIFS + m*c + w*Td + m^2*Tc = 1 + 2*2 + 5*3 + 4*4
        assert hop_delay(5, 2, params) == pytest.approx(1 + 4 + 15 + 16)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            hop_delay(-1, 0)
        with pytest.raises(ValueError):
            hop_delay(0, -1)

    def test_monotone_in_contention(self):
        assert hop_delay(10, 2) > hop_delay(5, 2)


class TestLinearized:
    def test_zero_cost(self):
        params = DcfParameters()
        assert linearized_hop_delay(0.0, params) == pytest.approx(params.difs)

    def test_linear_in_cost(self):
        params = DcfParameters()
        d1 = linearized_hop_delay(1.0, params)
        d2 = linearized_hop_delay(2.0, params)
        assert d2 - d1 == pytest.approx(params.chunk_transmission)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            linearized_hop_delay(-1.0)

    def test_aggregate_translation(self):
        params = DcfParameters()
        total = contention_cost_to_delay(10.0, 3, params)
        assert total == pytest.approx(
            3 * params.difs + 10.0 * params.chunk_transmission
        )

    def test_aggregate_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            contention_cost_to_delay(1.0, -1)


class TestPathDelay:
    def test_trivial_path_free(self):
        g = grid_graph(3)
        storage = StorageState(g.nodes(), 5)
        assert path_delay(g, [4], storage) == 0.0

    def test_full_model_on_path(self):
        g = grid_graph(3)
        storage = StorageState(g.nodes(), 5)
        params = DcfParameters()
        delay = path_delay(g, [0, 1, 2], storage, params)
        manual = sum(
            hop_delay(g.degree(k) * 1, 0, params) for k in (0, 1, 2)
        )
        assert delay == pytest.approx(manual)

    def test_cached_chunks_increase_delay(self):
        g = grid_graph(3)
        storage = StorageState(g.nodes(), 5)
        base = path_delay(g, [0, 1, 2], storage)
        storage.add(1, 0)
        loaded = path_delay(g, [0, 1, 2], storage)
        assert loaded > base
