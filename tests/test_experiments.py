"""Smoke + shape tests for the experiment runners (fast mode)."""

import pytest

from repro.experiments import (
    APPX,
    CONT,
    DIST,
    HOPC,
    REGISTRY,
    run_algorithms,
    summarize,
)
from repro.experiments.report import ExperimentResult, format_cell, render_table
from repro.workloads import grid_problem


class TestReport:
    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(1234.5) == "1,234"
        assert format_cell(3.14159) == "3.14"
        assert format_cell(0.001234) == "0.0012"
        assert format_cell(float("nan")) == "-"
        assert format_cell("x") == "x"
        assert format_cell(0.0) == "0"

    def test_render_table_aligned(self):
        text = render_table(["a", "bb"], [[1, 2], [33, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len({len(line) for line in lines[2:]}) == 1

    def test_result_helpers(self):
        result = ExperimentResult(
            experiment_id="x", description="d",
            headers=["k", "v"], rows=[["a", 1], ["b", 2]],
        )
        assert result.column("v") == [1, 2]
        assert result.filtered(k="a") == [["a", 1]]
        assert "x: d" in result.to_text()


class TestRunnerHelpers:
    def test_run_algorithms_validates(self, small_problem):
        placements = run_algorithms(small_problem, [APPX, HOPC])
        assert set(placements) == {APPX, HOPC}

    def test_unknown_algorithm(self, small_problem):
        with pytest.raises(KeyError):
            run_algorithms(small_problem, ["Magic"])

    def test_summarize_fields(self, small_problem):
        placements = run_algorithms(small_problem, [APPX])
        s = summarize(APPX, placements[APPX])
        assert s.total_cost == pytest.approx(
            s.access_cost + s.dissemination_cost
        )
        assert 0 <= s.gini <= 1
        assert 0 <= s.p75_fairness <= 1
        assert s.nodes_used <= len(small_problem.clients)


@pytest.mark.parametrize("experiment_id", sorted(REGISTRY))
def test_experiment_runs_fast(experiment_id):
    result = REGISTRY[experiment_id](fast=True)
    assert isinstance(result, ExperimentResult)
    assert result.rows, experiment_id
    assert result.to_text()


class TestPaperShapes:
    """The qualitative claims of Sec. V, asserted on the paper's 6x6 grid."""

    @pytest.fixture(scope="class")
    def summaries(self):
        problem = grid_problem(6)
        placements = run_algorithms(problem, [APPX, DIST, HOPC, CONT])
        return {n: summarize(n, p) for n, p in placements.items()}

    def test_ours_much_cheaper_than_hopc(self, summaries):
        for ours in (APPX, DIST):
            assert (
                summaries[ours].access_cost < 0.75 * summaries[HOPC].access_cost
            )

    def test_ours_close_to_cont_on_total(self, summaries):
        for ours in (APPX, DIST):
            assert summaries[ours].total_cost <= 1.1 * summaries[CONT].total_cost

    def test_fairness_ordering(self, summaries):
        """Appx ≈ Dist ≫ Cont ≫ Hopc on p75 fairness (paper Fig. 6)."""
        assert summaries[APPX].p75_fairness > summaries[CONT].p75_fairness
        assert summaries[DIST].p75_fairness > summaries[CONT].p75_fairness
        assert summaries[CONT].p75_fairness > summaries[HOPC].p75_fairness

    def test_gini_ordering(self, summaries):
        for ours in (APPX, DIST):
            assert summaries[ours].gini < 0.6
            assert summaries[ours].gini < summaries[CONT].gini
            assert summaries[ours].gini < summaries[HOPC].gini

    def test_ours_use_more_nodes(self, summaries):
        assert summaries[APPX].nodes_used > summaries[CONT].nodes_used
        assert summaries[CONT].nodes_used > summaries[HOPC].nodes_used

    def test_hopc_p75_matches_paper_value(self, summaries):
        # paper: 4.28% for Hopc on the 6x6 grid
        assert 100 * summaries[HOPC].p75_fairness == pytest.approx(4.28, abs=0.3)
