"""Tests for the multiprocessing sweep runner (repro.sweep).

The load-bearing property is determinism under sharding: the merged
repro-sweep/1 artifact must be byte-identical whatever the worker
count, because every cell is a self-seeded substream and merge order is
fixed by shard index.
"""

import json

import pytest

from repro.errors import ProblemError
from repro.serve import ServeConfig, ZipfWorkload, serve_placement
from repro.serve.engine import ENGINE_PER_REQUEST
from repro.sweep import (
    SWEEP_SCHEMA,
    SweepGrid,
    aggregate_cells,
    parse_topology,
    render_sweep,
    resolve_workers,
    run_sweep,
    write_sweep,
)
from repro.workloads import grid_problem
from repro.core.approximation import solve_approximation

SMALL_GRID = SweepGrid(
    topologies=("grid:4",),
    workloads=("zipf", "uniform"),
    policies=("cheapest",),
    seeds=(1, 2),
    requests=200,
)


class TestTopologySpecs:
    def test_parse(self):
        assert parse_topology("grid:6") == ("grid", 6)
        assert parse_topology("random:30") == ("random", 30)

    @pytest.mark.parametrize(
        "spec", ["ring:5", "grid", "grid:", "grid:x", "grid:0", "random:-2"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ProblemError):
            parse_topology(spec)


class TestGridValidation:
    def test_empty_axis_rejected(self):
        with pytest.raises(ProblemError, match="empty"):
            SweepGrid(seeds=())

    def test_unknown_names_rejected(self):
        with pytest.raises(ProblemError, match="workload"):
            SweepGrid(workloads=("nope",))
        with pytest.raises(ProblemError, match="policy"):
            SweepGrid(policies=("nope",))
        with pytest.raises(ProblemError, match="algorithm"):
            SweepGrid(algorithm="Nope")
        with pytest.raises(ProblemError, match="engine"):
            SweepGrid(engine="warp")
        with pytest.raises(ProblemError, match="requests"):
            SweepGrid(requests=-1)

    def test_cells_enumerate_in_shard_order(self):
        grid = SweepGrid(
            topologies=("grid:4", "grid:5"),
            workloads=("zipf", "uniform"),
            policies=("cheapest", "p2c"),
            seeds=(1, 2),
            requests=10,
        )
        cells = grid.cells()
        assert len(cells) == 16
        assert [c.index for c in cells] == list(range(16))
        # Seed is the innermost axis, topology the outermost.
        assert (cells[0].topology, cells[0].seed) == ("grid:4", 1)
        assert (cells[1].topology, cells[1].seed) == ("grid:4", 2)
        assert cells[8].topology == "grid:5"

    def test_resolve_workers(self):
        assert resolve_workers(1, 8) == 1
        assert resolve_workers(16, 4) == 4
        assert resolve_workers(0, 4) >= 1
        assert resolve_workers(3, 0) == 1
        with pytest.raises(ProblemError):
            resolve_workers(-1, 4)


class TestSweepDeterminism:
    def test_workers_do_not_change_the_artifact(self):
        """The contract: 1 worker and 4 workers, byte-identical JSON."""
        extra = {"created_unix": 0}
        doc1 = run_sweep(SMALL_GRID, workers=1, manifest_extra=extra)
        doc4 = run_sweep(SMALL_GRID, workers=4, manifest_extra=extra)
        text1 = json.dumps(doc1, indent=2, sort_keys=True)
        text4 = json.dumps(doc4, indent=2, sort_keys=True)
        assert text1 == text4

    def test_repeat_runs_identical(self):
        extra = {"created_unix": 0}
        doc_a = run_sweep(SMALL_GRID, workers=2, manifest_extra=extra)
        doc_b = run_sweep(SMALL_GRID, workers=2, manifest_extra=extra)
        assert json.dumps(doc_a, sort_keys=True) == json.dumps(
            doc_b, sort_keys=True
        )

    def test_cell_matches_direct_serve(self):
        """A sweep cell reproduces a hand-built serve_placement call."""
        doc = run_sweep(SMALL_GRID, workers=1)
        cell = doc["cells"][0]
        assert cell["cell"] == {
            "index": 0, "topology": "grid:4", "workload": "zipf",
            "policy": "cheapest", "seed": 1, "adaptive": "off",
        }
        placement = solve_approximation(grid_problem(4))
        report = serve_placement(
            placement, ZipfWorkload(seed=1), 200,
            policy="cheapest", config=ServeConfig(seed=1),
        )
        assert cell["report"] == report.to_dict()

    def test_per_request_engine_cells_match_batched(self):
        batched = run_sweep(SMALL_GRID, workers=1)
        per_request = run_sweep(
            SweepGrid(
                **{**SMALL_GRID.to_dict(),
                   "topologies": tuple(SMALL_GRID.topologies),
                   "workloads": tuple(SMALL_GRID.workloads),
                   "policies": tuple(SMALL_GRID.policies),
                   "seeds": tuple(SMALL_GRID.seeds),
                   "engine": ENGINE_PER_REQUEST}
            ),
            workers=1,
        )
        for cell_b, cell_p in zip(batched["cells"], per_request["cells"]):
            assert cell_b["report"] == cell_p["report"]


class TestSweepDocument:
    def test_schema_and_shape(self):
        doc = run_sweep(SMALL_GRID, workers=1)
        assert doc["schema"] == SWEEP_SCHEMA
        assert doc["grid"]["requests"] == 200
        assert len(doc["cells"]) == 4
        assert "manifest" in doc
        assert doc["manifest"]["cells"] == 4
        # The worker count must not leak into the artifact.
        assert "workers" not in json.dumps(doc["manifest"])

    def test_aggregates_group_by_workload_policy(self):
        doc = run_sweep(SMALL_GRID, workers=1)
        rows = doc["aggregates"]
        assert [(r["workload"], r["policy"]) for r in rows] == [
            ("uniform", "cheapest"), ("zipf", "cheapest"),
        ]
        for row in rows:
            assert row["cells"] == 2
            assert row["completed"] == 400
            assert 0.0 <= row["mean_served_gini"] <= 1.0
            assert 0.0 < row["mean_served_jains"] <= 1.0

    def test_aggregate_means_are_exact(self):
        doc = run_sweep(SMALL_GRID, workers=1)
        reports = [
            c["report"] for c in doc["cells"]
            if c["cell"]["workload"] == "zipf"
        ]
        row = next(
            r for r in doc["aggregates"] if r["workload"] == "zipf"
        )
        expected = sum(r["served_gini"] for r in reports) / len(reports)
        assert row["mean_served_gini"] == expected

    def test_aggregate_cells_empty(self):
        assert aggregate_cells([]) == []

    def test_write_sweep_round_trips(self, tmp_path):
        doc = run_sweep(SMALL_GRID, workers=1)
        path = tmp_path / "sweep.json"
        write_sweep(doc, str(path))
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == json.loads(
            json.dumps(doc, sort_keys=True)
        )

    def test_render_sweep_mentions_every_group(self):
        doc = run_sweep(SMALL_GRID, workers=1)
        text = render_sweep(doc)
        assert "zipf" in text and "uniform" in text
        assert "4 cells" in text


class TestSweepCLI:
    def test_cli_writes_artifact(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "sweep.json"
        status = main([
            "sweep", "--topology", "grid:4",
            "--workloads", "zipf,uniform", "--policies", "cheapest",
            "--seeds", "1,2", "--requests", "200",
            "--workers", "2", "-o", str(out),
        ])
        assert status == 0
        captured = capsys.readouterr()
        assert "zipf" in captured.out
        doc = json.loads(out.read_text())
        assert doc["schema"] == SWEEP_SCHEMA
        assert len(doc["cells"]) == 4

    def test_cli_rejects_unknown_axis_values(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--workloads", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err
        assert main(["sweep", "--topology", "ring:9"]) == 2
        assert main(["sweep", "--seeds", "one,two"]) == 2

    def test_cli_serve_engine_flag(self, capsys):
        from repro.cli import main

        status = main([
            "serve", "--grid", "4", "--requests", "50",
            "--engine", "per-request", "--json",
        ])
        assert status == 0
        report = json.loads(capsys.readouterr().out)
        assert report["completed"] == 50
