"""Node-level unit tests for Algorithm 2's state machine.

These drive :class:`~repro.distributed.node.ProtocolNode` directly by
injecting messages through a real (but tiny) chunk session, pinning down
the handler semantics independent of whole-protocol outcomes.
"""

import math

import pytest

from repro.distributed import DistributedConfig
from repro.distributed.messages import (
    BAdminMessage,
    CcMessage,
    FreezeMessage,
    MessageStats,
    NAdminMessage,
    NpiMessage,
    SpanMessage,
    TightMessage,
)
from repro.distributed.node import ACTIVE, ADMIN, FROZEN, ProtocolNode
from repro.distributed.protocol import ChunkSession
from repro.workloads import grid_problem


@pytest.fixture
def session():
    problem = grid_problem(3, num_chunks=1)
    state = problem.new_state()
    return ChunkSession(state, 0, DistributedConfig(), MessageStats())


@pytest.fixture
def node(session):
    """Node 0 (a grid corner), fresh and ACTIVE."""
    return session.nodes[0]


class TestNpi:
    def test_learns_producer_cost(self, node):
        node.on_npi(NpiMessage(sender=4, chunk=0, cost_from_producer=12.0))
        assert node.producer_cost == 12.0

    def test_no_self_support(self, node):
        node.on_npi(NpiMessage(sender=4, chunk=0, cost_from_producer=12.0))
        assert node.id not in node.tights


class TestCc:
    def test_records_candidate(self, node):
        node.on_cc(CcMessage(sender=1, chunk=0, origin=1, accumulated_cost=5.0))
        assert node.candidates[1] == 5.0

    def test_keeps_cheapest(self, node):
        node.on_cc(CcMessage(sender=1, chunk=0, origin=1, accumulated_cost=5.0))
        node.on_cc(CcMessage(sender=1, chunk=0, origin=1, accumulated_cost=9.0))
        assert node.candidates[1] == 5.0
        node.on_cc(CcMessage(sender=1, chunk=0, origin=1, accumulated_cost=3.0))
        assert node.candidates[1] == 3.0

    def test_ignores_own_flood(self, node):
        node.on_cc(CcMessage(sender=0, chunk=0, origin=0, accumulated_cost=1.0))
        assert 0 not in node.candidates


class TestTightSpan:
    def test_tight_registers_client(self, node):
        node.on_tight(TightMessage(sender=1, chunk=0, target=0,
                                   contention=5.0, bid=7.0))
        assert 1 in node.tights
        assert node.tights[1].payment == pytest.approx(2.0)

    def test_span_marks_supporter(self, node):
        node.on_span(SpanMessage(sender=1, chunk=0, target=0,
                                 contention=5.0, resource_bid=4.0))
        assert node.tights[1].spanned
        assert node.tights[1].payment == pytest.approx(4.0)

    def test_admin_replies_freeze(self, session):
        admin = session.nodes[1]
        admin.is_admin = True
        admin.on_tight(TightMessage(sender=0, chunk=0, target=1,
                                    contention=5.0, bid=7.0))
        session.sim.run()
        # node 0 received FREEZE(server=1)
        assert session.nodes[0].state == FROZEN
        assert session.nodes[0].target == 1

    def test_full_node_ignores_requests(self, session):
        target = session.nodes[1]
        for chunk_id in range(5):  # capacity 5
            session.state.storage.add(1, 100 + chunk_id)
        target.on_tight(TightMessage(sender=0, chunk=0, target=1,
                                     contention=5.0, bid=9.0))
        assert 0 not in target.tights


class TestFreezeAndAdminNotices:
    def test_freeze_stops_bidding(self, node):
        node.on_freeze(FreezeMessage(sender=1, chunk=0, server=1))
        assert node.state == FROZEN
        assert node.target == 1
        alpha = node.alpha
        node.client_tick(1.0)
        assert node.alpha == alpha  # no further bidding

    def test_freeze_idempotent_when_done(self, node):
        node.on_freeze(FreezeMessage(sender=1, chunk=0, server=1))
        node.on_freeze(FreezeMessage(sender=2, chunk=0, server=2))
        assert node.target == 1  # first freeze wins

    def test_nadmin_freezes_and_forwards(self, session):
        node = session.nodes[1]
        node.candidates[4] = 6.0
        node.on_tight(TightMessage(sender=2, chunk=0, target=1,
                                   contention=4.0, bid=5.0))
        node.on_nadmin(NAdminMessage(sender=4, chunk=0))
        assert node.state == FROZEN and node.target == 4
        session.sim.run()
        # the tight client 2 was forwarded to the admin (backup pointer)
        assert session.nodes[2].state == FROZEN
        assert session.nodes[2].target == 4

    def test_badmin_freezes_affordable_active(self, node):
        node.alpha = 10.0
        node.on_badmin(BAdminMessage(sender=5, chunk=0, cost_from_admin=8.0))
        assert node.state == FROZEN and node.target == 5

    def test_badmin_remembers_unaffordable_server(self, node):
        node.alpha = 2.0
        node.on_badmin(BAdminMessage(sender=5, chunk=0, cost_from_admin=8.0))
        assert node.state == ACTIVE
        assert node.open_servers[5] == 8.0


class TestClientTick:
    def test_bid_grows(self, node):
        node.producer_cost = math.inf
        node.client_tick(1.0)
        assert node.alpha == 1.0

    def test_freezes_to_producer_when_affordable(self, node):
        node.producer_cost = 2.0
        node.client_tick(1.0)
        node.client_tick(1.0)
        assert node.state == FROZEN
        assert node.target == node.session.producer

    def test_tight_sent_when_candidate_affordable(self, session):
        node = session.nodes[0]
        node.producer_cost = math.inf
        node.on_cc(CcMessage(sender=1, chunk=0, origin=1, accumulated_cost=2.0))
        node.client_tick(1.0)
        node.client_tick(1.0)
        session.sim.run()
        assert 1 in node.tight_sent
        assert 0 in session.nodes[1].tights

    def test_span_follows_tight(self, session):
        node = session.nodes[0]
        node.producer_cost = math.inf
        node.on_cc(CcMessage(sender=1, chunk=0, origin=1, accumulated_cost=2.0))
        for _ in range(4):
            node.client_tick(1.0)
        session.sim.run()
        assert 1 in node.span_sent
        assert session.nodes[1].tights[0].spanned


class TestPromotion:
    def test_promotion_requires_threshold(self, session):
        candidate = session.nodes[1]
        candidate.on_span(SpanMessage(sender=0, chunk=0, target=1,
                                      contention=3.0, resource_bid=5.0))
        assert not candidate.promotion_valid()  # threshold is 3

    def test_promotion_with_enough_support(self, session):
        candidate = session.nodes[1]
        for sender in (0, 2, 3):
            candidate.on_span(SpanMessage(sender=sender, chunk=0, target=1,
                                          contention=3.0, resource_bid=5.0))
        assert candidate.promotion_valid()

    def test_frozen_supporters_dont_count(self, session):
        candidate = session.nodes[1]
        for sender in (0, 2, 3):
            candidate.on_span(SpanMessage(sender=sender, chunk=0, target=1,
                                          contention=3.0, resource_bid=5.0))
        session.notify_done(0)
        session.notify_done(2)
        assert not candidate.promotion_valid()

    def test_promote_announces(self, session):
        candidate = session.nodes[1]
        for sender in (0, 2, 3):
            candidate.on_span(SpanMessage(sender=sender, chunk=0, target=1,
                                          contention=3.0, resource_bid=5.0))
        candidate.promote()
        assert candidate.state == ADMIN
        assert candidate.is_admin
        assert 1 in session.admins
        session.sim.run()
        # supporters got NADMIN and froze onto the admin
        for sender in (0, 2, 3):
            assert session.nodes[sender].target == 1

    def test_payment_must_cover_fairness(self, session):
        # preload node 1 so its fairness cost is high
        for chunk_id in range(4):
            session.state.storage.add(1, 100 + chunk_id)
        session.state.costs.invalidate()
        candidate = session.nodes[1]
        for sender in (0, 2, 3):
            candidate.on_span(SpanMessage(sender=sender, chunk=0, target=1,
                                          contention=3.0, resource_bid=0.5))
        # f = 4/(5-4) = 4 > 1.5 total payment
        assert not candidate.promotion_valid()
