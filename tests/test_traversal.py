"""Unit tests for BFS/DFS traversals and k-hop neighborhoods."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graphs import (
    bfs_layers,
    bfs_order,
    dfs_order,
    grid_graph,
    hop_distances,
    k_hop_neighborhood,
    path_graph,
)


class TestBfs:
    def test_order_starts_at_source(self, path5):
        assert bfs_order(path5, 2)[0] == 2

    def test_order_visits_all_reachable(self, path5):
        assert sorted(bfs_order(path5, 0)) == [0, 1, 2, 3, 4]

    def test_missing_source_raises(self, path5):
        with pytest.raises(NodeNotFoundError):
            bfs_order(path5, 99)

    def test_layers_by_distance(self, path5):
        layers = list(bfs_layers(path5, 0))
        assert layers == [[0], [1], [2], [3], [4]]

    def test_layers_grid_counts(self, grid4):
        layers = list(bfs_layers(grid4, 0))
        assert [len(l) for l in layers] == [1, 2, 3, 4, 3, 2, 1]


class TestHopDistances:
    def test_distances_on_path(self, path5):
        assert hop_distances(path5, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_max_hops_truncates(self, path5):
        dist = hop_distances(path5, 0, max_hops=2)
        assert set(dist) == {0, 1, 2}

    def test_grid_center_distances(self, grid4):
        dist = hop_distances(grid4, 5)
        assert dist[5] == 0
        assert dist[10] == 2
        assert dist[15] == 4


class TestKHop:
    def test_one_hop_is_neighbors(self, grid4):
        assert k_hop_neighborhood(grid4, 5, 1) == set(grid4.neighbors(5))

    def test_zero_hops_empty(self, grid4):
        assert k_hop_neighborhood(grid4, 5, 0) == set()

    def test_include_source(self, grid4):
        hood = k_hop_neighborhood(grid4, 5, 1, include_source=True)
        assert 5 in hood

    def test_negative_k_rejected(self, grid4):
        with pytest.raises(ValueError):
            k_hop_neighborhood(grid4, 5, -1)

    def test_large_k_covers_graph(self, grid4):
        hood = k_hop_neighborhood(grid4, 0, 100, include_source=True)
        assert hood == set(grid4.nodes())

    def test_two_hop_grid_count(self):
        g = grid_graph(5)
        center = 12
        assert len(k_hop_neighborhood(g, center, 2)) == 12


class TestDfs:
    def test_preorder_starts_at_source(self, grid4):
        assert dfs_order(grid4, 3)[0] == 3

    def test_visits_all(self, grid4):
        assert sorted(dfs_order(grid4, 0)) == sorted(grid4.nodes())

    def test_missing_source_raises(self):
        with pytest.raises(NodeNotFoundError):
            dfs_order(path_graph(3), 42)

    def test_path_dfs_is_linear(self, path5):
        assert dfs_order(path5, 0) == [0, 1, 2, 3, 4]
