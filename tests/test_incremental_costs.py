"""Incremental-vs-fresh cost equivalence over full algorithm runs.

The incremental cost engine patches cached ``c_ij`` rows in place after
every chunk commit instead of rebuilding the matrix (Algorithm 1 lines
8–13).  These tests pin the contract down end to end: after *every*
commit of a 20-node / Q=8 run — for every ``DEFAULT_ALGORITHMS`` entry —
the live :class:`~repro.core.costs.CostModel` must serve exactly the
same cost matrix as one rebuilt from scratch on the same storage, with
exact float equality (all node costs are integers, so float64 sums are
exact and any drift is a real defect).
"""

from __future__ import annotations

import dataclasses

import pytest

import repro.core.commit as commit_mod
from repro.core import PATH_POLICY_CONTENTION, solve_approximation
from repro.core.costs import CostModel
from repro.experiments.runner import DEFAULT_ALGORITHMS, SOLVERS
from repro.obs import Recorder, use_recorder
from repro.workloads import random_problem

NUM_NODES = 20
NUM_CHUNKS = 8


@pytest.fixture
def checked_commit(monkeypatch):
    """Wrap the shared commit path to compare patched vs fresh matrices."""
    checks = {"count": 0}
    original = commit_mod._commit_chunk

    def wrapper(state, chunk, caches, assignment, tree_edges):
        placement = original(state, chunk, caches, assignment, tree_edges)
        fresh = CostModel(
            state.problem.graph, state.storage, state.problem.path_policy
        )
        assert state.costs.cost_matrix() == fresh.cost_matrix()
        checks["count"] += 1
        return placement

    monkeypatch.setattr(commit_mod, "_commit_chunk", wrapper)
    return checks


def _problem(**overrides):
    problem, _ = random_problem(
        NUM_NODES, seed=2017, num_chunks=NUM_CHUNKS, capacity=5
    )
    if overrides:
        problem = dataclasses.replace(problem, **overrides)
    return problem


@pytest.mark.parametrize("name", DEFAULT_ALGORITHMS)
def test_matrix_matches_fresh_after_every_commit(name, checked_commit):
    problem = _problem()
    placement = SOLVERS[name](problem)
    placement.validate()
    assert checked_commit["count"] == NUM_CHUNKS


def test_contention_policy_fallback_matches_fresh(checked_commit):
    # Under the "contention" ablation policy dirty invalidation falls
    # back to the full drop; equivalence must hold there too.
    placement = solve_approximation(
        _problem(path_policy=PATH_POLICY_CONTENTION)
    )
    placement.validate()
    assert checked_commit["count"] == NUM_CHUNKS


def test_run_is_incremental_not_rebuilding():
    # The hot path must actually take the incremental route: zero full
    # rebuilds, one patch per cached copy, and hop trees built at most
    # once per node across the whole run.
    problem = _problem()
    rec = Recorder()
    with use_recorder(rec):
        placement = solve_approximation(problem)
    assert rec.counter("costs.full_rebuilds") == 0
    assert rec.counter("costs.incremental_patches") == placement.total_copies()
    assert rec.counter("costs.tree_rebuilds") <= NUM_NODES
