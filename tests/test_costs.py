"""Unit tests for the fairness and contention cost model (Eqs. 1-2)."""

import math

import pytest

from repro.core import (
    CostModel,
    PATH_POLICY_CONTENTION,
    StorageState,
    fairness_degree_cost,
    node_contention_cost,
    path_contention_cost,
)
from repro.errors import ProblemError
from repro.graphs import Graph, grid_graph, path_graph


class TestFairnessDegreeCost:
    def test_empty_storage_is_free(self):
        assert fairness_degree_cost(0, 5) == 0.0

    def test_paper_sequence_capacity_5(self):
        # S = 0..4 of 5: 0, 1/4, 2/3, 3/2, 4
        values = [fairness_degree_cost(s, 5) for s in range(5)]
        assert values == pytest.approx([0, 0.25, 2 / 3, 1.5, 4.0])

    def test_full_storage_infinite(self):
        assert fairness_degree_cost(5, 5) == math.inf

    def test_zero_capacity_infinite(self):
        assert fairness_degree_cost(0, 0) == math.inf

    def test_monotone_in_usage(self):
        costs = [fairness_degree_cost(s, 10) for s in range(10)]
        assert costs == sorted(costs)

    def test_invalid_occupancy(self):
        with pytest.raises(ProblemError):
            fairness_degree_cost(6, 5)
        with pytest.raises(ProblemError):
            fairness_degree_cost(-1, 5)


class TestNodeContention:
    def test_cost_is_degree(self, grid4):
        assert node_contention_cost(grid4, 0) == 2
        assert node_contention_cost(grid4, 5) == 4

    def test_path_cost_empty_storage(self, grid4):
        storage = StorageState(grid4.nodes(), 5)
        # path 0-1-2: degrees 2+3+3 = 8
        assert path_contention_cost(grid4, [0, 1, 2], storage) == 8.0

    def test_path_cost_with_storage(self, grid4):
        storage = StorageState(grid4.nodes(), 5)
        storage.add(1, 0)
        storage.add(1, 1)
        # node 1 contributes deg * (1 + 2) = 9
        assert path_contention_cost(grid4, [0, 1, 2], storage) == 2 + 9 + 3

    def test_trivial_paths_free(self, grid4):
        storage = StorageState(grid4.nodes(), 5)
        assert path_contention_cost(grid4, [3], storage) == 0.0
        assert path_contention_cost(grid4, [], storage) == 0.0


class TestCostModel:
    @pytest.fixture
    def model(self, grid4):
        storage = StorageState(grid4.nodes(), 5, producer=9)
        return CostModel(grid4, storage)

    def test_self_cost_zero(self, model):
        assert model.contention_cost(3, 3) == 0.0

    def test_adjacent_cost_is_degree_sum(self, model):
        assert model.contention_cost(0, 1) == 5.0  # deg 2 + deg 3

    def test_cost_includes_endpoints(self, model):
        # 0-1-2 on the grid: 2+3+3
        assert model.contention_cost(0, 2) == 8.0

    def test_producer_fairness_infinite(self, model):
        assert model.fairness_cost(9) == math.inf

    def test_fairness_tracks_storage(self, model):
        assert model.fairness_cost(1) == 0.0
        model.storage.add(1, 0)
        model.invalidate()
        assert model.fairness_cost(1) == 0.25

    def test_storage_inflates_contention(self, model):
        before = model.contention_cost(0, 2)
        model.storage.add(1, 0)
        model.invalidate()
        after = model.contention_cost(0, 2)
        assert after == before + 3.0  # node 1 degree 3, +1 chunk

    def test_invalidate_required_for_fresh_costs(self, model):
        base = model.contention_cost(0, 2)
        model.storage.add(1, 0)
        # without invalidate the cache serves the stale value
        assert model.contention_cost(0, 2) == base

    def test_all_costs_match_single(self, model):
        rows = model.all_contention_costs(0)
        for target in model.graph.nodes():
            assert rows[target] == model.contention_cost(0, target)

    def test_cost_matrix_complete(self, model):
        matrix = model.cost_matrix()
        nodes = list(model.graph.nodes())
        assert set(matrix) == set(nodes)
        assert all(set(row) == set(nodes) for row in matrix.values())

    def test_edge_cost(self, model):
        assert model.edge_cost(0, 1) == 5.0
        with pytest.raises(ProblemError):
            model.edge_cost(0, 5)  # not adjacent

    def test_contention_weighted_graph(self, model):
        weighted = model.contention_weighted_graph()
        assert weighted.num_edges == model.graph.num_edges
        assert weighted.weight(0, 1) == 5.0

    def test_path_returns_hop_path(self, model):
        path = model.path(0, 15)
        assert path[0] == 0 and path[-1] == 15
        assert len(path) == 7

    def test_bad_policy_rejected(self, grid4):
        storage = StorageState(grid4.nodes(), 5)
        with pytest.raises(ProblemError):
            CostModel(grid4, storage, path_policy="teleport")

    def test_invalidate_drops_both_caches(self, model):
        # Regression: a stale _path_cache or _cost_cache after a storage
        # mutation would silently serve pre-mutation contention costs.
        model.contention_cost(0, 2)
        model.path(0, 15)
        assert model._path_cache and model._cost_cache
        model.storage.add(1, 0)
        model.invalidate()
        assert model._path_cache == {}
        assert model._cost_cache == {}
        # Fresh lookups rebuild from the mutated storage, not the caches.
        assert model.contention_cost(0, 2) == 2 + 3 * 2 + 3


class TestContentionPathPolicy:
    def test_contention_policy_can_beat_hops(self):
        # 0 - hub - 3 (2 hops through degree-4 hub) vs long cheap path.
        g = Graph()
        g.add_edge(0, "hub")
        g.add_edge("hub", 3)
        g.add_edge("hub", "x1")
        g.add_edge("hub", "x2")
        for a, b in [(0, "a"), ("a", "b"), ("b", 3)]:
            g.add_edge(a, b)
        storage = StorageState(g.nodes(), 5)
        hops_model = CostModel(g, storage)
        cont_model = CostModel(g, storage, PATH_POLICY_CONTENTION)
        assert cont_model.contention_cost(0, 3) <= hops_model.contention_cost(0, 3)

    def test_policies_agree_on_path_graph(self):
        g = path_graph(5)
        storage = StorageState(g.nodes(), 5)
        a = CostModel(g, storage)
        b = CostModel(g, storage, PATH_POLICY_CONTENTION)
        for t in g.nodes():
            assert a.contention_cost(0, t) == b.contention_cost(0, t)
