"""Unit tests for the fairness and contention cost model (Eqs. 1-2)."""

import math

import pytest

from repro.core import (
    CostModel,
    PATH_POLICY_CONTENTION,
    PATH_POLICY_HOPS,
    StorageState,
    fairness_degree_cost,
    node_contention_cost,
    path_contention_cost,
)
from repro.errors import (
    InvariantError,
    NodeNotFoundError,
    NoPathError,
    ProblemError,
)
from repro.graphs import Graph, grid_graph, path_graph
from repro.obs import Recorder, use_recorder


class TestFairnessDegreeCost:
    def test_empty_storage_is_free(self):
        assert fairness_degree_cost(0, 5) == 0.0

    def test_paper_sequence_capacity_5(self):
        # S = 0..4 of 5: 0, 1/4, 2/3, 3/2, 4
        values = [fairness_degree_cost(s, 5) for s in range(5)]
        assert values == pytest.approx([0, 0.25, 2 / 3, 1.5, 4.0])

    def test_full_storage_infinite(self):
        assert fairness_degree_cost(5, 5) == math.inf

    def test_zero_capacity_infinite(self):
        assert fairness_degree_cost(0, 0) == math.inf

    def test_monotone_in_usage(self):
        costs = [fairness_degree_cost(s, 10) for s in range(10)]
        assert costs == sorted(costs)

    def test_invalid_occupancy(self):
        with pytest.raises(ProblemError):
            fairness_degree_cost(6, 5)
        with pytest.raises(ProblemError):
            fairness_degree_cost(-1, 5)


class TestNodeContention:
    def test_cost_is_degree(self, grid4):
        assert node_contention_cost(grid4, 0) == 2
        assert node_contention_cost(grid4, 5) == 4

    def test_path_cost_empty_storage(self, grid4):
        storage = StorageState(grid4.nodes(), 5)
        # path 0-1-2: degrees 2+3+3 = 8
        assert path_contention_cost(grid4, [0, 1, 2], storage) == 8.0

    def test_path_cost_with_storage(self, grid4):
        storage = StorageState(grid4.nodes(), 5)
        storage.add(1, 0)
        storage.add(1, 1)
        # node 1 contributes deg * (1 + 2) = 9
        assert path_contention_cost(grid4, [0, 1, 2], storage) == 2 + 9 + 3

    def test_trivial_paths_free(self, grid4):
        storage = StorageState(grid4.nodes(), 5)
        assert path_contention_cost(grid4, [3], storage) == 0.0
        assert path_contention_cost(grid4, [], storage) == 0.0


class TestCostModel:
    @pytest.fixture
    def model(self, grid4):
        storage = StorageState(grid4.nodes(), 5, producer=9)
        return CostModel(grid4, storage)

    def test_self_cost_zero(self, model):
        assert model.contention_cost(3, 3) == 0.0

    def test_adjacent_cost_is_degree_sum(self, model):
        assert model.contention_cost(0, 1) == 5.0  # deg 2 + deg 3

    def test_cost_includes_endpoints(self, model):
        # 0-1-2 on the grid: 2+3+3
        assert model.contention_cost(0, 2) == 8.0

    def test_producer_fairness_infinite(self, model):
        assert model.fairness_cost(9) == math.inf

    def test_fairness_tracks_storage(self, model):
        assert model.fairness_cost(1) == 0.0
        model.storage.add(1, 0)
        model.invalidate()
        assert model.fairness_cost(1) == 0.25

    def test_storage_inflates_contention(self, model):
        before = model.contention_cost(0, 2)
        model.storage.add(1, 0)
        model.invalidate()
        after = model.contention_cost(0, 2)
        assert after == before + 3.0  # node 1 degree 3, +1 chunk

    def test_invalidate_required_for_fresh_costs(self, model):
        base = model.contention_cost(0, 2)
        model.storage.add(1, 0)
        # without invalidate the cache serves the stale value
        assert model.contention_cost(0, 2) == base

    def test_all_costs_match_single(self, model):
        rows = model.all_contention_costs(0)
        for target in model.graph.nodes():
            assert rows[target] == model.contention_cost(0, target)

    def test_cost_matrix_complete(self, model):
        matrix = model.cost_matrix()
        nodes = list(model.graph.nodes())
        assert set(matrix) == set(nodes)
        assert all(set(row) == set(nodes) for row in matrix.values())

    def test_edge_cost(self, model):
        assert model.edge_cost(0, 1) == 5.0
        with pytest.raises(ProblemError):
            model.edge_cost(0, 5)  # not adjacent

    def test_contention_weighted_graph(self, model):
        weighted = model.contention_weighted_graph()
        assert weighted.num_edges == model.graph.num_edges
        assert weighted.weight(0, 1) == 5.0

    def test_path_returns_hop_path(self, model):
        path = model.path(0, 15)
        assert path[0] == 0 and path[-1] == 15
        assert len(path) == 7

    def test_bad_policy_rejected(self, grid4):
        storage = StorageState(grid4.nodes(), 5)
        with pytest.raises(ProblemError):
            CostModel(grid4, storage, path_policy="teleport")

    def test_full_invalidate_drops_cost_rows_keeps_hop_trees(self, model):
        # Regression: a stale _cost_cache after a storage mutation would
        # silently serve pre-mutation contention costs.  The BFS hop
        # trees depend only on topology and must survive.
        model.contention_cost(0, 2)
        model.path(0, 15)
        assert model._path_cache and model._cost_cache
        trees_before = dict(model._path_cache)
        model.storage.add(1, 0)
        model.invalidate()
        assert model._cost_cache == {}
        assert model._path_cache == trees_before
        # Fresh lookups rebuild from the mutated storage, not the caches.
        assert model.contention_cost(0, 2) == 2 + 3 * 2 + 3

    def test_topology_invalidate_drops_everything(self, model):
        model.contention_cost(0, 2)
        assert model._path_cache and model._cost_cache
        model.invalidate_topology()
        assert model._path_cache == {}
        assert model._children_cache == {}
        assert model._cost_cache == {}


class TestIncrementalInvalidation:
    """The delta-patch engine: invalidate(dirty_nodes=...) under "hops"."""

    @pytest.fixture
    def model(self, grid4):
        storage = StorageState(grid4.nodes(), 5, producer=9)
        return CostModel(grid4, storage)

    def _assert_matches_fresh(self, model):
        fresh = CostModel(model.graph, model.storage, model.path_policy)
        assert model.cost_matrix() == fresh.cost_matrix()

    def test_single_dirty_patch_matches_fresh_model(self, model):
        model.cost_matrix()  # populate every row
        model.storage.add(5, 0)
        model.invalidate(dirty_nodes=(5,))
        self._assert_matches_fresh(model)

    def test_sequence_of_commits_matches_fresh_model(self, model):
        model.cost_matrix()
        for chunk, node in enumerate((1, 5, 10, 5, 14, 1)):
            model.storage.add(node, chunk)
            model.invalidate(dirty_nodes=(node,))
        self._assert_matches_fresh(model)

    def test_evict_patches_downward(self, model):
        model.storage.add(6, 0)
        model.invalidate(dirty_nodes=(6,))
        before = model.cost_matrix()
        model.storage.remove(6, 0)
        model.invalidate(dirty_nodes=(6,))
        self._assert_matches_fresh(model)
        assert model.cost_matrix() != before

    def test_self_cost_stays_zero_when_source_dirty(self, model):
        model.cost_matrix()
        model.storage.add(5, 0)
        model.invalidate(dirty_nodes=(5,))
        assert model.contention_cost(5, 5) == 0.0
        assert model.all_contention_costs(5)[5] == 0.0

    def test_rows_built_after_patch_are_consistent(self, model):
        # Only one row cached when the patch lands; rows built later must
        # agree with it (they read the already-updated storage).
        model.all_contention_costs(0)
        model.storage.add(5, 0)
        model.invalidate(dirty_nodes=(5,))
        self._assert_matches_fresh(model)

    def test_noop_dirty_invalidate_changes_nothing(self, model):
        before = model.cost_matrix()
        model.invalidate(dirty_nodes=(5,))  # storage did not change
        assert model.cost_matrix() == before

    def test_unknown_dirty_node_rejected(self, model):
        with pytest.raises(ProblemError):
            model.invalidate(dirty_nodes=("nowhere",))

    def test_hop_trees_survive_dirty_invalidation(self, model):
        model.cost_matrix()
        tree = model._path_cache[0]
        model.storage.add(5, 0)
        model.invalidate(dirty_nodes=(5,))
        assert model._path_cache[0] is tree

    def test_counters(self, model):
        rec = Recorder()
        with use_recorder(rec):
            model.cost_matrix()
            builds = rec.counter("costs.row_builds")
            model.storage.add(5, 0)
            model.invalidate(dirty_nodes=(5,))
            model.cost_matrix()
        assert builds == model.graph.num_nodes
        assert rec.counter("costs.row_builds") == builds  # patched, not rebuilt
        assert rec.counter("costs.incremental_patches") == 1
        assert rec.counter("costs.full_rebuilds") == 0
        assert rec.counter("costs.row_cache_hits") >= builds

    def test_full_invalidate_counts_full_rebuild(self, model):
        rec = Recorder()
        with use_recorder(rec):
            model.invalidate()
        assert rec.counter("costs.full_rebuilds") == 1
        assert rec.counter("costs.incremental_patches") == 0

    def test_contention_policy_falls_back_to_full_drop(self, grid4):
        storage = StorageState(grid4.nodes(), 5, producer=9)
        model = CostModel(grid4, storage, PATH_POLICY_CONTENTION)
        model.all_contention_costs(0)
        assert model._cost_cache and model._tree_cache
        rec = Recorder()
        with use_recorder(rec):
            storage.add(5, 0)
            model.invalidate(dirty_nodes=(5,))
        assert model._cost_cache == {}
        assert model._tree_cache == {}
        assert rec.counter("costs.full_rebuilds") == 1
        fresh = CostModel(grid4, storage, PATH_POLICY_CONTENTION)
        assert model.cost_matrix() == fresh.cost_matrix()

    def test_sanitizer_catches_inconsistent_patch(self, model, monkeypatch):
        # Corrupt a cached row, then trigger an incremental patch: the
        # REPRO_SANITIZE cross-check must notice the divergence.
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        model.cost_matrix()
        model._cost_cache[0][15] += 1.0
        model.storage.add(5, 0)
        with pytest.raises(InvariantError):
            model.invalidate(dirty_nodes=(5,))


class TestUnreachableTargets:
    """Disconnected/churned graphs must fail with typed errors."""

    @pytest.fixture
    def split(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge("a", "b")  # second component
        return g

    @pytest.mark.parametrize(
        "policy", [PATH_POLICY_HOPS, PATH_POLICY_CONTENTION]
    )
    def test_contention_cost_unreachable_raises_no_path(self, split, policy):
        model = CostModel(split, StorageState(split.nodes(), 5), policy)
        with pytest.raises(NoPathError) as exc:
            model.contention_cost(0, "a")
        assert exc.value.source == 0
        assert exc.value.target == "a"

    @pytest.mark.parametrize(
        "policy", [PATH_POLICY_HOPS, PATH_POLICY_CONTENTION]
    )
    def test_path_unreachable_raises_no_path(self, split, policy):
        model = CostModel(split, StorageState(split.nodes(), 5), policy)
        with pytest.raises(NoPathError):
            model.path(0, "b")

    def test_missing_target_raises_node_not_found(self, split):
        model = CostModel(split, StorageState(split.nodes(), 5))
        with pytest.raises(NodeNotFoundError):
            model.contention_cost(0, "ghost")

    def test_no_path_error_is_catchable_as_problem_family(self, split):
        from repro.errors import ReproError

        model = CostModel(split, StorageState(split.nodes(), 5))
        with pytest.raises(ReproError):
            model.contention_cost(0, "a")

    def test_all_costs_cover_component_only(self, split):
        model = CostModel(split, StorageState(split.nodes(), 5))
        assert set(model.all_contention_costs(0)) == {0, 1, 2}
        assert set(model.all_contention_costs("a")) == {"a", "b"}

    def test_dirty_patch_skips_unreachable_dirty_node(self, split):
        storage = StorageState(split.nodes(), 5)
        model = CostModel(split, storage)
        row = dict(model.all_contention_costs(0))
        storage.add("a", 0)  # dirty node in the other component
        model.invalidate(dirty_nodes=("a",))
        assert model.all_contention_costs(0) == row


class TestContentionTreeCache:
    """The "contention" policy caches (dist, parents) per source now."""

    def test_dijkstra_runs_once_per_source(self, grid4):
        storage = StorageState(grid4.nodes(), 5)
        model = CostModel(grid4, storage, PATH_POLICY_CONTENTION)
        rec = Recorder()
        with use_recorder(rec):
            model.path(0, 15)
            model.path(0, 10)
            model.contention_cost(0, 5)
        assert rec.counter("costs.tree_rebuilds") == 1

    def test_invalidate_refreshes_cached_tree(self, grid4):
        storage = StorageState(grid4.nodes(), 5)
        model = CostModel(grid4, storage, PATH_POLICY_CONTENTION)
        before = model.contention_cost(0, 2)
        storage.add(1, 0)
        model.invalidate()
        rec = Recorder()
        with use_recorder(rec):
            after = model.contention_cost(0, 2)
        assert rec.counter("costs.tree_rebuilds") == 1
        assert after != before


class TestEdgeCostPolicy:
    """c_e must agree with the configured PATH policy's c_ij (Eq. 2)."""

    @pytest.mark.parametrize(
        "policy", [PATH_POLICY_HOPS, PATH_POLICY_CONTENTION]
    )
    def test_edge_cost_equals_policy_contention_cost(self, grid4, policy):
        storage = StorageState(grid4.nodes(), 5)
        for chunk, node in enumerate((1, 5, 5, 10)):
            storage.add(node, chunk)
        model = CostModel(grid4, storage, policy)
        for u, v, _ in grid4.edges():
            assert model.edge_cost(u, v) == model.contention_cost(u, v)

    def test_direct_edge_is_optimal_under_contention_policy(self, grid4):
        # Node costs are >= 1, so no detour can undercut the direct edge:
        # the closed form w_u(1+S_u) + w_v(1+S_v) stays exact.
        storage = StorageState(grid4.nodes(), 5)
        model = CostModel(grid4, storage, PATH_POLICY_CONTENTION)
        for u, v, _ in grid4.edges():
            assert model.edge_cost(u, v) == model.node_cost(u) + model.node_cost(v)


class TestContentionPathPolicy:
    def test_contention_policy_can_beat_hops(self):
        # 0 - hub - 3 (2 hops through degree-4 hub) vs long cheap path.
        g = Graph()
        g.add_edge(0, "hub")
        g.add_edge("hub", 3)
        g.add_edge("hub", "x1")
        g.add_edge("hub", "x2")
        for a, b in [(0, "a"), ("a", "b"), ("b", 3)]:
            g.add_edge(a, b)
        storage = StorageState(g.nodes(), 5)
        hops_model = CostModel(g, storage)
        cont_model = CostModel(g, storage, PATH_POLICY_CONTENTION)
        assert cont_model.contention_cost(0, 3) <= hops_model.contention_cost(0, 3)

    def test_policies_agree_on_path_graph(self):
        g = path_graph(5)
        storage = StorageState(g.nodes(), 5)
        a = CostModel(g, storage)
        b = CostModel(g, storage, PATH_POLICY_CONTENTION)
        for t in g.nodes():
            assert a.contention_cost(0, t) == b.contention_cost(0, t)
