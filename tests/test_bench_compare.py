"""Tests for the bench regression gate (repro.obs.compare + CLI)."""

import copy
import json

import pytest

from repro.obs.compare import (
    DEFAULT_MIN_ABS_GAUGE,
    DEFAULT_MIN_ABS_SECONDS,
    compare_bench,
    load_bench,
)


def _doc(wall=1.0, timers=None, counters=None, scenario="small",
         algorithm="Appx"):
    """A minimal repro-bench document with one scenario/algorithm."""
    return {
        "schema": "repro-bench/1",
        "scenarios": [
            {
                "name": scenario,
                "algorithms": {
                    algorithm: {
                        "wall_seconds": wall,
                        "timers": timers or {},
                        "counters": counters or {},
                    }
                },
            }
        ],
    }


class TestTimerGate:
    def test_identical_documents_pass(self):
        doc = _doc(wall=1.0, timers={"solve": {"seconds": 0.8, "calls": 1}})
        comparison = compare_bench(doc, copy.deepcopy(doc))
        assert comparison.ok
        assert comparison.regressions == []

    def test_regression_over_threshold_and_floor_fails(self):
        base = _doc(wall=1.0)
        cur = _doc(wall=1.3)  # +30% and +0.3s: past both gates
        comparison = compare_bench(base, cur, threshold_pct=25.0)
        assert not comparison.ok
        (row,) = comparison.regressions
        assert row.kind == "wall"
        assert row.delta_pct == pytest.approx(30.0)

    def test_below_threshold_passes(self):
        comparison = compare_bench(_doc(wall=1.0), _doc(wall=1.2),
                                   threshold_pct=25.0)
        assert comparison.ok

    def test_absolute_floor_absorbs_millisecond_noise(self):
        # +100% but only +5ms: under the 0.01s floor, not a regression.
        base = _doc(wall=0.005)
        cur = _doc(wall=0.010)
        assert compare_bench(base, cur, threshold_pct=25.0).ok

    def test_floor_is_configurable(self):
        base = _doc(wall=0.005)
        cur = _doc(wall=0.010)
        comparison = compare_bench(base, cur, threshold_pct=25.0,
                                   min_abs_seconds=0.001)
        assert not comparison.ok

    def test_default_floor_value(self):
        assert DEFAULT_MIN_ABS_SECONDS == 0.01

    def test_timer_totals_gated(self):
        base = _doc(timers={"solve": {"seconds": 1.0, "calls": 1}})
        cur = _doc(timers={"solve": {"seconds": 2.0, "calls": 1}})
        comparison = compare_bench(base, cur)
        rows = comparison.regressions
        assert [row.name for row in rows] == ["solve"]
        assert rows[0].kind == "timer"

    def test_per_call_max_gated_when_both_sides_have_it(self):
        base = _doc(timers={"solve": {"seconds": 1.0, "calls": 10,
                                      "max": 0.1}})
        cur = _doc(timers={"solve": {"seconds": 1.0, "calls": 10,
                                     "max": 0.9}})
        comparison = compare_bench(base, cur)
        (row,) = comparison.regressions
        assert row.kind == "timer-max"
        assert "(max)" in row.label()

    def test_max_skipped_for_legacy_baselines(self):
        # Baselines written before min/max stats have no "max" key.
        base = _doc(timers={"solve": {"seconds": 1.0, "calls": 10}})
        cur = _doc(timers={"solve": {"seconds": 1.0, "calls": 10,
                                     "max": 99.0}})
        comparison = compare_bench(base, cur)
        assert comparison.ok
        assert all(row.kind != "timer-max" for row in comparison.rows)

    def test_improvement_never_regresses(self):
        assert compare_bench(_doc(wall=2.0), _doc(wall=0.5)).ok


class TestCounterGate:
    def test_exact_counters_pass(self):
        base = _doc(counters={"dual_ascent.rounds": 86})
        cur = _doc(counters={"dual_ascent.rounds": 86})
        assert compare_bench(base, cur).ok

    def test_counter_growth_past_threshold_fails(self):
        base = _doc(counters={"dual_ascent.rounds": 100})
        cur = _doc(counters={"dual_ascent.rounds": 126})
        comparison = compare_bench(base, cur, threshold_pct=25.0)
        (row,) = comparison.regressions
        assert row.kind == "counter"
        assert row.name == "dual_ascent.rounds"

    def test_counter_growth_within_threshold_passes(self):
        base = _doc(counters={"dual_ascent.rounds": 100})
        cur = _doc(counters={"dual_ascent.rounds": 124})
        assert compare_bench(base, cur, threshold_pct=25.0).ok

    def test_zero_baseline_counter_moving_fails(self):
        # costs.full_rebuilds going 0 -> anything is a real regression,
        # regardless of threshold: no percentage softens a zero base.
        base = _doc(counters={"costs.full_rebuilds": 0})
        cur = _doc(counters={"costs.full_rebuilds": 1})
        comparison = compare_bench(base, cur, threshold_pct=1000.0)
        (row,) = comparison.regressions
        assert row.name == "costs.full_rebuilds"
        assert row.delta_pct is None
        assert "new>0" in comparison.render()

    def test_counter_decrease_passes(self):
        base = _doc(counters={"sim.events": 500})
        cur = _doc(counters={"sim.events": 100})
        assert compare_bench(base, cur).ok


class TestScope:
    def test_only_intersection_compared(self):
        base = _doc(counters={"a": 1, "gone": 5})
        base["scenarios"].append(
            {"name": "large", "algorithms": {"Appx": {"wall_seconds": 9.0}}}
        )
        cur = _doc(counters={"a": 1, "brand_new": 7})
        comparison = compare_bench(base, cur)
        assert comparison.ok
        assert any("scenario large" in s for s in comparison.skipped)
        assert any("counter gone" in s for s in comparison.skipped)

    def test_one_sided_algorithm_skipped(self):
        base = _doc(algorithm="Appx")
        cur = _doc(algorithm="Dist")
        comparison = compare_bench(base, cur)
        assert comparison.ok
        assert any("Appx" in s for s in comparison.skipped)
        assert any("Dist" in s for s in comparison.skipped)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_bench(_doc(), _doc(), threshold_pct=-1.0)


class TestGaugeGate:
    def _gauge_doc(self, gmax, gmean):
        doc = _doc()
        doc["scenarios"][0]["algorithms"]["Appx"]["gauges"] = {
            "serve.inflight": {
                "last": gmean, "min": 0.0, "max": gmax,
                "mean": gmean, "count": 100,
            }
        }
        return doc

    def test_identical_gauges_pass(self):
        base = self._gauge_doc(10.0, 4.0)
        comparison = compare_bench(base, copy.deepcopy(base))
        assert comparison.ok
        kinds = {r.kind for r in comparison.rows}
        assert {"gauge-max", "gauge-mean"} <= kinds

    def test_gauge_max_regression_fails(self):
        comparison = compare_bench(
            self._gauge_doc(10.0, 4.0), self._gauge_doc(20.0, 4.0)
        )
        assert not comparison.ok
        (row,) = comparison.regressions
        assert row.kind == "gauge-max"
        assert "(max)" in row.label()

    def test_gauge_mean_regression_fails(self):
        comparison = compare_bench(
            self._gauge_doc(10.0, 4.0), self._gauge_doc(10.0, 8.0)
        )
        assert not comparison.ok
        (row,) = comparison.regressions
        assert row.kind == "gauge-mean"
        assert "(mean)" in row.label()

    def test_absolute_floor_absorbs_near_zero_jitter(self):
        # +400% but +0.4 absolute: under the 1.0 gauge floor.
        comparison = compare_bench(
            self._gauge_doc(0.1, 0.1), self._gauge_doc(0.5, 0.5)
        )
        assert comparison.ok

    def test_floor_is_configurable(self):
        comparison = compare_bench(
            self._gauge_doc(0.1, 0.1),
            self._gauge_doc(0.5, 0.5),
            min_abs_gauge=0.0,
        )
        assert not comparison.ok

    def test_default_floor_value(self):
        assert DEFAULT_MIN_ABS_GAUGE == 1.0

    def test_legacy_baseline_without_gauges_skipped(self):
        comparison = compare_bench(_doc(), self._gauge_doc(99.0, 99.0))
        assert comparison.ok
        assert not any(r.kind.startswith("gauge") for r in comparison.rows)

    def test_one_sided_gauge_skipped(self):
        base = self._gauge_doc(1.0, 1.0)
        cur = copy.deepcopy(base)
        algos = cur["scenarios"][0]["algorithms"]["Appx"]
        algos["gauges"] = {"other.gauge": algos["gauges"]["serve.inflight"]}
        comparison = compare_bench(base, cur)
        assert comparison.ok
        assert any("gauge serve.inflight" in s for s in comparison.skipped)

    def test_render_counts_gauge_entries(self):
        base = self._gauge_doc(1.0, 1.0)
        text = compare_bench(base, copy.deepcopy(base)).render()
        assert "2 gauge entries" in text

    def test_render_mentions_summary(self):
        comparison = compare_bench(_doc(wall=1.0), _doc(wall=5.0))
        text = comparison.render()
        assert "regression" in text
        assert "wall_seconds" in text


class TestLoadBench:
    def test_loads_valid_document(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(_doc()))
        assert load_bench(str(path))["schema"] == "repro-bench/1"

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "repro-trace/1"}))
        with pytest.raises(ValueError):
            load_bench(str(path))

    def test_rejects_missing_schema(self, tmp_path):
        path = tmp_path / "raw.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_bench(str(path))


class TestCliGate:
    """End-to-end: `repro bench --compare` exits 4 on regression."""

    ARGS = ["bench", "--nodes", "12", "--repeats", "1",
            "--algorithms", "appx"]

    def _run(self, tmp_path, extra):
        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main(self.ARGS + ["-o", str(out)] + extra)
        return code, out

    def test_self_comparison_passes(self, tmp_path, capsys):
        code, out = self._run(tmp_path, [])
        assert code == 0
        code, _ = self._run(tmp_path, ["--compare", str(out)])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_synthetically_faster_baseline_fails(self, tmp_path, capsys):
        code, out = self._run(tmp_path, [])
        assert code == 0
        # Shrink the baseline: real timers 10x faster, counters halved —
        # the fresh run must now look like a regression on both axes.
        baseline = json.loads(out.read_text())
        for scenario in baseline["scenarios"]:
            for outcome in scenario["algorithms"].values():
                outcome["wall_seconds"] /= 10.0
                for stat in outcome["timers"].values():
                    for key in ("seconds", "min", "max", "mean"):
                        stat[key] /= 10.0
                for name in outcome["counters"]:
                    outcome["counters"][name] = max(
                        0, int(outcome["counters"][name] // 2)
                    )
        fake = tmp_path / "fake-baseline.json"
        fake.write_text(json.dumps(baseline))
        code, _ = self._run(tmp_path, ["--compare", str(fake)])
        assert code == 4
        assert "regression(s)" in capsys.readouterr().out

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        code, _ = self._run(
            tmp_path, ["--compare", str(tmp_path / "nope.json")]
        )
        assert code == 2
        assert "cannot load baseline" in capsys.readouterr().err

    def test_non_bench_baseline_rejected(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "something-else"}))
        code, _ = self._run(tmp_path, ["--compare", str(bogus)])
        assert code == 2
        assert "cannot load baseline" in capsys.readouterr().err

    def test_committed_baseline_loads(self):
        # The document CI gates against must always stay loadable.
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_PR3.json"
        doc = load_bench(str(path))
        assert {s["name"] for s in doc["scenarios"]} >= {"small"}
