"""Cross-checks of the exact solvers: ILP vs enumeration vs local search.

These are the correctness anchors of the whole reproduction: four
independent solution paths (HiGHS MILP, our branch-and-bound MILP, subset
enumeration with exact Dreyfus–Wagner trees, and the local search) must
agree on small instances.
"""

import pytest

from repro.core import CachingProblem, build_confl_instance, solve_approximation
from repro.exact import (
    build_chunk_model,
    enumerate_optimal,
    optimize_chunk_local,
    solve_chunk_with_cuts,
    solve_exact,
)
from repro.graphs import cycle_graph, grid_graph, path_graph, star_graph
from repro.workloads import grid_problem

EPSILON_SLACK = 1e-2  # symmetry-breaking epsilons in the MILP objective


def _tiny_instances():
    yield CachingProblem(graph=path_graph(5), producer=0, num_chunks=1)
    yield CachingProblem(graph=cycle_graph(6), producer=0, num_chunks=1)
    yield CachingProblem(graph=star_graph(5), producer=0, num_chunks=1)
    yield CachingProblem(graph=grid_graph(3), producer=4, num_chunks=1)
    # non-empty starting storage: place a chunk first
    problem = CachingProblem(graph=grid_graph(3), producer=4, num_chunks=2,
                             capacity=2)
    yield problem


@pytest.mark.parametrize("problem", list(_tiny_instances()),
                         ids=["path5", "cycle6", "star5", "grid3", "grid3-2ch"])
class TestExactAgreement:
    def test_enumeration_matches_local_search(self, problem):
        state = problem.new_state()
        for chunk in problem.chunks:
            instance = build_confl_instance(state)
            enum = enumerate_optimal(instance)
            _, _, _, local_obj = optimize_chunk_local(instance)
            assert local_obj == pytest.approx(enum.objective, abs=1e-9)
            # advance the state along the enumeration optimum
            for node in enum.caches:
                state.cache(node, chunk)

    def test_enumeration_matches_milp(self, problem):
        state = problem.new_state()
        instance = build_confl_instance(state)
        enum = enumerate_optimal(instance)
        chunk_model = build_chunk_model(instance, connectivity="multiflow")
        solution = chunk_model.model.solve(backend="highs")
        assert solution.objective == pytest.approx(
            enum.objective, abs=EPSILON_SLACK
        )


class TestMilpEncodings:
    def test_flow_equals_multiflow(self):
        problem = CachingProblem(graph=path_graph(5), producer=0, num_chunks=1)
        instance = build_confl_instance(problem.new_state())
        objectives = []
        for mode in ("flow", "multiflow"):
            model = build_chunk_model(instance, connectivity=mode)
            objectives.append(model.model.solve(backend="highs").objective)
        assert objectives[0] == pytest.approx(objectives[1], abs=1e-6)

    def test_cut_generation_matches(self):
        problem = CachingProblem(graph=star_graph(5), producer=0, num_chunks=1)
        instance = build_confl_instance(problem.new_state())
        enum = enumerate_optimal(instance)
        _, _, _, obj = solve_chunk_with_cuts(instance, backend="highs")
        assert obj == pytest.approx(enum.objective, abs=EPSILON_SLACK)

    def test_bnb_backend_matches_highs(self):
        problem = CachingProblem(graph=path_graph(4), producer=0, num_chunks=1)
        instance = build_confl_instance(problem.new_state())
        model_a = build_chunk_model(instance, connectivity="multiflow")
        model_b = build_chunk_model(instance, connectivity="multiflow")
        obj_highs = model_a.model.solve(backend="highs").objective
        obj_bnb = model_b.model.solve(backend="bnb").objective
        assert obj_bnb == pytest.approx(obj_highs, abs=1e-6)

    def test_extract_consistency(self):
        problem = CachingProblem(graph=path_graph(5), producer=0, num_chunks=1)
        instance = build_confl_instance(problem.new_state())
        chunk_model = build_chunk_model(instance, connectivity="multiflow")
        solution = chunk_model.model.solve(backend="highs")
        caches, assignment, edges = chunk_model.extract(solution)
        assert set(assignment) == set(instance.clients)
        for client, server in assignment.items():
            assert server == instance.producer or server in caches


class TestSolveExact:
    def test_local_placement_feasible(self):
        problem = grid_problem(4, num_chunks=3)
        placement = solve_exact(problem)
        placement.validate()
        assert placement.algorithm == "bruteforce"

    def test_exact_beats_approximation_single_chunk(self):
        for side in (3, 4):
            problem = grid_problem(side, num_chunks=1)
            exact = solve_exact(problem)
            appx = solve_approximation(problem)
            assert (
                exact.objective_value()
                <= appx.objective_value() + 1e-9
            )

    def test_unknown_method_rejected(self):
        from repro.errors import SolverError

        problem = grid_problem(3, num_chunks=1)
        with pytest.raises(SolverError):
            solve_exact(problem, method="oracle")

    def test_enumeration_guard(self):
        problem = grid_problem(5, num_chunks=1)
        instance = build_confl_instance(problem.new_state())
        with pytest.raises(ValueError):
            enumerate_optimal(instance, max_facilities=10)


class TestApproximationRatio:
    def test_ratio_within_bound_single_chunk(self):
        """Theorem 1's 6.55 bound, empirically (paper observes ≤ 5.6)."""
        for side in (3, 4):
            problem = grid_problem(side, num_chunks=1)
            exact = solve_exact(problem)
            appx = solve_approximation(problem)
            ratio = appx.objective_value() / exact.objective_value()
            assert 1.0 - 1e-9 <= ratio <= 6.55
