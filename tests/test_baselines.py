"""Unit tests for the Hopc / Cont baselines and their multi-item extension."""

import pytest

from repro.baselines import (
    contention_cost_rows,
    greedy_select,
    hop_cost_rows,
    solve_contention,
    solve_hopcount,
    solve_random,
    solve_static_baseline,
)
from repro.workloads import grid_problem


class TestGreedySelect:
    @pytest.fixture
    def setup(self, grid6):
        producer = 9
        clients = [n for n in grid6.nodes() if n != producer]
        rows = hop_cost_rows(grid6, list(grid6.nodes()))
        return grid6, producer, clients, rows

    def test_selects_nothing_with_huge_threshold(self, setup):
        g, p, clients, rows = setup
        assert greedy_select(g, p, clients, clients, rows, rel_threshold=5.0) == []

    def test_zero_threshold_selects_most(self, setup):
        g, p, clients, rows = setup
        sel = greedy_select(g, p, clients, clients, rows, rel_threshold=0.0)
        assert len(sel) >= 5

    def test_threshold_monotone(self, setup):
        g, p, clients, rows = setup
        sizes = [
            len(greedy_select(g, p, clients, clients, rows, rel_threshold=t))
            for t in (0.0, 0.1, 0.2)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_producer_never_selected(self, setup):
        g, p, clients, rows = setup
        sel = greedy_select(g, p, clients, clients, rows)
        assert p not in sel

    def test_requires_producer_row(self, setup):
        g, p, clients, _ = setup
        with pytest.raises(ValueError):
            greedy_select(g, p, clients, clients, {}, rel_threshold=0.1)

    def test_negative_threshold_rejected(self, setup):
        g, p, clients, rows = setup
        with pytest.raises(ValueError):
            greedy_select(g, p, clients, clients, rows, rel_threshold=-1)

    def test_calibrated_sizes_on_paper_grid(self, setup):
        g, p, clients, rows = setup
        hopc = greedy_select(g, p, clients, clients, rows, rel_threshold=0.17)
        assert len(hopc) == 2  # "50% of data on one node" → 2-node set
        cont_rows = contention_cost_rows(g, list(g.nodes()), p)
        cont = greedy_select(
            g, p, clients, clients, cont_rows, rel_threshold=0.06
        )
        assert len(cont) == 10  # "5 nodes hold 50%" → 10-node set


class TestStaticBaselines:
    def test_hopcount_feasible(self, paper_problem):
        placement = solve_hopcount(paper_problem)
        placement.validate()
        assert placement.algorithm == "hopcount"

    def test_contention_feasible(self, paper_problem):
        placement = solve_contention(paper_problem)
        placement.validate()
        assert placement.algorithm == "contention"

    def test_same_set_for_every_chunk(self, paper_problem):
        """The paper's criticism: static baselines reuse one node set."""
        for solver in (solve_hopcount, solve_contention):
            placement = solver(paper_problem)
            sets = {chunk.caches for chunk in placement.chunks}
            assert len(sets) == 1

    def test_hopc_concentrates_cont_spreads(self, paper_problem):
        hopc = solve_hopcount(paper_problem)
        cont = solve_contention(paper_problem)
        hopc_nodes = sum(1 for v in hopc.loads().values() if v)
        cont_nodes = sum(1 for v in cont.loads().values() if v)
        assert hopc_nodes < cont_nodes

    def test_unknown_metric_rejected(self, paper_problem):
        with pytest.raises(ValueError):
            solve_static_baseline(paper_problem, metric="psychic")


class TestMultiItemExtension:
    def test_overflow_moves_to_second_set(self):
        """Chunks beyond capacity trigger the subgraph recursion."""
        problem = grid_problem(4, num_chunks=8, capacity=5)
        placement = solve_hopcount(problem)
        placement.validate()
        first_set = placement.chunks[0].caches
        sixth_set = placement.chunks[5].caches
        assert first_set == placement.chunks[4].caches
        assert first_set != sixth_set
        assert first_set.isdisjoint(sixth_set)

    def test_first_set_filled_to_capacity(self):
        problem = grid_problem(4, num_chunks=8, capacity=5)
        placement = solve_contention(problem)
        loads = placement.loads()
        for node in placement.chunks[0].caches:
            assert loads[node] == 5

    def test_more_chunks_than_total_capacity(self):
        problem = grid_problem(3, num_chunks=20, capacity=2)
        placement = solve_hopcount(problem)
        placement.validate()
        # 8 non-producer nodes x 2 = 16 cached chunk generations at most;
        # the rest must fall back to producer-only service.
        assert len(placement.chunks) == 20
        assert any(not c.caches for c in placement.chunks)

    def test_capacity_one_many_rounds(self):
        problem = grid_problem(3, num_chunks=4, capacity=1)
        placement = solve_contention(problem)
        placement.validate()
        sets = [c.caches for c in placement.chunks]
        for a_index in range(len(sets)):
            for b_index in range(a_index + 1, len(sets)):
                if sets[a_index] and sets[b_index]:
                    assert sets[a_index].isdisjoint(sets[b_index])


class TestRandomBaseline:
    def test_feasible(self, small_problem):
        placement = solve_random(small_problem, seed=1)
        placement.validate()

    def test_seed_determinism(self, small_problem):
        a = solve_random(small_problem, seed=7)
        b = solve_random(small_problem, seed=7)
        assert [c.caches for c in a.chunks] == [c.caches for c in b.chunks]

    def test_caches_per_chunk_respected(self, small_problem):
        placement = solve_random(small_problem, caches_per_chunk=2, seed=3)
        assert all(len(c.caches) <= 2 for c in placement.chunks)

    def test_zero_caches(self, small_problem):
        placement = solve_random(small_problem, caches_per_chunk=0, seed=3)
        assert all(not c.caches for c in placement.chunks)

    def test_negative_rejected(self, small_problem):
        with pytest.raises(ValueError):
            solve_random(small_problem, caches_per_chunk=-1)
