"""Hypothesis property tests: invariants every algorithm must satisfy on
arbitrary connected networks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CachingProblem, solve_approximation
from repro.baselines import (
    solve_contention,
    solve_greedy_confl,
    solve_hopcount,
    solve_random,
)
from repro.distributed import solve_distributed
from repro.graphs import erdos_renyi_connected
from repro.metrics import placement_gini, placement_percentile_fairness

SOLVERS = {
    "appx": solve_approximation,
    "dist": lambda p: solve_distributed(p).placement,
    "greedy": solve_greedy_confl,
    "hopc": solve_hopcount,
    "cont": solve_contention,
    "random": lambda p: solve_random(p, seed=0),
}


@st.composite
def problems(draw):
    num_nodes = draw(st.integers(min_value=4, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=500))
    num_chunks = draw(st.integers(min_value=0, max_value=3))
    capacity = draw(st.integers(min_value=1, max_value=3))
    graph = erdos_renyi_connected(num_nodes, 0.35, seed=seed)
    return CachingProblem(
        graph=graph, producer=0, num_chunks=num_chunks, capacity=capacity
    )


@pytest.mark.parametrize("name", sorted(SOLVERS))
@given(problem=problems())
@settings(max_examples=12, deadline=None)
def test_placement_invariants(name, problem):
    placement = SOLVERS[name](problem)
    # Feasibility: ILP constraints (4)-(7), checked structurally.
    placement.validate()
    loads = placement.loads()
    # Capacity and producer invariants.
    assert all(v <= problem.new_storage().capacity(n)
               for n, v in loads.items() if n != problem.producer)
    assert loads[problem.producer] == 0
    # Cost invariants.
    total = placement.stage_cost_total()
    assert total.access >= 0
    assert total.dissemination >= 0
    assert total.fairness >= 0
    assert placement.objective_value() >= 0
    # Metric invariants.
    assert 0.0 <= placement_gini(placement) <= 1.0
    assert 0.0 <= placement_percentile_fairness(placement) <= 1.0


@pytest.mark.parametrize("name", ["appx", "dist", "greedy"])
@given(problem=problems())
@settings(max_examples=8, deadline=None)
def test_determinism(name, problem):
    a = SOLVERS[name](problem)
    b = SOLVERS[name](problem)
    assert [c.caches for c in a.chunks] == [c.caches for c in b.chunks]
    assert a.objective_value() == b.objective_value()


@given(problem=problems())
@settings(max_examples=10, deadline=None)
def test_assignment_prefers_local_copy(problem):
    """Nearest-copy semantics: a client that caches a chunk serves itself."""
    placement = solve_approximation(problem)
    for chunk in placement.chunks:
        for client, server in chunk.assignment.items():
            if client in chunk.caches:
                assert server == client


@given(problem=problems())
@settings(max_examples=10, deadline=None)
def test_stage_fairness_zero_on_first_chunk(problem):
    """All caches are empty before chunk 0, so Eq. 1 charges nothing."""
    placement = solve_approximation(problem)
    if placement.chunks:
        assert placement.chunks[0].stage_cost.fairness == 0.0
