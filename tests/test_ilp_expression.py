"""Unit tests for the ILP expression algebra."""

import pytest

from repro.ilp import Constraint, LinExpr, Model, lin_sum
from repro.ilp.expression import EQUAL, GREATER_EQUAL, LESS_EQUAL


@pytest.fixture
def model():
    return Model("expr-tests")


@pytest.fixture
def xy(model):
    return model.continuous_var("x"), model.continuous_var("y")


class TestVariableAlgebra:
    def test_add_variables(self, xy):
        x, y = xy
        expr = x + y
        assert expr.terms[x] == 1.0
        assert expr.terms[y] == 1.0

    def test_add_constant(self, xy):
        x, _ = xy
        expr = x + 5
        assert expr.constant == 5.0

    def test_radd(self, xy):
        x, _ = xy
        expr = 5 + x
        assert expr.constant == 5.0
        assert expr.terms[x] == 1.0

    def test_subtract(self, xy):
        x, y = xy
        expr = x - y
        assert expr.terms[y] == -1.0

    def test_rsub(self, xy):
        x, _ = xy
        expr = 10 - x
        assert expr.constant == 10.0
        assert expr.terms[x] == -1.0

    def test_scalar_multiply(self, xy):
        x, _ = xy
        expr = 3 * x
        assert expr.terms[x] == 3.0
        assert (x * 3).terms[x] == 3.0

    def test_negation(self, xy):
        x, _ = xy
        assert (-x).terms[x] == -1.0

    def test_combined_expression(self, xy):
        x, y = xy
        expr = 2 * x - 3 * y + 7
        assert expr.terms[x] == 2.0
        assert expr.terms[y] == -3.0
        assert expr.constant == 7.0

    def test_coefficients_accumulate(self, xy):
        x, _ = xy
        expr = x + x + 2 * x
        assert expr.terms[x] == 4.0


class TestLinExpr:
    def test_value_evaluation(self, xy):
        x, y = xy
        expr = 2 * x + y + 1
        assert expr.value({x: 3, y: 4}) == 11.0

    def test_value_missing_vars_zero(self, xy):
        x, y = xy
        assert (x + y).value({x: 5}) == 5.0

    def test_copy_independent(self, xy):
        x, _ = xy
        a = x + 1
        b = a.copy()
        b.constant = 99
        assert a.constant == 1.0

    def test_expr_times_expr_not_allowed(self, xy):
        x, y = xy
        with pytest.raises(TypeError):
            _ = (x + 1) * (y + 1)

    def test_from_terms(self, xy):
        x, y = xy
        expr = LinExpr.from_terms([(2, x), (3, y), (4, x)])
        assert expr.terms[x] == 6.0
        assert expr.terms[y] == 3.0


class TestLinSum:
    def test_mixed_items(self, xy):
        x, y = xy
        expr = lin_sum([x, 2 * y, 5])
        assert expr.terms[x] == 1.0
        assert expr.terms[y] == 2.0
        assert expr.constant == 5.0

    def test_empty(self):
        expr = lin_sum([])
        assert expr.terms == {}
        assert expr.constant == 0.0

    def test_generator_input(self, model):
        vars_ = [model.binary_var(f"b{i}") for i in range(10)]
        expr = lin_sum(v for v in vars_)
        assert len(expr.terms) == 10

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            lin_sum(["nope"])


class TestConstraints:
    def test_le_sense(self, xy):
        x, y = xy
        c = x + y <= 3
        assert isinstance(c, Constraint)
        assert c.sense == LESS_EQUAL
        assert c.rhs == 3.0

    def test_ge_sense(self, xy):
        x, _ = xy
        c = x >= 2
        assert c.sense == GREATER_EQUAL
        assert c.rhs == 2.0

    def test_eq_sense(self, xy):
        x, y = xy
        c = x + y == 1
        assert c.sense == EQUAL
        assert c.rhs == 1.0

    def test_rhs_expression_folded(self, xy):
        x, y = xy
        c = x <= y + 2
        # normalized: x - y - 2 <= 0
        assert c.expr.terms[y] == -1.0
        assert c.rhs == 2.0

    def test_violation_satisfied(self, xy):
        x, y = xy
        c = x + y <= 3
        assert c.violation({x: 1, y: 1}) == 0.0

    def test_violation_amount(self, xy):
        x, y = xy
        c = x + y <= 3
        assert c.violation({x: 3, y: 2}) == 2.0

    def test_violation_equality(self, xy):
        x, _ = xy
        c = x == 2
        assert c.violation({x: 5}) == 3.0

    def test_bad_sense_rejected(self, xy):
        x, _ = xy
        with pytest.raises(ValueError):
            Constraint(x + 0.0, "!=")
