"""Unit tests for the pure-numpy two-phase simplex."""

import numpy as np
import pytest

from repro.ilp.simplex import (
    INFEASIBLE,
    OPTIMAL,
    UNBOUNDED,
    solve_lp,
    solve_standard_lp,
)


class TestStandardForm:
    def test_basic_optimum(self):
        # min -x1 - 2x2 s.t. x1 + x2 + s = 4
        c = np.array([-1.0, -2.0, 0.0])
        A = np.array([[1.0, 1.0, 1.0]])
        b = np.array([4.0])
        res = solve_standard_lp(c, A, b)
        assert res.is_optimal
        assert res.objective == pytest.approx(-8.0)

    def test_infeasible(self):
        # x1 = -1 with x >= 0 (after sign flip: row becomes -x1 = 1)
        c = np.array([1.0])
        A = np.array([[1.0]])
        b = np.array([-1.0])
        res = solve_standard_lp(c, A, b)
        assert res.status == INFEASIBLE

    def test_degenerate_redundant_rows(self):
        c = np.array([1.0, 1.0])
        A = np.array([[1.0, 1.0], [2.0, 2.0]])
        b = np.array([2.0, 4.0])
        res = solve_standard_lp(c, A, b)
        assert res.is_optimal
        assert res.objective == pytest.approx(2.0)

    def test_dimension_checks(self):
        with pytest.raises(ValueError):
            solve_standard_lp(np.ones(2), np.ones((1, 3)), np.ones(1))
        with pytest.raises(ValueError):
            solve_standard_lp(np.ones(3), np.ones((1, 3)), np.ones(2))


class TestGeneralForm:
    def test_matches_scipy_on_simple(self):
        from scipy.optimize import linprog

        c = [2.0, 3.0, -1.0]
        A_ub = np.array([[1, 1, 1], [2, 0, 1]], dtype=float)
        b_ub = [10.0, 8.0]
        A_eq = np.array([[1, -1, 0]], dtype=float)
        b_eq = [1.0]
        ours = solve_lp(c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq)
        ref = linprog(c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq,
                      method="highs")
        assert ours.is_optimal and ref.status == 0
        assert ours.objective == pytest.approx(ref.fun)

    def test_upper_bounds(self):
        res = solve_lp([-1.0], bounds=[(0.0, 3.0)])
        assert res.objective == pytest.approx(-3.0)

    def test_shifted_lower_bounds(self):
        res = solve_lp([1.0], bounds=[(2.0, None)])
        assert res.objective == pytest.approx(2.0)

    def test_free_variable(self):
        A_ub = np.array([[-1.0]])
        res = solve_lp([1.0], A_ub=A_ub, b_ub=[5.0], bounds=[(None, None)])
        assert res.objective == pytest.approx(-5.0)

    def test_only_upper_bound_variable(self):
        res = solve_lp([1.0], bounds=[(None, 4.0)],
                       A_ub=np.array([[-1.0]]), b_ub=[2.0])
        # minimize x with x <= 4 and -x <= 2 → x >= -2
        assert res.objective == pytest.approx(-2.0)

    def test_unbounded(self):
        res = solve_lp([-1.0], bounds=[(0.0, None)])
        assert res.status == UNBOUNDED

    def test_inconsistent_bounds_infeasible(self):
        res = solve_lp([1.0], bounds=[(3.0, 1.0)])
        assert res.status == INFEASIBLE

    def test_infeasible_constraints(self):
        A_ub = np.array([[1.0], [-1.0]])
        res = solve_lp([1.0], A_ub=A_ub, b_ub=[1.0, -3.0])
        assert res.status == INFEASIBLE

    def test_random_lps_match_scipy(self):
        from scipy.optimize import linprog

        rng = np.random.default_rng(7)
        for _ in range(15):
            n, m = 6, 4
            c = rng.uniform(-2, 2, n)
            A = rng.uniform(-1, 1, (m, n))
            b = rng.uniform(1, 4, m)
            ours = solve_lp(c, A_ub=A, b_ub=b, bounds=[(0.0, 2.0)] * n)
            ref = linprog(c, A_ub=A, b_ub=b, bounds=[(0, 2)] * n,
                          method="highs")
            assert ours.is_optimal and ref.status == 0
            assert ours.objective == pytest.approx(ref.fun, abs=1e-7)

    def test_mismatched_bounds_length(self):
        with pytest.raises(ValueError):
            solve_lp([1.0, 2.0], bounds=[(0, 1)])
