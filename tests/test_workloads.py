"""Unit tests for workload/scenario generators."""

import pytest

from repro.errors import ProblemError
from repro.workloads import (
    PAPER_NUM_CHUNKS,
    PAPER_PRODUCER,
    chunk_sweep,
    grid_problem,
    grid_sweep,
    random_problem,
    random_sweep,
)


class TestGridProblem:
    def test_paper_defaults(self):
        problem = grid_problem(6)
        assert problem.producer == PAPER_PRODUCER
        assert problem.num_chunks == PAPER_NUM_CHUNKS
        assert problem.graph.num_nodes == 36

    def test_small_grid_uses_center_producer(self):
        problem = grid_problem(3)
        assert problem.producer == 4  # node 9 absent; center instead

    def test_explicit_producer(self):
        problem = grid_problem(4, producer=0)
        assert problem.producer == 0

    def test_kwargs_pass_through(self):
        problem = grid_problem(4, fairness_weight=2.0)
        assert problem.fairness_weight == 2.0


class TestRandomProblem:
    def test_returns_positions(self):
        problem, positions = random_problem(25, seed=3)
        assert problem.graph.num_nodes == 25
        assert len(positions) == 25

    def test_seed_determinism(self):
        p1, _ = random_problem(25, seed=3)
        p2, _ = random_problem(25, seed=3)
        assert sorted(p1.graph.edges()) == sorted(p2.graph.edges())

    def test_different_seeds_differ(self):
        p1, _ = random_problem(40, seed=1)
        p2, _ = random_problem(40, seed=2)
        assert sorted(p1.graph.edges()) != sorted(p2.graph.edges())


class TestSweeps:
    def test_grid_sweep(self):
        sizes = [side for side, _ in grid_sweep([3, 4, 5])]
        assert sizes == [3, 4, 5]

    def test_random_sweep_counts(self):
        items = list(random_sweep([10, 20], runs=3))
        assert len(items) == 6
        assert {size for size, _, _ in items} == {10, 20}

    def test_random_sweep_distinct_runs(self):
        items = list(random_sweep([20], runs=2))
        edges = [sorted(p.graph.edges()) for _, _, p in items]
        assert edges[0] != edges[1]

    def test_random_sweep_needs_runs(self):
        with pytest.raises(ProblemError):
            list(random_sweep([10], runs=0))

    def test_chunk_sweep(self):
        counts = [(count, p.num_chunks) for count, p in chunk_sweep(4, [1, 5, 9])]
        assert counts == [(1, 1), (5, 5), (9, 9)]
