"""Unit tests for the request-level latency report."""

import pytest

from repro.core import solve_approximation
from repro.baselines import solve_hopcount
from repro.delay import DcfParameters, LatencyReport, latency_report, percentile
from repro.metrics import evaluate_contention
from repro.workloads import grid_problem


@pytest.fixture(scope="module")
def placement():
    return solve_approximation(grid_problem(4, num_chunks=3))


class TestReportStats:
    def test_fetch_count(self, placement):
        report = latency_report(placement)
        clients = len(placement.problem.clients)
        assert report.count == clients * 3

    def test_all_latencies_nonnegative(self, placement):
        report = latency_report(placement)
        assert all(lat >= 0 for lat in report.fetch_latencies)

    def test_self_service_is_free(self, placement):
        report = latency_report(placement)
        # at least one client caches a chunk itself => zero-latency fetches
        assert min(report.fetch_latencies) == 0.0

    def test_mean_median_max_consistent(self, placement):
        report = latency_report(placement)
        assert 0 <= report.median <= report.maximum
        assert 0 <= report.mean <= report.maximum

    def test_percentiles_monotone(self, placement):
        report = latency_report(placement)
        values = [report.percentile(p) for p in (0, 25, 50, 75, 95, 100)]
        assert values == sorted(values)
        assert report.percentile(100) == report.maximum

    def test_invalid_percentile(self, placement):
        report = latency_report(placement)
        with pytest.raises(ValueError):
            report.percentile(101)

    def test_worst_chunk_completion(self, placement):
        report = latency_report(placement)
        assert report.worst_chunk_completion() == max(
            report.per_chunk_completion.values()
        )
        assert set(report.per_chunk_completion) == {0, 1, 2}

    def test_empty_report(self):
        report = LatencyReport(fetch_latencies=(), per_chunk_completion={})
        assert report.mean == 0.0
        assert report.maximum == 0.0
        assert report.percentile(50) == 0.0
        assert report.worst_chunk_completion() == 0.0


class TestModelBehavior:
    def test_faster_radio_lower_latency(self, placement):
        slow = latency_report(placement, DcfParameters())
        fast = latency_report(
            placement, DcfParameters(chunk_transmission=0.073,
                                     collision_duration=0.073)
        )
        assert fast.mean < slow.mean

    def test_ranking_agrees_with_contention(self):
        """The paper's core modelling claim: optimizing contention cost
        orders algorithms the same way modelled latency does."""
        problem = grid_problem(6)
        appx = solve_approximation(problem)
        hopc = solve_hopcount(problem)
        assert (
            evaluate_contention(appx).access
            < evaluate_contention(hopc).access
        )
        assert latency_report(appx).mean < latency_report(hopc).mean

    def test_reassign_roughly_not_worse(self, placement):
        # "Nearest" minimizes the *linear* contention cost, while the full
        # DCF model adds a quadratic collision term — so nearest-copy can
        # lose individual fetches, but not by much in aggregate.
        nearest = latency_report(placement, reassign=True)
        recorded = latency_report(placement, reassign=False)
        assert nearest.mean <= 1.1 * recorded.mean + 1e-9


class TestPercentileFunction:
    """Edge cases of the shared interpolated percentile."""

    def test_p0_is_min_and_p100_is_max(self):
        values = [5.0, 1.0, 9.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_single_sample_every_percentile(self):
        for p in (0, 1, 50, 99, 100):
            assert percentile([4.2], p) == 4.2

    def test_empty_input_is_zero(self):
        assert percentile([], 50) == 0.0
        assert percentile((), 0) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)

    def test_linear_interpolation(self):
        # rank (p/100)*(n-1): p=25 over [0,10] -> 2.5
        assert percentile([0.0, 10.0], 25) == 2.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_input_order_irrelevant(self):
        assert percentile([3.0, 1.0, 2.0], 50) == percentile(
            [1.0, 2.0, 3.0], 50
        )

    def test_accepts_any_iterable(self):
        assert percentile(iter([2.0, 1.0]), 100) == 2.0

    def test_report_method_delegates(self):
        report = LatencyReport(
            fetch_latencies=(1.0, 2.0, 3.0), per_chunk_completion={}
        )
        assert report.percentile(50) == percentile([1.0, 2.0, 3.0], 50)
