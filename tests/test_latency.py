"""Unit tests for the request-level latency report."""

import pytest

from repro.core import solve_approximation
from repro.baselines import solve_hopcount
from repro.delay import DcfParameters, LatencyReport, latency_report
from repro.metrics import evaluate_contention
from repro.workloads import grid_problem


@pytest.fixture(scope="module")
def placement():
    return solve_approximation(grid_problem(4, num_chunks=3))


class TestReportStats:
    def test_fetch_count(self, placement):
        report = latency_report(placement)
        clients = len(placement.problem.clients)
        assert report.count == clients * 3

    def test_all_latencies_nonnegative(self, placement):
        report = latency_report(placement)
        assert all(lat >= 0 for lat in report.fetch_latencies)

    def test_self_service_is_free(self, placement):
        report = latency_report(placement)
        # at least one client caches a chunk itself => zero-latency fetches
        assert min(report.fetch_latencies) == 0.0

    def test_mean_median_max_consistent(self, placement):
        report = latency_report(placement)
        assert 0 <= report.median <= report.maximum
        assert 0 <= report.mean <= report.maximum

    def test_percentiles_monotone(self, placement):
        report = latency_report(placement)
        values = [report.percentile(p) for p in (0, 25, 50, 75, 95, 100)]
        assert values == sorted(values)
        assert report.percentile(100) == report.maximum

    def test_invalid_percentile(self, placement):
        report = latency_report(placement)
        with pytest.raises(ValueError):
            report.percentile(101)

    def test_worst_chunk_completion(self, placement):
        report = latency_report(placement)
        assert report.worst_chunk_completion() == max(
            report.per_chunk_completion.values()
        )
        assert set(report.per_chunk_completion) == {0, 1, 2}

    def test_empty_report(self):
        report = LatencyReport(fetch_latencies=(), per_chunk_completion={})
        assert report.mean == 0.0
        assert report.maximum == 0.0
        assert report.percentile(50) == 0.0
        assert report.worst_chunk_completion() == 0.0


class TestModelBehavior:
    def test_faster_radio_lower_latency(self, placement):
        slow = latency_report(placement, DcfParameters())
        fast = latency_report(
            placement, DcfParameters(chunk_transmission=0.073,
                                     collision_duration=0.073)
        )
        assert fast.mean < slow.mean

    def test_ranking_agrees_with_contention(self):
        """The paper's core modelling claim: optimizing contention cost
        orders algorithms the same way modelled latency does."""
        problem = grid_problem(6)
        appx = solve_approximation(problem)
        hopc = solve_hopcount(problem)
        assert (
            evaluate_contention(appx).access
            < evaluate_contention(hopc).access
        )
        assert latency_report(appx).mean < latency_report(hopc).mean

    def test_reassign_roughly_not_worse(self, placement):
        # "Nearest" minimizes the *linear* contention cost, while the full
        # DCF model adds a quadratic collision term — so nearest-copy can
        # lose individual fetches, but not by much in aggregate.
        nearest = latency_report(placement, reassign=True)
        recorded = latency_report(placement, reassign=False)
        assert nearest.mean <= 1.1 * recorded.mean + 1e-9
