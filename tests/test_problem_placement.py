"""Unit tests for CachingProblem, ProblemState and CachePlacement."""

import pytest

from repro.core import (
    CachePlacement,
    CachingProblem,
    ChunkPlacement,
    StageCost,
    edge_key,
)
from repro.errors import ProblemError
from repro.graphs import Graph, grid_graph
from repro.workloads import grid_problem


class TestCachingProblem:
    def test_defaults(self, paper_problem):
        assert paper_problem.producer == 9
        assert paper_problem.num_chunks == 5
        assert list(paper_problem.chunks) == [0, 1, 2, 3, 4]

    def test_clients_exclude_producer(self, paper_problem):
        clients = paper_problem.clients
        assert 9 not in clients
        assert len(clients) == 35

    def test_producer_must_exist(self):
        with pytest.raises(ProblemError):
            CachingProblem(graph=grid_graph(3), producer=42, num_chunks=1)

    def test_disconnected_graph_rejected(self):
        g = Graph([(0, 1), (2, 3)])
        with pytest.raises(ProblemError):
            CachingProblem(graph=g, producer=0, num_chunks=1)

    def test_negative_chunks_rejected(self):
        with pytest.raises(ProblemError):
            CachingProblem(graph=grid_graph(3), producer=0, num_chunks=-1)

    def test_negative_weights_rejected(self):
        with pytest.raises(ProblemError):
            CachingProblem(
                graph=grid_graph(3), producer=0, num_chunks=1,
                fairness_weight=-1,
            )

    def test_total_capacity_excludes_producer(self, paper_problem):
        assert paper_problem.total_capacity() == 35 * 5

    def test_new_storage_fresh(self, paper_problem):
        s1 = paper_problem.new_storage()
        s1.add(0, 0)
        s2 = paper_problem.new_storage()
        assert s2.used(0) == 0


class TestProblemState:
    def test_cache_updates_costs(self, small_problem):
        state = small_problem.new_state()
        before = state.costs.contention_cost(0, 2)
        state.cache(1, 0)
        assert state.storage.used(1) == 1
        assert state.costs.contention_cost(0, 2) > before

    def test_evict_restores(self, small_problem):
        state = small_problem.new_state()
        before = state.costs.contention_cost(0, 2)
        state.cache(1, 0)
        state.evict(1, 0)
        assert state.costs.contention_cost(0, 2) == before


class TestStageCost:
    def test_total(self):
        cost = StageCost(1.0, 2.0, 3.0)
        assert cost.total == 6.0

    def test_weighted_total(self):
        cost = StageCost(fairness=1.0, access=2.0, dissemination=3.0)
        assert cost.weighted_total(2.0, 1.0, 1.0) == 7.0
        assert cost.weighted_total(1.0, 1.0, 2.0) == 9.0

    def test_addition(self):
        total = StageCost(1, 2, 3) + StageCost(4, 5, 6)
        assert (total.fairness, total.access, total.dissemination) == (5, 7, 9)

    def test_zero(self):
        assert StageCost.zero().total == 0.0


class TestEdgeKey:
    def test_symmetric(self):
        assert edge_key(1, 2) == edge_key(2, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(ProblemError):
            edge_key(1, 1)


def _manual_placement(problem, caches_by_chunk):
    """Build a placement with nearest-producer assignments by hand."""
    chunks = []
    for chunk, caches in enumerate(caches_by_chunk):
        assignment = {
            j: (caches[0] if caches else problem.producer)
            for j in problem.clients
        }
        # connect caches to producer along a row path for validity
        edges = set()
        for cache in caches:
            path = _grid_path(problem, cache)
            for u, v in zip(path, path[1:]):
                edges.add(edge_key(u, v))
        chunks.append(
            ChunkPlacement(
                chunk=chunk,
                caches=frozenset(caches),
                assignment=assignment,
                tree_edges=frozenset(edges),
            )
        )
    return CachePlacement(problem=problem, chunks=chunks)


def _grid_path(problem, target):
    from repro.graphs import bfs_shortest_path

    return bfs_shortest_path(problem.graph, problem.producer, target)


class TestPlacementValidation:
    def test_valid_placement_passes(self, small_problem):
        placement = _manual_placement(small_problem, [[1], [2], [5]])
        placement.validate()

    def test_wrong_chunk_count_rejected(self, small_problem):
        placement = _manual_placement(small_problem, [[1]])
        with pytest.raises(ProblemError):
            placement.validate()

    def test_unserved_client_rejected(self, small_problem):
        placement = _manual_placement(small_problem, [[1], [2], [5]])
        del placement.chunks[0].assignment[small_problem.clients[0]]
        with pytest.raises(ProblemError):
            placement.validate()

    def test_server_without_cache_rejected(self, small_problem):
        placement = _manual_placement(small_problem, [[1], [2], [5]])
        client = small_problem.clients[0]
        placement.chunks[0].assignment[client] = 14  # does not cache chunk 0
        with pytest.raises(ProblemError):
            placement.validate()

    def test_capacity_overflow_rejected(self):
        problem = grid_problem(4, num_chunks=3, capacity=1)
        placement = _manual_placement(problem, [[1], [1], [1]])
        with pytest.raises(Exception):
            placement.validate()

    def test_disconnected_tree_rejected(self, small_problem):
        placement = _manual_placement(small_problem, [[15], [2], [5]])
        broken = ChunkPlacement(
            chunk=0,
            caches=placement.chunks[0].caches,
            assignment=placement.chunks[0].assignment,
            tree_edges=frozenset(),  # no dissemination edges at all
        )
        placement.chunks[0] = broken
        with pytest.raises(ProblemError):
            placement.validate()

    def test_non_network_edge_rejected(self, small_problem):
        placement = _manual_placement(small_problem, [[1], [2], [5]])
        bad = ChunkPlacement(
            chunk=0,
            caches=placement.chunks[0].caches,
            assignment=placement.chunks[0].assignment,
            tree_edges=frozenset({edge_key(0, 15)}),
        )
        placement.chunks[0] = bad
        with pytest.raises(ProblemError):
            placement.validate()


class TestPlacementViews:
    def test_loads(self, small_problem):
        placement = _manual_placement(small_problem, [[1], [1], [5]])
        loads = placement.loads()
        assert loads[1] == 2
        assert loads[5] == 1
        assert loads[0] == 0

    def test_holders(self, small_problem):
        placement = _manual_placement(small_problem, [[1, 2], [2], [5]])
        assert placement.holders(0) == frozenset({1, 2})

    def test_total_copies(self, small_problem):
        placement = _manual_placement(small_problem, [[1, 2], [2], [5]])
        assert placement.total_copies() == 4

    def test_final_storage(self, small_problem):
        placement = _manual_placement(small_problem, [[1], [1], [5]])
        storage = placement.final_storage()
        assert storage.used(1) == 2
        assert storage.chunks_at(5) == {2}

    def test_objective_uses_weights(self):
        problem = grid_problem(4, num_chunks=1, fairness_weight=2.0)
        chunk = ChunkPlacement(
            chunk=0, caches=frozenset(), assignment={
                j: problem.producer for j in problem.clients
            },
            tree_edges=frozenset(),
            stage_cost=StageCost(fairness=3.0, access=10.0, dissemination=0.0),
        )
        placement = CachePlacement(problem=problem, chunks=[chunk])
        assert placement.objective_value() == 2.0 * 3.0 + 10.0
