"""Unit tests for Model construction and solving (both backends)."""

import pytest

from repro.errors import InfeasibleError, ModelError, UnboundedError
from repro.ilp import MAXIMIZE, MINIMIZE, Model, lin_sum

BACKENDS = ["highs", "bnb"]


class TestConstruction:
    def test_variable_kinds(self):
        m = Model()
        x = m.continuous_var("x")
        y = m.integer_var("y", lower=0, upper=10)
        z = m.binary_var("z")
        assert not x.is_integral
        assert y.is_integral
        assert z.domain == "binary"
        assert z.lower == 0.0 and z.upper == 1.0

    def test_duplicate_names_rejected(self):
        m = Model()
        m.binary_var("x")
        with pytest.raises(ModelError):
            m.binary_var("x")

    def test_auto_names(self):
        m = Model()
        a = m.continuous_var()
        b = m.continuous_var()
        assert a.name != b.name

    def test_bad_bounds_rejected(self):
        m = Model()
        with pytest.raises(ModelError):
            m.integer_var("x", lower=5, upper=1)

    def test_bad_sense_rejected(self):
        with pytest.raises(ModelError):
            Model(sense="sideways")

    def test_add_constraint_requires_constraint(self):
        m = Model()
        x = m.binary_var("x")
        with pytest.raises(ModelError):
            m.add_constraint(True)  # comparison already evaluated

    def test_variable_by_name(self):
        m = Model()
        x = m.binary_var("picky")
        assert m.variable_by_name("picky") is x

    def test_foreign_variable_rejected(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.binary_var("x")
        m2.set_objective(x + 0.0)
        with pytest.raises(ModelError):
            m2.to_matrix_form()

    def test_counts(self):
        m = Model()
        x = m.binary_var()
        y = m.binary_var()
        m.add_constraint(x + y <= 1)
        assert m.num_variables == 2
        assert m.num_constraints == 1


@pytest.mark.parametrize("backend", BACKENDS)
class TestSolving:
    def test_simple_lp(self, backend):
        m = Model()
        x = m.continuous_var("x", upper=4)
        y = m.continuous_var("y", upper=3)
        m.add_constraint(x + y <= 5)
        m.set_objective(-(x + 2 * y))  # maximize x + 2y via minimize
        sol = m.solve(backend=backend)
        assert sol.objective == pytest.approx(-8.0)

    def test_maximize_sense(self, backend):
        m = Model(sense=MAXIMIZE)
        x = m.continuous_var("x", upper=10)
        m.set_objective(3 * x + 1)
        sol = m.solve(backend=backend)
        assert sol.objective == pytest.approx(31.0)
        assert sol.value(x) == pytest.approx(10.0)

    def test_knapsack(self, backend):
        m = Model(sense=MAXIMIZE)
        values = [6, 10, 12]
        weights = [1, 2, 3]
        x = [m.binary_var(f"x{i}") for i in range(3)]
        m.add_constraint(lin_sum(w * xi for w, xi in zip(weights, x)) <= 5)
        m.set_objective(lin_sum(v * xi for v, xi in zip(values, x)))
        sol = m.solve(backend=backend)
        assert sol.objective == pytest.approx(22.0)
        assert sol.value(x[1]) == 1.0 and sol.value(x[2]) == 1.0

    def test_integer_rounding(self, backend):
        m = Model()
        n = m.integer_var("n", lower=0, upper=10)
        m.add_constraint(2 * n >= 7)
        m.set_objective(n + 0.0)
        sol = m.solve(backend=backend)
        assert sol.value(n) == 4.0

    def test_infeasible_raises(self, backend):
        m = Model()
        x = m.binary_var("x")
        m.add_constraint(x >= 2)
        m.set_objective(x + 0.0)
        with pytest.raises(InfeasibleError):
            m.solve(backend=backend)

    def test_unbounded_raises(self, backend):
        m = Model(sense=MAXIMIZE)
        x = m.continuous_var("x")  # lb 0, no ub
        m.set_objective(x + 0.0)
        with pytest.raises(UnboundedError):
            m.solve(backend=backend)

    def test_equality_constraints(self, backend):
        m = Model()
        x = m.continuous_var("x")
        y = m.continuous_var("y")
        m.add_constraint(x + y == 4)
        m.add_constraint(x - y == 2)
        m.set_objective(x + y)
        sol = m.solve(backend=backend)
        assert sol.value(x) == pytest.approx(3.0)
        assert sol.value(y) == pytest.approx(1.0)

    def test_solution_expression_value(self, backend):
        m = Model()
        x = m.binary_var("x")
        m.add_constraint(x >= 1)
        m.set_objective(x + 0.0)
        sol = m.solve(backend=backend)
        assert sol.value(2 * x + 1) == pytest.approx(3.0)
        assert sol[x] == 1.0

    def test_objective_constant_only(self, backend):
        m = Model()
        x = m.binary_var("x")
        m.add_constraint(x <= 1)
        m.set_objective(42)
        sol = m.solve(backend=backend)
        assert sol.objective == pytest.approx(42.0)

    def test_free_variable(self, backend):
        m = Model()
        x = m.continuous_var("x", lower=None)
        m.add_constraint(x >= -5)
        m.set_objective(x + 0.0)
        sol = m.solve(backend=backend)
        assert sol.objective == pytest.approx(-5.0)


class TestBackendSelection:
    def test_auto_backend_solves(self):
        m = Model()
        x = m.binary_var("x")
        m.set_objective(x + 0.0)
        assert m.solve(backend="auto").status == "optimal"

    def test_unknown_backend_rejected(self):
        m = Model()
        x = m.binary_var("x")
        m.set_objective(x + 0.0)
        with pytest.raises(ModelError):
            m.solve(backend="gurobi")

    def test_bnb_with_simplex_engine(self):
        m = Model(sense=MAXIMIZE)
        x = [m.binary_var(f"x{i}") for i in range(4)]
        m.add_constraint(lin_sum(x) <= 2)
        m.set_objective(lin_sum((i + 1) * xi for i, xi in enumerate(x)))
        sol = m.solve(backend="bnb", lp_engine="simplex")
        assert sol.objective == pytest.approx(7.0)
