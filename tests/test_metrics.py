"""Unit tests for fairness and contention metrics."""

import pytest

from repro.core import solve_approximation
from repro.baselines import solve_hopcount
from repro.metrics import (
    evaluate_contention,
    gini_coefficient,
    jains_index,
    load_concentration_curve,
    percentile_fairness,
    placement_gini,
    placement_loads,
    placement_percentile_fairness,
    total_contention_cost,
)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([3, 3, 3, 3]) == pytest.approx(0.0)

    def test_single_hoarder_near_one(self):
        g = gini_coefficient([10] + [0] * 9)
        assert g == pytest.approx(0.9)

    def test_empty_and_zero(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0, 0]) == 0.0

    def test_known_value(self):
        # loads [1, 3]: sum |ti - tj| over ordered pairs = 4; 2*n*sum = 16
        assert gini_coefficient([1, 3]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        a = gini_coefficient([1, 2, 3, 4])
        b = gini_coefficient([10, 20, 30, 40])
        assert a == pytest.approx(b)

    def test_order_invariant(self):
        assert gini_coefficient([5, 1, 3]) == pytest.approx(
            gini_coefficient([1, 3, 5])
        )

    def test_matches_naive_formula(self):
        loads = [0, 1, 1, 2, 5, 3]
        n = len(loads)
        naive = sum(abs(a - b) for a in loads for b in loads) / (
            2 * n * sum(loads)
        )
        assert gini_coefficient(loads) == pytest.approx(naive)


class TestPercentileFairness:
    def test_uniform_equals_p(self):
        assert percentile_fairness([2, 2, 2, 2], 0.75) == pytest.approx(0.75)

    def test_concentrated_small(self):
        # one node holds everything: p% of data needs p% of ... 1 node
        value = percentile_fairness([10, 0, 0, 0], 0.5)
        assert value == pytest.approx(0.5 / 4)

    def test_paper_hopc_value(self):
        # Hopc on 6x6: 2 nodes with 5 chunks each, 33 empty nodes.
        loads = [5, 5] + [0] * 33
        value = percentile_fairness(loads, 0.75)
        assert 100 * value == pytest.approx(4.29, abs=0.05)  # paper: 4.28%

    def test_zero_p(self):
        assert percentile_fairness([1, 2], 0.0) == 0.0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            percentile_fairness([1], 1.5)

    def test_empty_loads(self):
        assert percentile_fairness([], 0.5) == 0.0

    def test_full_ratio_uses_loaded_nodes_only(self):
        value = percentile_fairness([4, 4, 0, 0], 1.0)
        assert value == pytest.approx(0.5)


class TestConcentrationCurve:
    def test_monotone_to_one(self):
        curve = load_concentration_curve([3, 1, 2, 0])
        assert curve == sorted(curve)
        assert curve[-1] == pytest.approx(1.0)

    def test_most_loaded_first(self):
        curve = load_concentration_curve([1, 9])
        assert curve[0] == pytest.approx(0.9)

    def test_empty(self):
        assert load_concentration_curve([]) == []

    def test_zero_loads(self):
        assert load_concentration_curve([0, 0]) == [0.0, 0.0]


class TestJains:
    def test_uniform_is_one(self):
        assert jains_index([2, 2, 2]) == pytest.approx(1.0)

    def test_concentrated_is_1_over_n(self):
        assert jains_index([9, 0, 0]) == pytest.approx(1 / 3)

    def test_empty_and_zero(self):
        assert jains_index([]) == 1.0
        assert jains_index([0, 0]) == 1.0


class TestPlacementMetrics:
    def test_loads_exclude_producer(self, small_problem):
        placement = solve_approximation(small_problem)
        loads = placement_loads(placement)
        assert len(loads) == len(small_problem.clients)

    def test_include_producer_flag(self, small_problem):
        placement = solve_approximation(small_problem)
        loads = placement_loads(placement, include_producer=True)
        assert len(loads) == small_problem.graph.num_nodes

    def test_appx_fairer_than_hopc(self, paper_problem):
        appx = solve_approximation(paper_problem)
        hopc = solve_hopcount(paper_problem)
        assert placement_gini(appx) < placement_gini(hopc)
        assert placement_percentile_fairness(
            appx
        ) > placement_percentile_fairness(hopc)


class TestContentionEvaluation:
    def test_report_totals(self, small_problem):
        placement = solve_approximation(small_problem)
        report = evaluate_contention(placement)
        assert report.total == pytest.approx(
            report.access + report.dissemination
        )
        assert report.total == pytest.approx(total_contention_cost(placement))

    def test_per_chunk_sums(self, small_problem):
        placement = solve_approximation(small_problem)
        report = evaluate_contention(placement)
        assert sum(report.per_chunk_access.values()) == pytest.approx(
            report.access
        )
        assert sum(report.per_chunk_dissemination.values()) == pytest.approx(
            report.dissemination
        )
        per_chunk = report.per_chunk_total()
        assert sum(per_chunk.values()) == pytest.approx(report.total)

    def test_reassign_never_worse(self, small_problem):
        placement = solve_approximation(small_problem)
        nearest = evaluate_contention(placement, reassign=True)
        recorded = evaluate_contention(placement, reassign=False)
        assert nearest.access <= recorded.access + 1e-9

    def test_final_state_pricing(self, small_problem):
        """Final-state costs exceed first-chunk stage costs: storage filled."""
        placement = solve_approximation(small_problem)
        report = evaluate_contention(placement)
        first_stage = placement.chunks[0].stage_cost.access
        assert report.per_chunk_access[0] >= first_stage - 1e-9
