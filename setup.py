"""Setup shim so `pip install -e .` works offline (no wheel package available)."""
from setuptools import setup

setup()
