#!/usr/bin/env python3
"""Trace the distributed protocol (Algorithm 2) on a small edge network.

Runs the message-passing algorithm on a 4x4 grid and prints what a
network observer would see: the Table II message mix, bidding rounds per
chunk, who promoted themselves to ADMIN, and how the hop limit k changes
the outcome (the Fig. 3 experiment in miniature).

Run:  python examples/distributed_protocol_trace.py
"""

from repro import DistributedConfig, grid_problem, solve_distributed
from repro.distributed import ALL_TYPES
from repro.metrics import evaluate_contention


def main() -> None:
    problem = grid_problem(4, num_chunks=3)
    print(f"network: 4x4 grid, producer {problem.producer}, "
          f"{problem.num_chunks} chunks\n")

    outcome = solve_distributed(problem, DistributedConfig(hop_limit=2))
    outcome.placement.validate()

    print("per-chunk protocol outcome (k = 2):")
    for chunk, ticks in zip(outcome.placement.chunks, outcome.ticks_per_chunk):
        print(f"  chunk {chunk.chunk}: {ticks:3d} bidding rounds -> "
              f"ADMINs {sorted(chunk.caches)}")

    print("\nmessage mix (Table II):")
    stats = outcome.stats
    width = max(len(t) for t in ALL_TYPES)
    for msg_type in ALL_TYPES:
        print(f"  {msg_type:<{width}}  {stats.messages[msg_type]:5d} messages"
              f"  ({stats.transmissions[msg_type]:5d} hop-transmissions)")
    n = problem.graph.num_nodes
    bound = problem.num_chunks * n + n * n
    print(f"  total {stats.total_messages()} messages; "
          f"O(QN + N^2) scale = {bound} -> ratio "
          f"{stats.total_messages() / bound:.2f}")

    print("\nhop-limit sweep (Fig. 3 in miniature, span threshold 4):")
    for k in (1, 2, 3):
        config = DistributedConfig(hop_limit=k, span_threshold=4)
        sweep = solve_distributed(problem, config)
        report = evaluate_contention(sweep.placement)
        copies = sweep.placement.total_copies()
        print(f"  k={k}: {copies:2d} cached copies, "
              f"access contention {report.access:7,.0f}, "
              f"total {report.total:7,.0f}")
    print("\nk=1 starves candidates of SPAN supporters -> few caches and "
          "costly access;\nk>=2 plateaus, which is why the paper fixes "
          "k=2 to bound message overhead.")


if __name__ == "__main__":
    main()
