#!/usr/bin/env python3
"""Vehicular scenario: heterogeneous roadside/vehicle caching on a street grid.

Connected vehicles and roadside cameras on a downtown street grid share
map tiles and hazard-camera footage (Sec. I lists both as edge devices).
Unlike the homogeneous evaluation setup, devices here donate *different*
amounts of storage: parked cars and roadside units are generous, moving
cars offer little — exactly the situation the Fairness Degree Cost
(Eq. 1) is built for, since f_i = S/(S_tot - S) rises fastest on the
small donors.

The example shows that the fair algorithm automatically shifts load onto
the big donors *without being told to*, and translates contention costs
into estimated 802.11 retrieval latency via the DCF model (Sec. III-C).

Run:  python examples/vehicular_roadside.py
"""

from repro import (
    CachingProblem,
    evaluate_contention,
    gini_coefficient,
    solve_approximation,
    solve_contention,
)
from repro.delay import DcfParameters, contention_cost_to_delay
from repro.graphs import grid_graph

SIDE = 5  # 5x5 street-corner grid
NUM_CHUNKS = 8  # map tiles + camera clips


def donated_storage(node: int) -> int:
    """Roadside units (grid corners + center) donate 8 slots, parked cars
    (even nodes) 4, moving cars (the rest) just 1."""
    corners = {0, SIDE - 1, SIDE * (SIDE - 1), SIDE * SIDE - 1}
    center = (SIDE // 2) * SIDE + SIDE // 2
    if node in corners or node == center:
        return 8
    if node % 2 == 0:
        return 4
    return 1


def main() -> None:
    graph = grid_graph(SIDE)
    producer = 2  # an uplinked roadside unit mid-block
    capacity = {node: donated_storage(node) for node in graph.nodes()}
    problem = CachingProblem(
        graph=graph,
        producer=producer,
        num_chunks=NUM_CHUNKS,
        capacity=capacity,
    )
    big = sorted(n for n in graph.nodes() if capacity[n] >= 8)
    small = sorted(n for n in graph.nodes() if capacity[n] == 1)
    print(f"street grid: {SIDE}x{SIDE}, producer RSU at node {producer}")
    print(f"roadside units (8 slots): {big}")
    print(f"moving cars (1 slot):     {small}\n")

    for label, solver in (
        ("fair approximation", solve_approximation),
        ("contention baseline [4]", solve_contention),
    ):
        placement = solver(problem)
        placement.validate()
        loads = placement.loads()
        on_small = sum(loads[n] for n in small)
        on_big = sum(loads[n] for n in big)
        report = evaluate_contention(placement)
        # Translate the access contention into estimated 802.11 latency.
        params = DcfParameters()
        hops = sum(len(c.assignment) for c in placement.chunks)
        latency = contention_cost_to_delay(report.access, hops, params)
        per_fetch = latency / max(1, hops)
        # Fairness relative to what each device DONATED: Gini of the
        # fraction of donated storage actually consumed.
        utilization = [
            loads[n] / capacity[n]
            for n in graph.nodes()
            if n != producer and capacity[n] > 0
        ]
        print(f"== {label} ==")
        print(f"  chunks on 1-slot cars      : {on_small} "
              f"(of {placement.total_copies()} copies)")
        print(f"  chunks on roadside units   : {on_big}")
        print(f"  Gini of storage burden     : "
              f"{gini_coefficient(utilization):.3f} "
              "(share of donation consumed)")
        print(f"  total contention           : {report.total:,.0f}")
        print(f"  est. mean fetch latency    : {per_fetch * 1e3:,.0f} ms "
              "(802.11b DCF model)")
        print()

    print("the baseline fills every 1-slot car to 100% of its donation and "
          "never touches\nthe roadside units; the fair placement spreads the "
          "burden -- Eq. 1 makes a\nnearly-full small donor prohibitively "
          "'expensive' to pick again.")


if __name__ == "__main__":
    main()
