#!/usr/bin/env python3
"""Quickstart: fair caching on the paper's 6x6 grid.

Builds the default scenario of the evaluation (Sec. V-A): a 6x6 grid
network, node 9 producing 5 equal-size data chunks that every node wants,
5 chunks of cache storage per node.  Runs the approximation algorithm
(Algorithm 1), validates the placement, and prints where each chunk
landed along with cost and fairness metrics.

Run:  python examples/quickstart.py
"""

from repro import (
    evaluate_contention,
    grid_problem,
    placement_gini,
    placement_percentile_fairness,
    solve_approximation,
)


def main() -> None:
    problem = grid_problem(6)  # 6x6 grid, producer node 9, 5 chunks
    print(f"network: {problem.graph.num_nodes} nodes, "
          f"{problem.graph.num_edges} links; producer = {problem.producer}")

    placement = solve_approximation(problem)
    placement.validate()  # checks ILP constraints (4)-(7)

    print("\ncache placement (ADMIN sets):")
    for chunk in placement.chunks:
        print(f"  chunk {chunk.chunk}: nodes {sorted(chunk.caches)}")

    report = evaluate_contention(placement)
    print("\ncontention cost (accessing + dissemination phases):")
    print(f"  accessing     = {report.access:,.0f}")
    print(f"  dissemination = {report.dissemination:,.0f}")
    print(f"  total         = {report.total:,.0f}")

    print("\nfairness:")
    loads = placement.loads()
    used = {n: c for n, c in sorted(loads.items()) if c}
    print(f"  {len(used)} of {len(problem.clients)} nodes cache something")
    print(f"  max per-node load      = {max(loads.values())} chunks")
    print(f"  Gini coefficient       = {placement_gini(placement):.3f}")
    print(f"  75-percentile fairness = "
          f"{100 * placement_percentile_fairness(placement):.1f}% "
          f"(ideal: 75%)")


if __name__ == "__main__":
    main()
