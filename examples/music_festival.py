#!/usr/bin/env python3
"""Music-festival scenario: peer photo sharing among attendees' phones.

The paper's motivating example (Sec. I): at a large outdoor event,
smartphones capture photos and video clips that everyone nearby wants.
Caching copies on willing peer devices makes the content fast and robust
to fetch — but since every phone belongs to a different person, no one
should be stuck hosting everything.

This example builds a random geometric network of phones on the festival
ground, publishes several multi-chunk data items over time (a headline
video, a crowd photo set, a food-stand queue map), and compares the fair
algorithms against the classic baselines on exactly the question the
paper asks: who ends up storing the data, and what does retrieval cost?

Run:  python examples/music_festival.py
"""

from repro import (
    CachingProblem,
    evaluate_contention,
    placement_gini,
    placement_percentile_fairness,
    solve_approximation,
    solve_contention,
    solve_hopcount,
)
from repro.graphs import connected_random_network

ATTENDEES = 60
PHONE_STORAGE = 4  # chunks each person donates

#: Data items published during the afternoon: (name, chunks)
DATA_ITEMS = [
    ("headline-set video", 4),
    ("crowd photo collage", 3),
    ("food-stand queue map", 2),
    ("fireworks teaser clip", 3),
]


def main() -> None:
    graph, _ = connected_random_network(ATTENDEES, seed=42)
    producer = 0  # the festival's media booth uplinks the originals
    total_chunks = sum(chunks for _, chunks in DATA_ITEMS)
    print(f"festival ground: {ATTENDEES} phones, "
          f"{graph.num_edges} radio links")
    print(f"publishing {len(DATA_ITEMS)} data items "
          f"({total_chunks} chunks total), {PHONE_STORAGE} chunk slots per "
          "phone\n")

    problem = CachingProblem(
        graph=graph,
        producer=producer,
        num_chunks=total_chunks,
        capacity=PHONE_STORAGE,
    )

    algorithms = [
        ("fair approximation (this paper)", solve_approximation),
        ("hop-count caching [13]", solve_hopcount),
        ("contention caching [4]", solve_contention),
    ]
    for label, solver in algorithms:
        placement = solver(problem)
        placement.validate()
        report = evaluate_contention(placement)
        loads = [v for v in placement.loads().values() if v > 0]
        print(f"== {label} ==")
        print(f"  phones hosting data : {len(loads)} / {ATTENDEES}")
        print(f"  heaviest phone load : {max(loads)} chunks "
              f"(of {PHONE_STORAGE} donated)")
        print(f"  Gini coefficient    : {placement_gini(placement):.3f}")
        print(f"  p75 fairness        : "
              f"{100 * placement_percentile_fairness(placement):.1f}%")
        print(f"  retrieval contention: {report.total:,.0f}")
        print()

    # Per-item view under the fair placement: chunk ids per item.
    placement = solve_approximation(problem)
    report = evaluate_contention(placement)
    per_chunk = report.per_chunk_total()
    print("per-item retrieval contention under the fair placement:")
    next_chunk = 0
    for name, chunks in DATA_ITEMS:
        ids = range(next_chunk, next_chunk + chunks)
        cost = sum(per_chunk[c] for c in ids)
        hosts = sorted({n for c in ids for n in placement.holders(c)})
        print(f"  {name:<24} {chunks} chunks, cost {cost:7,.0f}, "
              f"{len(hosts)} hosting phones")
        next_chunk += chunks
    print("\n(an item is complete only when its slowest chunk arrives — "
          "even per-chunk costs mean predictable downloads; cf. Fig. 9)")


if __name__ == "__main__":
    main()
