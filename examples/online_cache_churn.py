#!/usr/bin/env python3
"""Online caching under churn: chunks arrive, age out, and get replaced.

The paper's conclusion defers "cache replacement" and "online distributed
solutions" to future work (Sec. VI).  This example drives the repo's
online extension through a day of edge-network churn: sensing chunks are
published over time, live for a while, and expire; when the network
saturates, a replacement policy frees slots.

It prints the fairness trajectory (Gini over time) and compares
replacement policies on how many fresh chunks they managed to cache.

Run:  python examples/online_cache_churn.py
"""

from repro.core import ApproximationConfig, DualAscentConfig
from repro.online import (
    MostReplicated,
    NeverEvict,
    OldestFirst,
    generate_workload,
    solve_online,
)
from repro.viz import render_load_histogram
from repro.workloads import grid_problem


def main() -> None:
    problem = grid_problem(5, num_chunks=0, capacity=1)
    # small storage + an eager SPAN threshold -> the network saturates and
    # replacement policies have to earn their keep
    config = ApproximationConfig(dual=DualAscentConfig(span_threshold=2))
    workload = generate_workload(
        num_chunks=45, horizon=300.0, mean_lifetime=160.0, seed=11
    )
    publishes = sum(1 for e in workload if e.kind == "publish")
    expiries = len(workload) - publishes
    print("network: 5x5 grid, capacity 1 chunk/node (tight!)")
    print(f"workload: {publishes} publishes, {expiries} expiries over "
          f"{workload.horizon:.0f}s\n")

    for policy in (NeverEvict(), OldestFirst(), MostReplicated()):
        trace = solve_online(problem, workload, config=config, policy=policy)
        cached = publishes - len(trace.uncached_chunks)
        ginis = trace.gini_series()
        print(f"== replacement policy: {policy.name} ==")
        print(f"  chunks cached       : {cached}/{publishes} "
              f"({len(trace.uncached_chunks)} left uncached)")
        print(f"  evictions performed : {trace.evictions}")
        print(f"  peak cached copies  : {trace.peak_copies}")
        print(f"  Gini over time      : start {ginis[0]:.2f}, "
              f"median {sorted(ginis)[len(ginis)//2]:.2f}, "
              f"end {ginis[-1]:.2f}")
        print()

    # Show the end-state load distribution under the default policy.
    from repro.online import OnlineFairCache

    cache = OnlineFairCache(problem, config=config)
    cache.run(workload)
    loads = [cache.state.storage.used(n) for n in problem.clients]
    print("final per-node load distribution (oldest-first policy):")
    print(render_load_histogram(loads))
    print("\nthe fairness feed-forward keeps working online: expired slots "
          "return to the pool\nand Eq. 1 steers fresh chunks toward "
          "lightly-loaded nodes.")


if __name__ == "__main__":
    main()
