"""The ``repro lint`` orchestrator.

Walks a package tree, parses every source file once, runs the
architecture pass (:mod:`repro.analysis.imports`) and the hygiene pass
(:mod:`repro.analysis.hygiene`), filters ``# repro: noqa=<rule>``
suppressions, and renders one per-rule report.

Defaults resolve against the installed package: the lint target is the
``repro`` package directory itself and the spec is ``docs/layering.toml``
found by walking up from the package to the repository root, so plain
``repro lint`` works from any working directory in a checkout.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.determinism import check_determinism
from repro.analysis.hygiene import check_hygiene
from repro.analysis.imports import SourceModule, check_architecture
from repro.analysis.parallel import check_parallel
from repro.analysis.report import (
    Violation,
    filter_suppressed,
    render_json,
    render_report,
    render_sarif,
)
from repro.analysis.rngflow import check_rngflow
from repro.analysis.spec import (
    DEFAULT_DETERMINISM_RELPATH,
    DEFAULT_SPEC_RELPATH,
    DeterminismSpec,
    LayeringSpec,
    load_determinism_spec,
    load_spec,
)
from repro.errors import ProblemError

#: Static rule families, in the order they run.  ``architecture`` and
#: ``hygiene`` need only the layering spec; the other three also need
#: the determinism contracts (``docs/determinism.toml``).
FAMILIES = ("architecture", "hygiene", "determinism", "rngflow", "parallel")

#: Families that require a :class:`DeterminismSpec`.
DET_FAMILIES = ("determinism", "rngflow", "parallel")


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run."""

    violations: Tuple[Violation, ...]
    files_checked: int
    suppressed: int = 0
    notes: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self, fmt: str = "text") -> str:
        if fmt == "json":
            return render_json(
                list(self.violations),
                self.files_checked,
                self.suppressed,
                notes=list(self.notes),
            )
        if fmt == "sarif":
            return render_sarif(
                list(self.violations),
                self.files_checked,
                self.suppressed,
                notes=list(self.notes),
            )
        if fmt != "text":
            raise ProblemError(
                f"unknown lint format {fmt!r}; expected text, json, or sarif"
            )
        body = render_report(
            list(self.violations), self.files_checked, self.suppressed
        )
        if self.notes:
            body = "\n".join([*self.notes, body])
        return body


def load_modules(
    package_dir: Union[str, Path], package_name: Optional[str] = None
) -> List[SourceModule]:
    """Parse every ``*.py`` under ``package_dir`` into SourceModules.

    Module names are rooted at ``package_name`` (default: the directory
    name), with ``__init__.py`` files named after their package.
    """
    root = Path(package_dir).resolve()
    if not root.is_dir():
        raise ProblemError(f"lint target {root} is not a directory")
    name = package_name or root.name
    modules: List[SourceModule] = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        relative = path.relative_to(root)
        parts = [name, *relative.with_suffix("").parts]
        is_package = parts[-1] == "__init__"
        if is_package:
            parts = parts[:-1]
        text = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            raise ProblemError(
                f"cannot lint {path}: syntax error on line {exc.lineno}"
            ) from exc
        modules.append(
            SourceModule(
                name=".".join(parts),
                path=str(path),
                tree=tree,
                lines=tuple(text.splitlines()),
                is_package=is_package,
            )
        )
    return modules


def lint_modules(
    modules: Sequence[SourceModule],
    spec: LayeringSpec,
    families: Sequence[str] = FAMILIES,
    det_spec: Optional[DeterminismSpec] = None,
    notes: Sequence[str] = (),
) -> LintReport:
    """Run the selected rule families over already-parsed modules.

    Families needing the determinism contracts are skipped (with a
    note) when ``det_spec`` is ``None`` — a checkout without
    ``docs/determinism.toml`` still lints architecture and hygiene.
    """
    unknown = [f for f in families if f not in FAMILIES]
    if unknown:
        raise ProblemError(
            f"unknown lint families {unknown!r}; expected a subset of "
            f"{list(FAMILIES)!r}"
        )
    run_notes = list(notes)
    violations: List[Violation] = []
    if "architecture" in families:
        violations.extend(check_architecture(list(modules), spec))
    if "hygiene" in families:
        violations.extend(check_hygiene(list(modules), spec))
    det_requested = [f for f in families if f in DET_FAMILIES]
    if det_requested and det_spec is None:
        run_notes.append(
            "note: determinism contracts not found "
            f"({DEFAULT_DETERMINISM_RELPATH}); skipped families: "
            + ", ".join(det_requested)
        )
    elif det_spec is not None:
        if "determinism" in families:
            violations.extend(check_determinism(list(modules), det_spec))
        if "rngflow" in families:
            violations.extend(check_rngflow(list(modules), det_spec))
        if "parallel" in families:
            violations.extend(check_parallel(list(modules), det_spec))
    lines_by_path: Dict[str, Sequence[str]] = {
        module.path: module.lines for module in modules
    }
    kept, suppressed = filter_suppressed(violations, lines_by_path)
    kept.sort(key=lambda v: (v.rule, v.path, v.line))
    return LintReport(
        violations=tuple(kept),
        files_checked=len(modules),
        suppressed=suppressed,
        notes=tuple(run_notes),
    )


def lint_package(
    package_dir: Union[str, Path],
    spec: LayeringSpec,
    package_name: Optional[str] = None,
    families: Sequence[str] = FAMILIES,
    det_spec: Optional[DeterminismSpec] = None,
) -> LintReport:
    """Lint one package directory against ``spec``."""
    return lint_modules(
        load_modules(package_dir, package_name),
        spec,
        families=families,
        det_spec=det_spec,
    )


def find_spec_path(start: Union[str, Path]) -> Optional[Path]:
    """Walk up from ``start`` looking for ``docs/layering.toml``."""
    current = Path(start).resolve()
    for candidate in [current, *current.parents]:
        spec_path = candidate / DEFAULT_SPEC_RELPATH
        if spec_path.is_file():
            return spec_path
    return None


def find_determinism_path(start: Union[str, Path]) -> Optional[Path]:
    """Walk up from ``start`` looking for ``docs/determinism.toml``."""
    current = Path(start).resolve()
    for candidate in [current, *current.parents]:
        det_path = candidate / DEFAULT_DETERMINISM_RELPATH
        if det_path.is_file():
            return det_path
    return None


def run_lint(
    package_dir: Optional[Union[str, Path]] = None,
    spec_path: Optional[Union[str, Path]] = None,
    families: Sequence[str] = FAMILIES,
    det_spec_path: Optional[Union[str, Path]] = None,
) -> LintReport:
    """Lint with installed-package defaults (what ``repro lint`` runs)."""
    if package_dir is None:
        package_dir = Path(__file__).resolve().parent.parent
    package_dir = Path(package_dir)
    if spec_path is None:
        spec_path = find_spec_path(package_dir)
        if spec_path is None:
            raise ProblemError(
                f"no {DEFAULT_SPEC_RELPATH} found above {package_dir}; "
                "pass --spec explicitly"
            )
    spec = load_spec(spec_path)
    if det_spec_path is None:
        det_spec_path = find_determinism_path(package_dir)
    det_spec = (
        load_determinism_spec(det_spec_path)
        if det_spec_path is not None
        else None
    )
    return lint_package(
        package_dir, spec, families=families, det_spec=det_spec
    )
