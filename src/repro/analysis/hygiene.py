"""Code-hygiene rules tuned to this repository.

Five AST rules (ids in brackets; scopes come from ``docs/layering.toml``):

* ``unseeded-random`` — inside the deterministic layers (core/, graphs/,
  distributed/, online/, workloads/, baselines/): calls through the
  module-level :mod:`random` RNG (``random.choice(...)``), a
  ``random.Random()`` constructed without a seed, any touch of
  ``numpy.random``, or a ``seed`` parameter defaulting to ``None``.  The
  event simulator's reproducibility guarantee rests on this rule.
* ``mutable-default`` — list/dict/set displays, comprehensions, or
  ``list()``/``dict()``/``set()``/``bytearray()`` calls as parameter
  defaults, anywhere in the package.
* ``float-equality`` — ``==`` / ``!=`` against a float literal in
  cost/dual-ascent code, where quantized bids make exact comparison a
  latent bug; compare with an explicit tolerance instead.
* ``bare-except`` — ``except:`` without an exception type, anywhere.
* ``wallclock`` — ``time.time()`` outside ``obs/``; wall-clock reads
  belong behind the :class:`~repro.obs.recorder.Recorder` timers.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.imports import SourceModule
from repro.analysis.report import Violation
from repro.analysis.spec import LayeringSpec

_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})
_SEEDED_RANDOM_ATTRS = frozenset({"Random", "SystemRandom"})


def check_hygiene(
    modules: Sequence[SourceModule], spec: LayeringSpec
) -> List[Violation]:
    """Run every hygiene rule over the module set."""
    violations: List[Violation] = []
    for module in modules:
        aliases = _collect_aliases(module.tree)
        violations.extend(_check_mutable_defaults(module))
        violations.extend(_check_bare_except(module))
        if not spec.in_scope(module.name, spec.wallclock_exempt):
            violations.extend(_check_wallclock(module, aliases))
        if spec.in_scope(module.name, spec.float_equality_scope):
            violations.extend(_check_float_equality(module))
        if spec.in_scope(module.name, spec.unseeded_random_scope):
            violations.extend(_check_unseeded_random(module, aliases))
    return violations


class _Aliases:
    """Names each relevant module is bound to within one file."""

    def __init__(self) -> None:
        self.random_modules: Set[str] = set()
        self.random_functions: Set[str] = set()
        self.numpy_modules: Set[str] = set()
        self.numpy_random: Set[str] = set()
        self.time_modules: Set[str] = set()
        self.time_function: Set[str] = set()


def _collect_aliases(tree: ast.Module) -> _Aliases:
    aliases = _Aliases()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                if alias.name == "random":
                    aliases.random_modules.add(bound)
                elif alias.name in ("numpy", "np"):
                    aliases.numpy_modules.add(bound)
                elif alias.name == "numpy.random":
                    aliases.numpy_random.add(alias.asname or "numpy")
                elif alias.name == "time":
                    aliases.time_modules.add(bound)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "random":
                for alias in node.names:
                    if alias.name not in _SEEDED_RANDOM_ATTRS:
                        aliases.random_functions.add(alias.asname or alias.name)
            elif node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        aliases.numpy_random.add(alias.asname or alias.name)
            elif node.module == "numpy.random":
                for alias in node.names:
                    aliases.numpy_random.add(alias.asname or alias.name)
            elif node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        aliases.time_function.add(alias.asname or alias.name)
    return aliases


def _function_like(node: ast.AST) -> bool:
    return isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))


def _check_mutable_defaults(module: SourceModule) -> List[Violation]:
    violations: List[Violation] = []
    for node in ast.walk(module.tree):
        if not _function_like(node):
            continue
        args = node.args  # type: ignore[attr-defined]
        defaults = list(args.defaults) + [
            default for default in args.kw_defaults if default is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                name = getattr(node, "name", "<lambda>")
                violations.append(
                    Violation(
                        "mutable-default",
                        module.path,
                        default.lineno,
                        f"function {name!r} uses a mutable default "
                        f"argument ({ast.unparse(default)}); default to "
                        "None and create the value inside the body",
                    )
                )
    return violations


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


def _check_bare_except(module: SourceModule) -> List[Violation]:
    return [
        Violation(
            "bare-except",
            module.path,
            node.lineno,
            "bare 'except:' swallows KeyboardInterrupt and SystemExit; "
            "catch a ReproError subclass (or Exception) instead",
        )
        for node in ast.walk(module.tree)
        if isinstance(node, ast.ExceptHandler) and node.type is None
    ]


def _check_wallclock(
    module: SourceModule, aliases: _Aliases
) -> List[Violation]:
    violations: List[Violation] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        flagged = False
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id in aliases.time_modules
        ):
            flagged = True
        elif isinstance(func, ast.Name) and func.id in aliases.time_function:
            flagged = True
        if flagged:
            violations.append(
                Violation(
                    "wallclock",
                    module.path,
                    node.lineno,
                    "time.time() outside obs/: route wall-clock measurement "
                    "through the Recorder timers so perf claims stay "
                    "machine-checkable",
                )
            )
    return violations


def _check_float_equality(module: SourceModule) -> List[Violation]:
    violations: List[Violation] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left] + list(node.comparators)
        if any(
            isinstance(operand, ast.Constant)
            and isinstance(operand.value, float)
            for operand in operands
        ):
            violations.append(
                Violation(
                    "float-equality",
                    module.path,
                    node.lineno,
                    "exact ==/!= against a float literal in cost/dual-ascent "
                    "code; quantized bids demand an explicit tolerance "
                    "(abs(a - b) <= eps)",
                )
            )
    return violations


def _check_unseeded_random(
    module: SourceModule, aliases: _Aliases
) -> List[Violation]:
    violations: List[Violation] = []

    def flag(node: ast.AST, message: str) -> None:
        violations.append(
            Violation("unseeded-random", module.path, node.lineno, message)
        )

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in aliases.random_modules
            ):
                if func.attr in _SEEDED_RANDOM_ATTRS:
                    if not node.args and not node.keywords:
                        flag(
                            node,
                            "random.Random() constructed without a seed "
                            "falls back to OS entropy; pass an explicit "
                            "seed",
                        )
                else:
                    flag(
                        node,
                        f"random.{func.attr}() uses the process-global RNG; "
                        "use a seeded random.Random instance",
                    )
            elif isinstance(func, ast.Name) and func.id in aliases.random_functions:
                flag(
                    node,
                    f"{func.id}() was imported from the random module and "
                    "uses the process-global RNG; use a seeded "
                    "random.Random instance",
                )
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in aliases.numpy_modules
        ):
            flag(
                node,
                "numpy.random use in a deterministic layer; pass an "
                "explicit numpy Generator (np.random.default_rng(seed)) "
                "from the caller",
            )
        if isinstance(node, ast.Name) and node.id in aliases.numpy_random:
            if isinstance(node.ctx, ast.Load):
                flag(
                    node,
                    "numpy.random use in a deterministic layer; pass an "
                    "explicit numpy Generator from the caller",
                )
        if _function_like(node) and not isinstance(node, ast.Lambda):
            violations.extend(_check_seed_defaults(module, node))
    return violations


def _check_seed_defaults(
    module: SourceModule, node: ast.AST
) -> List[Violation]:
    args = node.args  # type: ignore[attr-defined]
    name = getattr(node, "name", "<lambda>")
    positional = list(args.posonlyargs) + list(args.args)
    pairs = list(
        zip(positional[len(positional) - len(args.defaults):], args.defaults)
    )
    pairs.extend(
        (arg, default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults)
        if default is not None
    )
    return [
        Violation(
            "unseeded-random",
            module.path,
            default.lineno,
            f"function {name!r}: parameter 'seed' defaults to None — an "
            "unseeded fallback; default to a fixed integer so every code "
            "path stays reproducible",
        )
        for arg, default in pairs
        if arg.arg == "seed"
        and isinstance(default, ast.Constant)
        and default.value is None
    ]
