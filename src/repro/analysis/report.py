"""Violation records, ``# repro: noqa`` suppression, and report rendering.

Every linter pass produces :class:`Violation` rows; the orchestrator in
:mod:`repro.analysis.linter` filters suppressed rows and renders the
per-rule report that ``repro lint`` prints.

Suppression: a violation is dropped when the *flagged line* carries a
``# repro: noqa=<rule>[,<rule>...]`` comment naming its rule, or a bare
``# repro: noqa`` (all rules).  Suppressions are line-scoped on purpose
— blanket file-level opt-outs belong in ``docs/layering.toml``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\s*=\s*(?P<rules>[\w,\s-]+))?")

#: Schema tag for the machine-readable JSON report.
JSON_SCHEMA = "repro-lint/1"


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def noqa_rules(source_line: str) -> Optional[Set[str]]:
    """Rules suppressed on this line.

    Returns ``None`` when the line has no ``repro: noqa`` marker, an
    empty set for a bare marker (suppress everything), or the named
    rule set.
    """
    match = _NOQA_RE.search(source_line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return set()
    return {part.strip() for part in rules.split(",") if part.strip()}


def filter_suppressed(
    violations: Sequence[Violation],
    lines_by_path: Dict[str, Sequence[str]],
) -> Tuple[List[Violation], int]:
    """Drop violations suppressed by a line-scoped noqa marker.

    Returns ``(kept, suppressed_count)``.
    """
    kept: List[Violation] = []
    suppressed = 0
    for violation in violations:
        lines = lines_by_path.get(violation.path)
        rules: Optional[Set[str]] = None
        if lines is not None and 1 <= violation.line <= len(lines):
            rules = noqa_rules(lines[violation.line - 1])
        if rules is not None and (not rules or violation.rule in rules):
            suppressed += 1
            continue
        kept.append(violation)
    return kept, suppressed


def render_report(
    violations: Sequence[Violation],
    files_checked: int,
    suppressed: int = 0,
) -> str:
    """The human-readable per-rule report ``repro lint`` prints."""
    lines: List[str] = []
    if not violations:
        summary = f"repro lint: clean ({files_checked} files checked"
        if suppressed:
            summary += f", {suppressed} suppressed"
        lines.append(summary + ")")
        return "\n".join(lines)
    by_rule: Dict[str, List[Violation]] = {}
    for violation in violations:
        by_rule.setdefault(violation.rule, []).append(violation)
    for rule in sorted(by_rule):
        rows = by_rule[rule]
        lines.append(f"rule {rule} — {len(rows)} violation(s):")
        for violation in sorted(rows, key=lambda v: (v.path, v.line)):
            lines.append(f"  {violation.render()}")
    summary = (
        f"repro lint: {len(violations)} violation(s) across "
        f"{len(by_rule)} rule(s) in {files_checked} files"
    )
    if suppressed:
        summary += f" ({suppressed} suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def _sorted_rows(violations: Sequence[Violation]) -> List[Violation]:
    return sorted(violations, key=lambda v: (v.rule, v.path, v.line, v.message))


def render_json(
    violations: Sequence[Violation],
    files_checked: int,
    suppressed: int = 0,
    notes: Sequence[str] = (),
) -> str:
    """Machine-readable report (schema ``repro-lint/1``), byte-stable.

    Keys are emitted in a fixed order and rows are fully sorted, so the
    same findings always serialize to the same bytes — CI can diff the
    artifact across runs.
    """
    document: Dict[str, Any] = {
        "schema": JSON_SCHEMA,
        "ok": not violations,
        "files_checked": files_checked,
        "suppressed": suppressed,
        "notes": list(notes),
        "violations": [
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "message": v.message,
            }
            for v in _sorted_rows(violations)
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False) + "\n"


def render_sarif(
    violations: Sequence[Violation],
    files_checked: int,
    suppressed: int = 0,
    notes: Sequence[str] = (),
) -> str:
    """Minimal SARIF 2.1.0 document for code-scanning annotation."""
    rows = _sorted_rows(violations)
    rule_ids = sorted({v.rule for v in rows})
    document: Dict[str, Any] = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/LINTING.md",
                        "rules": [{"id": rule} for rule in rule_ids],
                    }
                },
                "properties": {
                    "files_checked": files_checked,
                    "suppressed": suppressed,
                    "notes": list(notes),
                },
                "results": [
                    {
                        "ruleId": v.rule,
                        "level": "error",
                        "message": {"text": v.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {"uri": v.path},
                                    "region": {"startLine": max(v.line, 1)},
                                }
                            }
                        ],
                    }
                    for v in rows
                ],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False) + "\n"
