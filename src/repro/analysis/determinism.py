"""Determinism rules: byte-identity hazards caught at lint time.

Applied to every module whose :mod:`docs/determinism.toml` contract is
``deterministic`` (longest-prefix match; ``exempt`` wins).  Five rules:

``unordered-iteration``
    A ``set``/``frozenset``-typed expression is iterated by a ``for``
    statement or comprehension, or passed to an order-sensitive consumer
    (``list``, ``tuple``, ``enumerate``, ``str.join``), without going
    through ``sorted()``.  Set iteration order depends on insertion
    history and ``PYTHONHASHSEED``, so anything ordered built from it is
    not byte-stable.  ``dict`` views are *not* flagged: Python dicts are
    insertion-ordered, so their iteration order is deterministic.
``hash-ordering``
    A call to ``hash()`` or ``id()``, or ``key=hash`` / ``key=id``
    passed to a sort.  ``hash()`` of str/bytes varies per process under
    hash randomization and ``id()`` varies per allocation, so neither
    may influence result values or ordering.
``float-accumulation``
    ``sum()`` / ``math.fsum()`` over a set-typed iterable (directly or
    via a generator expression).  Float addition is not associative, so
    an unordered reduction is not byte-stable even when the set's
    *membership* is.
``env-branching``
    ``os.environ`` / ``os.getenv`` read outside the ``[allowlist] env``
    scope — results must not depend on ambient environment.
``wallclock-determinism``
    Monotonic/CPU/wall clock reads (``time.monotonic``,
    ``time.perf_counter``, ``time.process_time``, their ``_ns``
    variants, ``time.time_ns``, ``datetime.now`` etc.) outside the
    ``[allowlist] wallclock`` scope.  ``time.time()`` itself stays with
    the hygiene ``wallclock`` rule so one read is never double-flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.astutil import (
    ModuleAliases,
    build_parent_map,
    collect_module_aliases,
    dotted_call_name,
)
from repro.analysis.imports import SourceModule
from repro.analysis.report import Violation
from repro.analysis.spec import DeterminismSpec

#: Consumers whose output order follows the iterable's order.
_ORDER_SENSITIVE_CALLS = ("list", "tuple", "enumerate")

#: Consumers whose result does not depend on iteration order; a
#: comprehension that is the direct argument of one of these may iterate
#: a set freely.  ``sum`` is here because the float case is owned by the
#: float-accumulation rule — one site, one rule.
_ORDER_INSENSITIVE_CONSUMERS = (
    "sorted",
    "min",
    "max",
    "any",
    "all",
    "len",
    "set",
    "frozenset",
    "sum",
)

#: time-module members that read a clock (time.time is hygiene's).
_CLOCK_MEMBERS = (
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "time_ns",
)

#: datetime constructors that read the wall clock.
_DATETIME_NOW = ("now", "utcnow", "today")


def check_determinism(
    modules: Sequence[SourceModule], det: DeterminismSpec
) -> List[Violation]:
    """Run the determinism rules over already-parsed modules."""
    violations: List[Violation] = []
    for module in modules:
        if not det.is_deterministic(module.name):
            continue
        aliases = collect_module_aliases(module.tree)
        checker = _ModuleChecker(module, det, aliases)
        checker.run()
        violations.extend(checker.violations)
    return violations


class _ModuleChecker:
    def __init__(
        self,
        module: SourceModule,
        det: DeterminismSpec,
        aliases: ModuleAliases,
    ) -> None:
        self.module = module
        self.det = det
        self.aliases = aliases
        self.violations: List[Violation] = []
        #: Names assigned a set-typed value, per enclosing scope node.
        self._set_names: Set[str] = set()
        self._parents: Dict[ast.AST, ast.AST] = {}

    def run(self) -> None:
        self._collect_set_names(self.module.tree)
        self._parents = build_parent_map(self.module.tree)
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.For):
                self._check_iteration(node.iter, node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                if not self._feeds_order_insensitive(node):
                    for gen in node.generators:
                        self._check_iteration(gen.iter, gen.iter)
            elif isinstance(node, ast.DictComp):
                for gen in node.generators:
                    self._check_iteration(gen.iter, gen.iter)
            elif isinstance(node, ast.Call):
                self._check_call(node)
            elif isinstance(node, (ast.Attribute, ast.Name)):
                self._check_environ_access(node)

    def _feeds_order_insensitive(self, node: ast.expr) -> bool:
        """Comprehension passed straight into sorted()/min()/... ?"""
        parent = self._parents.get(node)
        if not isinstance(parent, ast.Call) or node not in parent.args:
            return False
        name = dotted_call_name(parent.func)
        if name is None:
            return False
        # math.fsum counts too: like sum, its float-over-set case is
        # owned by the float-accumulation rule.
        bare = name.rpartition(".")[2]
        return bare in _ORDER_INSENSITIVE_CONSUMERS or bare == "fsum"

    # -- unordered-iteration ------------------------------------------
    def _collect_set_names(self, tree: ast.Module) -> None:
        """Names bound (anywhere) to a syntactically set-typed value.

        Scope-insensitive on purpose: a false merge across functions
        only matters if the *same name* holds a set in one function and
        an ordered sequence in another, which is itself confusing enough
        to rename.
        """
        for node in ast.walk(tree):
            value: Optional[ast.expr] = None
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None or not self._is_set_expr(value, check_names=False):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    self._set_names.add(target.id)

    def _is_set_expr(self, node: ast.expr, check_names: bool = True) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_call_name(node.func)
            if name in ("set", "frozenset"):
                return True
        if check_names and isinstance(node, ast.Name):
            return node.id in self._set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            # ``a | b`` / ``a - b`` over sets; require one proven side.
            return self._is_set_expr(node.left, check_names) or self._is_set_expr(
                node.right, check_names
            )
        return False

    def _check_iteration(self, iterable: ast.expr, site: ast.expr) -> None:
        if self._is_set_expr(iterable):
            self._flag(
                "unordered-iteration",
                site,
                "iterates a set-typed expression; iteration order depends "
                "on PYTHONHASHSEED/insertion history — wrap in sorted()",
            )

    def _check_call(self, node: ast.Call) -> None:
        name = dotted_call_name(node.func)
        # unordered-iteration: order-sensitive consumers of a set.
        if name in _ORDER_SENSITIVE_CALLS and node.args:
            if self._is_set_expr(node.args[0]):
                self._flag(
                    "unordered-iteration",
                    node,
                    f"{name}() over a set-typed expression captures an "
                    "unstable order — wrap in sorted()",
                )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
            and self._is_set_expr(node.args[0])
        ):
            self._flag(
                "unordered-iteration",
                node,
                "str.join() over a set-typed expression captures an "
                "unstable order — wrap in sorted()",
            )
        # hash-ordering: hash()/id() calls and key=hash/id keywords.
        if name in ("hash", "id"):
            self._flag(
                "hash-ordering",
                node,
                f"{name}() varies per process/allocation; results and "
                "orderings must not depend on it",
            )
        for keyword in node.keywords:
            if (
                keyword.arg == "key"
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id in ("hash", "id")
            ):
                self._flag(
                    "hash-ordering",
                    keyword.value,
                    f"sort key={keyword.value.id} orders by a per-process "
                    "value",
                )
        # float-accumulation: sum()/math.fsum() over set-typed iterables.
        if name is not None and self._is_accumulator(name) and node.args:
            arg = node.args[0]
            if self._is_set_expr(arg) or self._genexp_over_set(arg):
                self._flag(
                    "float-accumulation",
                    node,
                    f"{name}() over an unordered collection: float "
                    "addition is order-dependent — sum a sorted sequence",
                )
        # env-branching: os.environ/os.getenv outside the allowlist.
        self._check_env_call(node, name)
        # wallclock-determinism: monotonic/CPU clock reads.
        self._check_clock_call(node, name)

    def _is_accumulator(self, name: str) -> bool:
        if name == "sum":
            return True
        head, _, member = name.rpartition(".")
        if member == "fsum" and head in self.aliases.module_names("math"):
            return True
        return self.aliases.member_name("math", name) == "fsum"

    def _genexp_over_set(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.GeneratorExp):
            return False
        return any(
            self._is_set_expr(gen.iter) for gen in node.generators
        )

    # -- env-branching ------------------------------------------------
    def _check_env_call(self, node: ast.Call, name: Optional[str]) -> None:
        if self.det.allows_env(self.module.name):
            return
        if name is None:
            return
        head, _, member = name.rpartition(".")
        if member == "getenv" and head in self.aliases.module_names("os"):
            self._flag_env(node)
        elif self.aliases.member_name("os", name) == "getenv":
            self._flag_env(node)

    def _check_environ_access(self, node: ast.AST) -> None:
        """``os.environ`` (or ``from os import environ``) reads."""
        if self.det.allows_env(self.module.name):
            return
        if isinstance(node, ast.Attribute):
            if (
                node.attr == "environ"
                and isinstance(node.value, ast.Name)
                and node.value.id in self.aliases.module_names("os")
            ):
                self._flag_env(node)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if self.aliases.member_name("os", node.id) == "environ":
                self._flag_env(node)

    def _flag_env(self, node: ast.AST) -> None:
        self._flag(
            "env-branching",
            node,
            "environment read in a deterministic module: results must "
            "not depend on ambient env vars",
        )

    # -- wallclock-determinism ----------------------------------------
    def _check_clock_call(self, node: ast.Call, name: Optional[str]) -> None:
        if self.det.allows_wallclock(self.module.name):
            return
        if name is None:
            return
        head, _, member = name.rpartition(".")
        time_names = self.aliases.module_names("time")
        datetime_names = self.aliases.module_names("datetime")
        if member in _CLOCK_MEMBERS and head in time_names:
            self._flag_clock(node, name)
            return
        if self.aliases.member_name("time", name) in _CLOCK_MEMBERS:
            self._flag_clock(node, name)
            return
        # datetime.datetime.now() / datetime.date.today() forms, plus
        # ``from datetime import datetime; datetime.now()``.
        if member in _DATETIME_NOW:
            owner, _, cls = head.rpartition(".")
            if owner in datetime_names and cls in ("datetime", "date"):
                self._flag_clock(node, name)
            elif not owner and self.aliases.member_name("datetime", cls) in (
                "datetime",
                "date",
            ):
                self._flag_clock(node, name)

    def _flag_clock(self, node: ast.AST, name: str) -> None:
        self._flag(
            "wallclock-determinism",
            node,
            f"{name}() reads a clock in a deterministic module; move the "
            "timing behind the obs Recorder or allowlist the module in "
            "determinism.toml",
        )

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                rule=rule,
                path=self.module.path,
                line=getattr(node, "lineno", 0),
                message=f"{self.module.name}: {message}",
            )
        )
