"""Static analysis and runtime contracts for the :mod:`repro` codebase.

Three coordinated passes keep the architecture documented in
``docs/ARCHITECTURE.md`` mechanically true (see ``docs/LINTING.md``):

* :mod:`repro.analysis.imports` — an AST import walker checked against
  the machine-readable layering spec ``docs/layering.toml``: no upward
  imports, no cycles, ``obs/recorder.py`` stays stdlib-only, ``core/``
  never touches ``experiments/`` or the CLI.
* :mod:`repro.analysis.hygiene` — repo-tuned code-hygiene rules:
  unseeded RNG use in the deterministic layers, mutable default
  arguments, float ``==`` in cost/dual-ascent code, bare ``except``,
  wall-clock reads outside ``obs/``.
* :mod:`repro.analysis.contracts` — toggleable runtime assertions
  (``REPRO_SANITIZE=1``) wired into the dual ascent, the shared commit
  path, and the distributed protocol.

The first two run via ``repro lint`` (a blocking CI gate); the third is
enabled for the whole test suite by ``tests/conftest.py``.

This package sits at the bottom of the layering (stdlib +
:mod:`repro.errors` only) so :mod:`repro.core` can import the contracts
without cycles.
"""

from repro.analysis.linter import LintReport, lint_package, run_lint
from repro.analysis.report import Violation
from repro.analysis.spec import LayeringSpec, load_spec

__all__ = [
    "LayeringSpec",
    "LintReport",
    "Violation",
    "lint_package",
    "load_spec",
    "run_lint",
]
