"""Static analysis and runtime contracts for the :mod:`repro` codebase.

Three coordinated passes keep the architecture documented in
``docs/ARCHITECTURE.md`` mechanically true (see ``docs/LINTING.md``):

* :mod:`repro.analysis.imports` — an AST import walker checked against
  the machine-readable layering spec ``docs/layering.toml``: no upward
  imports, no cycles, ``obs/recorder.py`` stays stdlib-only, ``core/``
  never touches ``experiments/`` or the CLI.
* :mod:`repro.analysis.hygiene` — repo-tuned code-hygiene rules:
  unseeded RNG use in the deterministic layers, mutable default
  arguments, float ``==`` in cost/dual-ascent code, bare ``except``,
  wall-clock reads outside ``obs/``.
* :mod:`repro.analysis.determinism`, :mod:`repro.analysis.rngflow`, and
  :mod:`repro.analysis.parallel` — determinism & parallel-safety rules
  checked against the contracts in ``docs/determinism.toml``: unordered
  iteration feeding ordered output, ``hash()``/``id()`` ordering, env/
  clock reads outside allowlists, process-global RNG, RNG instances
  crossing worker boundaries, and mutable-global writes reachable from
  ``Pool`` workers.
* :mod:`repro.analysis.contracts` — toggleable runtime assertions
  (``REPRO_SANITIZE=1``) wired into the dual ascent, the shared commit
  path, the distributed protocol, and the batched-vs-per-request serve
  equivalence cross-check.

The static passes run via ``repro lint`` (a blocking CI gate); the
runtime contracts are enabled for the whole test suite by
``tests/conftest.py``.

This package sits at the bottom of the layering (stdlib +
:mod:`repro.errors` only) so :mod:`repro.core` can import the contracts
without cycles.
"""

from repro.analysis.linter import (
    FAMILIES,
    LintReport,
    lint_package,
    run_lint,
)
from repro.analysis.report import Violation
from repro.analysis.spec import (
    DeterminismSpec,
    LayeringSpec,
    load_determinism_spec,
    load_spec,
)

__all__ = [
    "DeterminismSpec",
    "FAMILIES",
    "LayeringSpec",
    "LintReport",
    "Violation",
    "lint_package",
    "load_determinism_spec",
    "load_spec",
    "run_lint",
]
