"""Runtime invariant sanitizer, toggled by ``REPRO_SANITIZE=1``.

Cheap assertions for the paper's per-chunk ConFL invariants, wired into
the three places a wrong answer could silently pass through:

* :func:`check_dual_solution` — after each dual ascent
  (``core/dual_ascent.py``): every client frozen onto an affordable
  server, every ADMIN facility fully paid (dual feasibility of the α/β
  bids, Theorem 1's bookkeeping), and SPAN support at or above the
  ``M`` threshold.
* :func:`check_storage_monotonic` / :func:`check_chunk_commit` — inside
  the shared commit path (``core/commit.py``): storage ``S(k)`` only
  ever grows within Algorithm 1, stage costs are finite and
  non-negative, and the committed chunk satisfies the ILP constraints
  (4)–(6) per chunk (served exactly once, served only by caches or the
  producer, dissemination tree connects every cache to the producer).
* :func:`check_message_census` — after each protocol session
  (``distributed/protocol.py``): Table II census conservation — the NPI
  and BADMIN floods reach every node exactly once, unicast transmission
  counts stay within the ``k``-hop envelope, and no unknown message
  types appear.
* :func:`check_incremental_cost_rows` — after each incremental cost
  patch (``core/costs.py``): the delta-patched ``c_ij`` rows equal a
  full recompute from the current storage state, with *exact* float
  equality (all node costs are integers, so float64 sums are exact).

Everything here is duck-typed over plain dicts/sequences so this module
stays at the bottom of the layering (stdlib + :mod:`repro.errors` only)
and :mod:`repro.core` can import it without cycles.  When the env var is
unset the per-call cost is a single dict lookup.
"""

from __future__ import annotations

import math
import os
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import InvariantError

Node = Hashable

ENV_VAR = "REPRO_SANITIZE"


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to anything but ''/'0'."""
    return os.environ.get(ENV_VAR, "").strip() not in ("", "0")


def _fail(rule: str, message: str) -> None:
    raise InvariantError(rule, message)


def _tol(scale: float) -> float:
    return 1e-6 * (1.0 + abs(scale))


# ----------------------------------------------------------------------
# Dual ascent (Algorithm 1 lines 17-46)
# ----------------------------------------------------------------------
def check_dual_solution(
    *,
    producer: Node,
    clients: Sequence[Node],
    facilities: Sequence[Node],
    open_cost: Mapping[Node, float],
    connect_cost: Mapping[Node, Mapping[Node, float]],
    admins: Sequence[Node],
    assignment: Mapping[Node, Node],
    alpha: Mapping[Node, float],
    payments: Mapping[Node, float],
    span_counts: Mapping[Node, int],
    step: float,
    threshold: int,
) -> None:
    """Assert the dual-ascent outcome is a feasible frozen state."""
    rule = "dual-feasibility"
    client_set = set(clients)
    admin_list = list(admins)
    admin_set = set(admin_list)
    facility_set = set(facilities)

    if len(admin_list) != len(admin_set):
        _fail(rule, f"ADMIN set has duplicates: {admin_list!r}")
    stray = admin_set - facility_set
    if stray:
        _fail(rule, f"ADMIN nodes {sorted(map(repr, stray))[:5]} are not "
                    "eligible facilities")
    if producer in admin_set:
        _fail(rule, "the producer appeared in the ADMIN set")

    served = set(assignment)
    if served != client_set:
        missing = client_set - served
        extra = served - client_set
        _fail(
            rule,
            "assignment does not cover the clients exactly "
            f"(missing={sorted(map(repr, missing))[:5]}, "
            f"extra={sorted(map(repr, extra))[:5]})",
        )

    open_servers = admin_set | {producer}
    for client, server in assignment.items():
        if server not in open_servers:
            _fail(
                rule,
                f"client {client!r} frozen onto {server!r}, which is "
                "neither an ADMIN facility nor the producer",
            )
        bid = alpha[client]
        if bid < -_tol(bid):
            _fail(rule, f"client {client!r} has negative bid alpha={bid}")
        cost = connect_cost[server][client]
        if bid + _tol(cost) < cost:
            _fail(
                rule,
                f"client {client!r} frozen onto {server!r} it cannot "
                f"afford: alpha={bid} < connection cost {cost}",
            )

    for facility in admin_list:
        paid = float(payments[facility])
        cost = float(open_cost[facility])
        if not math.isfinite(cost):
            _fail(rule, f"ADMIN facility {facility!r} has infinite "
                        "opening cost")
        if paid + _tol(cost) < cost:
            _fail(
                rule,
                f"ADMIN facility {facility!r} opened under-paid: "
                f"sum of beta bids {paid} < opening cost {cost}",
            )
        support = int(span_counts.get(facility, 0))
        # No upper bound on ``paid`` is asserted: a facility whose opening
        # cost is covered early can keep accumulating beta surplus while it
        # waits for its M-th SPAN-tight client, so the payment at opening
        # legitimately exceeds f_i by more than one quantization step.
        if support < threshold:
            _fail(
                rule,
                f"ADMIN facility {facility!r} opened with SPAN support "
                f"{support} below the threshold M={threshold}",
            )


# ----------------------------------------------------------------------
# Shared commit path (Algorithm 1 lines 47-48)
# ----------------------------------------------------------------------
def check_storage_monotonic(
    *,
    chunk: int,
    used_before: Mapping[Node, int],
    used_after: Mapping[Node, int],
    cached_nodes: Iterable[Node],
) -> None:
    """Assert S(k) grew by exactly one at each cache and never shrank."""
    rule = "storage-monotonic"
    cached = set(cached_nodes)
    for node, before in used_before.items():
        after = used_after[node]
        if after < before:
            _fail(
                rule,
                f"chunk {chunk}: storage at {node!r} decreased "
                f"({before} -> {after}) during commit",
            )
        expected = before + 1 if node in cached else before
        if after != expected:
            _fail(
                rule,
                f"chunk {chunk}: storage at {node!r} moved {before} -> "
                f"{after}, expected {expected}",
            )


def check_chunk_commit(
    *,
    chunk: int,
    producer: Node,
    clients: Iterable[Node],
    caches: Sequence[Node],
    assignment: Mapping[Node, Node],
    tree_edges: Iterable[FrozenSet[Node]],
    has_edge: Callable[[Node, Node], bool],
    stage_costs: Mapping[str, float],
) -> None:
    """Assert the committed chunk satisfies ILP constraints (4)-(6)."""
    rule = "commit-feasibility"
    cache_set = set(caches)
    if producer in cache_set:
        _fail(rule, f"chunk {chunk}: the producer is in the caching set")

    client_set = set(clients)
    served = set(assignment)
    if served != client_set:
        _fail(
            rule,
            f"chunk {chunk}: assignment covers {len(served)} clients, "
            f"expected {len(client_set)} (constraint 4)",
        )
    allowed = cache_set | {producer}
    for client, server in assignment.items():
        if server not in allowed:
            _fail(
                rule,
                f"chunk {chunk}: client {client!r} served by {server!r}, "
                "which caches nothing (constraint 5)",
            )

    for name, value in stage_costs.items():
        if not math.isfinite(value) or value < -_tol(value):
            _fail(
                rule,
                f"chunk {chunk}: stage {name} cost is {value}; stage "
                "costs must be finite and non-negative",
            )

    # Constraint (6): the dissemination edges connect every cache to the
    # producer.  Inline BFS keeps this module free of graphs/ imports.
    if not cache_set:
        return
    adjacency: Dict[Node, List[Node]] = {}
    for key in tree_edges:
        endpoints: Tuple[Node, ...] = tuple(key)
        if len(endpoints) != 2:
            _fail(rule, f"chunk {chunk}: malformed tree edge {key!r}")
        u, v = endpoints
        if not has_edge(u, v):
            _fail(
                rule,
                f"chunk {chunk}: dissemination edge ({u!r}, {v!r}) is not "
                "a network link",
            )
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)
    reached: Set[Node] = {producer}
    frontier: List[Node] = [producer]
    while frontier:
        node = frontier.pop()
        for neighbor in adjacency.get(node, ()):
            if neighbor not in reached:
                reached.add(neighbor)
                frontier.append(neighbor)
    unreachable = cache_set - reached
    if unreachable:
        _fail(
            rule,
            f"chunk {chunk}: caches {sorted(map(repr, unreachable))[:5]} "
            "are not connected to the producer by the dissemination tree "
            "(constraint 6)",
        )


# ----------------------------------------------------------------------
# Incremental cost engine (Algorithm 1 lines 8-13, delta patching)
# ----------------------------------------------------------------------
def check_incremental_cost_rows(
    *,
    dirty_nodes: Sequence[Node],
    patched: Mapping[Node, Mapping[Node, float]],
    fresh: Mapping[Node, Mapping[Node, float]],
) -> None:
    """Assert delta-patched contention rows equal a full recompute.

    Equality is *exact*: Eq. 2 sums integer node costs ``w_k (1 + S(k))``
    and the patch adds the integer delta ``w_k · ΔS(k)``, so both sides
    are integer-valued floats and any difference is a real defect, not
    rounding.
    """
    rule = "incremental-costs"
    dirty = sorted(map(repr, dirty_nodes))
    if set(patched) != set(fresh):
        missing = set(fresh) - set(patched)
        extra = set(patched) - set(fresh)
        _fail(
            rule,
            "patched row sources diverge from the fresh rebuild after "
            f"dirty={dirty[:5]} (missing={sorted(map(repr, missing))[:5]}, "
            f"extra={sorted(map(repr, extra))[:5]})",
        )
    for source, fresh_row in fresh.items():
        patched_row = patched[source]
        if set(patched_row) != set(fresh_row):
            _fail(
                rule,
                f"row {source!r}: patched targets diverge from the fresh "
                f"rebuild after dirty={dirty[:5]}",
            )
        for target, expected in fresh_row.items():
            got = patched_row[target]
            if got != expected:
                _fail(
                    rule,
                    f"row {source!r}: patched c[{source!r}][{target!r}] = "
                    f"{got} but a fresh rebuild gives {expected} "
                    f"(after dirty={dirty[:5]})",
                )


# ----------------------------------------------------------------------
# Distributed protocol (Algorithm 2, Table II)
# ----------------------------------------------------------------------
#: Message types whose range is limited to k hops (Table II "local").
_SCOPED_TYPES = ("CC", "TIGHT", "SPAN", "FREEZE", "NADMIN")


def check_message_census(
    *,
    chunk: int,
    known_types: Sequence[str],
    messages_before: Mapping[str, int],
    messages_after: Mapping[str, int],
    transmissions_before: Mapping[str, int],
    transmissions_after: Mapping[str, int],
    num_nodes: int,
    num_admins: int,
    hop_limit: int,
) -> None:
    """Assert the Table II message census obeys its conservation laws."""
    rule = "message-census"
    known = set(known_types)
    for label, mapping in (
        ("messages", messages_after),
        ("transmissions", transmissions_after),
    ):
        unknown = set(mapping) - known
        if unknown:
            _fail(
                rule,
                f"chunk {chunk}: unknown {label} type(s) "
                f"{sorted(unknown)!r} in the census",
            )

    deltas: Dict[str, Tuple[int, int]] = {}
    for msg_type in known_types:
        d_messages = messages_after.get(msg_type, 0) - messages_before.get(
            msg_type, 0
        )
        d_transmissions = transmissions_after.get(
            msg_type, 0
        ) - transmissions_before.get(msg_type, 0)
        if d_messages < 0 or d_transmissions < 0:
            _fail(
                rule,
                f"chunk {chunk}: {msg_type} census decreased "
                f"(messages {d_messages:+}, transmissions "
                f"{d_transmissions:+})",
            )
        if d_transmissions < d_messages:
            _fail(
                rule,
                f"chunk {chunk}: {msg_type} logged {d_messages} messages "
                f"but only {d_transmissions} transmissions; every "
                "delivery costs at least one hop",
            )
        deltas[msg_type] = (d_messages, d_transmissions)

    # Floods are reliable: NPI reaches every non-producer node exactly
    # once, BADMIN reaches everyone but the announcing admin.
    npi_messages = deltas.get("NPI", (0, 0))[0]
    if npi_messages != num_nodes:
        _fail(
            rule,
            f"chunk {chunk}: NPI flood delivered {npi_messages} messages, "
            f"expected exactly {num_nodes} (one per non-producer node)",
        )
    badmin_messages = deltas.get("BADMIN", (0, 0))[0]
    expected_badmin = num_admins * max(0, num_nodes - 1)
    if badmin_messages != expected_badmin:
        _fail(
            rule,
            f"chunk {chunk}: BADMIN floods delivered {badmin_messages} "
            f"messages for {num_admins} admin(s), expected "
            f"{expected_badmin}",
        )

    for msg_type in _SCOPED_TYPES:
        d_messages, d_transmissions = deltas.get(msg_type, (0, 0))
        if d_transmissions > d_messages * max(1, hop_limit):
            _fail(
                rule,
                f"chunk {chunk}: {msg_type} transmissions "
                f"{d_transmissions} exceed the {hop_limit}-hop envelope "
                f"for {d_messages} messages (Table II range violation)",
            )


# ----------------------------------------------------------------------
# Serve engine (request plane): batched vs per-request byte-equality
# ----------------------------------------------------------------------
#: Replays at or below this size get a shadow per-request replay when
#: the sanitizer is on; above it the check would dominate the run.
SERVE_EQUIVALENCE_MAX_REQUESTS = 2048


def check_serve_equivalence(
    *,
    batched_json: str,
    reference_json: str,
    context: str,
) -> None:
    """Assert the batched serve report is byte-equal to the reference.

    The request plane's core promise (docs/SCALING.md): the batched
    engine is an execution strategy, not a different simulation, so its
    ``ServeReport`` must serialize to the exact bytes the per-request
    engine produces.  Both sides arrive pre-serialized so this module
    needs no knowledge of the report type.
    """
    rule = "serve-equivalence"
    if batched_json == reference_json:
        return
    for index, (left, right) in enumerate(
        zip(batched_json.splitlines(), reference_json.splitlines())
    ):
        if left != right:
            _fail(
                rule,
                f"{context}: batched report diverges from the per-request "
                f"reference at JSON line {index + 1}: "
                f"batched={left.strip()!r} reference={right.strip()!r}",
            )
    _fail(
        rule,
        f"{context}: batched report length {len(batched_json)} != "
        f"per-request reference length {len(reference_json)}",
    )


# ----------------------------------------------------------------------
# Adaptive control plane: local moves must never worsen total cost
# ----------------------------------------------------------------------
def check_adaptive_move(
    *,
    move: str,
    node: Node,
    chunk: int,
    tracked_before: float,
    tracked_after: float,
    fresh_before: float,
    fresh_after: float,
    transfer_cost: float,
    context: str,
) -> None:
    """Assert an accepted adaptive move is priced honestly and pays off.

    The control plane evaluates candidate moves against its *live*
    incrementally-patched cost model; this check re-prices both sides of
    an accepted move with values from a fresh cost model (the caller
    recomputes them from scratch) and asserts (a) the tracked totals
    agree with the fresh ones — the incremental patches didn't drift —
    and (b) the move never worsens demand-weighted total cost once its
    one-time transfer cost is charged (``docs/ADAPTIVE.md``).
    """
    rule = "adaptive-move"
    if transfer_cost < 0:
        _fail(
            rule,
            f"{context}: {move} of chunk {chunk} at {node!r} has negative "
            f"transfer cost {transfer_cost}",
        )
    if abs(tracked_before - fresh_before) > _tol(fresh_before):
        _fail(
            rule,
            f"{context}: tracked pre-move cost {tracked_before} diverges "
            f"from fresh recomputation {fresh_before} "
            f"({move} of chunk {chunk} at {node!r})",
        )
    if abs(tracked_after - fresh_after) > _tol(fresh_after):
        _fail(
            rule,
            f"{context}: tracked post-move cost {tracked_after} diverges "
            f"from fresh recomputation {fresh_after} "
            f"({move} of chunk {chunk} at {node!r})",
        )
    if fresh_after + transfer_cost > fresh_before + _tol(fresh_before):
        _fail(
            rule,
            f"{context}: accepted {move} of chunk {chunk} at {node!r} "
            f"worsens cost: before={fresh_before} "
            f"after={fresh_after} transfer={transfer_cost}",
        )


__all__ = [
    "ENV_VAR",
    "SERVE_EQUIVALENCE_MAX_REQUESTS",
    "check_adaptive_move",
    "check_chunk_commit",
    "check_dual_solution",
    "check_incremental_cost_rows",
    "check_message_census",
    "check_serve_equivalence",
    "check_storage_monotonic",
    "sanitize_enabled",
]
