"""Parallel-safety rules: what may a ``Pool`` worker touch?

The sweep runner's sharding-invariance promise (docs/SCALING.md) holds
only if worker functions are pure up to their payload.  This pass finds
worker dispatch sites (``pool.map``/``imap``/``starmap``/
``apply_async``, executor ``submit``/``map``, ``Process(target=...)``),
resolves the worker function, computes same-module call-graph
reachability from it, and checks everything reachable.  It runs on
modules that declare the ``fork-safe`` contract in
``docs/determinism.toml`` *or* that contain a dispatch site themselves.

``parallel-global-write``
    A function reachable from a worker writes module-level mutable
    state: subscript/augmented assignment to a module-level name, a
    mutating method call (``append``/``update``/``add``/...) on one, or
    a ``global`` rebind.  Under fork each process mutates its own copy,
    so the parent never sees the write — results then depend on which
    process ran what.  Deliberate per-process memos need a line-scoped
    ``# repro: noqa=parallel-global-write`` with a justification.
``parallel-unsafe-capture``
    A worker (or reachable callee) reads a module-level name bound to a
    fork-unsafe value — an open file handle, a live ``Recorder`` /
    ``Tracer`` — or the dispatched worker is a lambda / nested closure
    (its captured frame state does not survive pickling/fork cleanly).
``parallel-unordered-merge``
    A completion-ordered collection point: ``imap_unordered``,
    ``as_completed``, or ``apply_async`` whose results are gathered as
    they finish.  Merges must be keyed by shard index, never by
    completion order.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import (
    ModuleAliases,
    collect_module_aliases,
    dotted_call_name,
)
from repro.analysis.imports import SourceModule
from repro.analysis.report import Violation
from repro.analysis.spec import DeterminismSpec

#: Dispatch methods whose first positional argument is the worker.
_MAP_METHODS = (
    "map",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
    "map_async",
    "apply",
    "apply_async",
    "submit",
)

#: Completion-ordered collection points.
_UNORDERED_METHODS = ("imap_unordered", "as_completed")

#: Constructors producing module-level *mutable* state worth guarding.
_MUTABLE_CTORS = (
    "list",
    "dict",
    "set",
    "collections.defaultdict",
    "defaultdict",
    "collections.Counter",
    "Counter",
    "collections.OrderedDict",
    "OrderedDict",
    "collections.deque",
    "deque",
)

#: Constructors producing fork-unsafe module-level values.
_FORK_UNSAFE_CTORS = (
    "open",
    "Recorder",
    "Tracer",
    "get_recorder",
    "get_tracer",
)

#: Methods that mutate their receiver in place.
_MUTATING_METHODS = (
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "appendleft",
    "extendleft",
)


def check_parallel(
    modules: Sequence[SourceModule], det: DeterminismSpec
) -> List[Violation]:
    """Run the parallel-safety rules over already-parsed modules."""
    violations: List[Violation] = []
    for module in modules:
        if det.is_exempt(module.name):
            continue
        aliases = collect_module_aliases(module.tree)
        checker = _ParallelChecker(module, det, aliases)
        if checker.should_run():
            checker.run()
            violations.extend(checker.violations)
    return violations


class _ParallelChecker:
    def __init__(
        self,
        module: SourceModule,
        det: DeterminismSpec,
        aliases: ModuleAliases,
    ) -> None:
        self.module = module
        self.det = det
        self.aliases = aliases
        self.violations: List[Violation] = []
        self.functions: Dict[str, ast.AST] = {}
        self.mutable_globals: Dict[str, int] = {}
        self.unsafe_globals: Dict[str, str] = {}
        self.dispatch_sites: List[Tuple[ast.Call, str, Optional[ast.expr]]] = []

    def should_run(self) -> bool:
        if self.det.is_fork_safe(self.module.name):
            return True
        self._find_dispatch_sites()
        return bool(self.dispatch_sites)

    def run(self) -> None:
        if not self.dispatch_sites:
            self._find_dispatch_sites()
        self._collect_module_scope()
        self._check_unordered_merges()
        workers = self._worker_roots()
        reachable = self._reachable(workers)
        for name in sorted(reachable):
            self._check_worker_body(name, self.functions[name])

    # -- discovery -----------------------------------------------------
    def _find_dispatch_sites(self) -> None:
        for node in ast.walk(self.module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_call_name(node.func)
            if name is None:
                continue
            head, _, member = name.rpartition(".")
            if head and member in _MAP_METHODS:
                worker = node.args[0] if node.args else None
                self.dispatch_sites.append((node, member, worker))
            elif member == "Process":
                in_mp = head in self.aliases.module_names("multiprocessing")
                from_mp = not head and (
                    self.aliases.member_name("multiprocessing", member)
                    == "Process"
                )
                if in_mp or from_mp:
                    target: Optional[ast.expr] = None
                    for kw in node.keywords:
                        if kw.arg == "target":
                            target = kw.value
                    self.dispatch_sites.append((node, member, target))

    def _collect_module_scope(self) -> None:
        for stmt in self.module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = stmt
                continue
            value: Optional[ast.expr] = None
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
            if value is None:
                continue
            kind = self._classify_global(value)
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if kind == "mutable":
                    self.mutable_globals[target.id] = stmt.lineno
                elif kind == "unsafe":
                    self.unsafe_globals[target.id] = _ctor_label(value)

    def _classify_global(self, value: ast.expr) -> Optional[str]:
        if isinstance(value, (ast.List, ast.Dict, ast.Set)):
            return "mutable"
        if isinstance(value, ast.Call):
            name = dotted_call_name(value.func)
            if name in _MUTABLE_CTORS:
                return "mutable"
            if name in _FORK_UNSAFE_CTORS:
                return "unsafe"
        return None

    def _worker_roots(self) -> Set[str]:
        roots: Set[str] = set()
        for site, member, worker in self.dispatch_sites:
            if worker is None:
                continue
            if isinstance(worker, ast.Lambda) or (
                isinstance(worker, ast.Name)
                and worker.id not in self.functions
                and self._is_nested_function(worker.id)
            ):
                self._flag(
                    "parallel-unsafe-capture",
                    worker,
                    f"{member}() dispatches a closure worker; closures "
                    "capture frame state that does not fork/pickle "
                    "cleanly — use a module-level function taking an "
                    "explicit payload",
                )
                continue
            if isinstance(worker, ast.Name) and worker.id in self.functions:
                roots.add(worker.id)
        return roots

    def _is_nested_function(self, name: str) -> bool:
        for node in ast.walk(self.module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == name
            ):
                return True
        return False

    def _reachable(self, roots: Set[str]) -> Set[str]:
        """Same-module call-graph closure over bare-name calls."""
        seen: Set[str] = set()
        frontier = sorted(name for name in roots if name in self.functions)
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            for node in ast.walk(self.functions[name]):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Name
                ):
                    callee = node.func.id
                    if callee in self.functions and callee not in seen:
                        frontier.append(callee)
        return seen

    # -- checks --------------------------------------------------------
    def _check_unordered_merges(self) -> None:
        for site, member, _worker in self.dispatch_sites:
            if member in _UNORDERED_METHODS or member == "apply_async":
                self._flag(
                    "parallel-unordered-merge",
                    site,
                    f"{member}() yields results in completion order; merge "
                    "by shard index (pool.map / imap with enumerate) so the "
                    "artifact is worker-count-invariant",
                )
        # as_completed is a free function, not a pool method.
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.Call):
                name = dotted_call_name(node.func)
                bare = name.rpartition(".")[2] if name else None
                if bare == "as_completed":
                    self._flag(
                        "parallel-unordered-merge",
                        node,
                        "as_completed() yields futures in completion order; "
                        "index results by shard instead",
                    )

    def _check_worker_body(self, name: str, func: ast.AST) -> None:
        local_shadows = self._local_names(func)
        for node in ast.walk(func):
            self._check_global_write(name, node, local_shadows)
            self._check_unsafe_read(name, node, local_shadows)

    def _local_names(self, func: ast.AST) -> Set[str]:
        """Parameter and plain-assignment names that shadow globals."""
        names: Set[str] = set()
        args = getattr(func, "args", None)
        if args is not None:
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ]:
                names.add(arg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.Global):
                names.difference_update(node.names)
        return names

    def _check_global_write(
        self, worker: str, node: ast.AST, shadows: Set[str]
    ) -> None:
        target: Optional[str] = None
        how = ""
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            raw_targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for t in raw_targets:
                if isinstance(t, ast.Subscript) and isinstance(
                    t.value, ast.Name
                ):
                    target, how = t.value.id, "subscript-assigns"
        if isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Name
        ):
            target, how = node.target.id, "aug-assigns"
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _MUTATING_METHODS and isinstance(
                node.func.value, ast.Name
            ):
                target, how = node.func.value.id, f"calls .{node.func.attr} on"
        if isinstance(node, ast.Global):
            for gname in node.names:
                if gname in self.mutable_globals or gname in self.functions:
                    target, how = gname, "declares global"
        if target is None or target not in self.mutable_globals:
            return
        if how != "declares global" and target in shadows:
            return
        self._flag(
            "parallel-global-write",
            node,
            f"worker-reachable {worker}() {how} module-level "
            f"{target!r} (defined line {self.mutable_globals[target]}); "
            "fork workers mutate private copies — return results instead, "
            "or noqa with a per-process justification",
        )

    def _check_unsafe_read(
        self, worker: str, node: ast.AST, shadows: Set[str]
    ) -> None:
        if not isinstance(node, ast.Name) or not isinstance(
            node.ctx, ast.Load
        ):
            return
        if node.id in shadows or node.id not in self.unsafe_globals:
            return
        label = self.unsafe_globals[node.id]
        self._flag(
            "parallel-unsafe-capture",
            node,
            f"worker-reachable {worker}() reads module-level {node.id!r} "
            f"(a {label} result); open handles and live recorders do not "
            "survive fork — construct them inside the worker",
        )

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                rule=rule,
                path=self.module.path,
                line=getattr(node, "lineno", 0),
                message=f"{self.module.name}: {message}",
            )
        )


def _ctor_label(value: ast.expr) -> str:
    if isinstance(value, ast.Call):
        name = dotted_call_name(value.func)
        if name:
            return f"{name}()"
    return "fork-unsafe constructor"
