"""RNG-flow rules: every random draw must come from an owned, seeded
``random.Random`` instance.

Applied to modules whose determinism contract is ``deterministic``.
Three rules:

``rng-module-state``
    Use of the process-global RNG: calls to module-level ``random.*``
    functions (``random.random()``, ``random.shuffle()``, ...), a
    ``random.Random`` constructed at module scope, or a ``global``
    statement rebinding an RNG-typed name.  Process-global RNG state
    makes results depend on call interleaving across the whole process
    (and across library code), which breaks replay.
``rng-seed-derivation``
    A ``random.Random(seed)`` whose seed expression calls a helper not
    on the ``[rng] blessed`` list in ``determinism.toml``.  Literals,
    variables/attributes, and arithmetic over them are always fine —
    the rule only constrains *calls*, so time-, hash-, or urandom-based
    seeding can't slip in.
``rng-worker-share``
    A name bound to a ``random.Random`` instance appears in the
    argument payload of a worker dispatch (``Pool.map``/``imap``/
    ``starmap``/``apply_async``, executor ``submit``/``map``,
    ``Process(...)``).  RNG objects must not cross process boundaries:
    each worker derives its own substream from a seed, or fork-copied
    state silently diverges from the serial run.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set

from repro.analysis.astutil import (
    ModuleAliases,
    collect_module_aliases,
    dotted_call_name,
)
from repro.analysis.imports import SourceModule
from repro.analysis.report import Violation
from repro.analysis.spec import DeterminismSpec

#: random-module members that are legitimate to reference (types and
#: non-drawing helpers), as opposed to draws from the global instance.
_RANDOM_TYPES = ("Random", "SystemRandom", "getstate", "setstate")

#: Seed-expression calls always allowed besides the blessed helpers.
_SEED_BUILTIN_OK = ("int", "abs", "len")

#: Worker-dispatch methods whose argument payload crosses a process
#: (or thread) boundary.
_DISPATCH_METHODS = (
    "map",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
    "map_async",
    "apply",
    "apply_async",
    "submit",
)


def check_rngflow(
    modules: Sequence[SourceModule], det: DeterminismSpec
) -> List[Violation]:
    """Run the RNG-flow rules over already-parsed modules."""
    violations: List[Violation] = []
    for module in modules:
        if not det.is_deterministic(module.name):
            continue
        aliases = collect_module_aliases(module.tree)
        checker = _RngChecker(module, det, aliases)
        checker.run()
        violations.extend(checker.violations)
    return violations


class _RngChecker:
    def __init__(
        self,
        module: SourceModule,
        det: DeterminismSpec,
        aliases: ModuleAliases,
    ) -> None:
        self.module = module
        self.det = det
        self.aliases = aliases
        self.violations: List[Violation] = []
        self.rng_names: Set[str] = set()

    def run(self) -> None:
        self._collect_rng_names()
        self._check_module_scope_ctors()
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.Call):
                self._check_global_draw(node)
                self._check_seed_derivation(node)
                self._check_dispatch(node)
            elif isinstance(node, ast.Global):
                for name in node.names:
                    if name in self.rng_names:
                        self._flag(
                            "rng-module-state",
                            node,
                            f"'global {name}' rebinds an RNG across calls; "
                            "pass the Random instance explicitly",
                        )

    # -- helpers -------------------------------------------------------
    def _is_rng_ctor(self, node: ast.expr) -> bool:
        """``random.Random(...)`` / ``Random(...)`` (from-import)."""
        if not isinstance(node, ast.Call):
            return False
        name = dotted_call_name(node.func)
        if name is None:
            return False
        head, _, member = name.rpartition(".")
        if member in ("Random", "SystemRandom"):
            if head in self.aliases.module_names("random"):
                return True
            if not head and self.aliases.member_name("random", member) in (
                "Random",
                "SystemRandom",
            ):
                return True
        return False

    def _collect_rng_names(self) -> None:
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.Assign) and self._is_rng_ctor(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.rng_names.add(target.id)
            elif (
                isinstance(node, ast.AnnAssign)
                and node.value is not None
                and self._is_rng_ctor(node.value)
                and isinstance(node.target, ast.Name)
            ):
                self.rng_names.add(node.target.id)

    # -- rng-module-state ---------------------------------------------
    def _check_module_scope_ctors(self) -> None:
        for stmt in self.module.tree.body:
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if value is not None and self._is_rng_ctor(value):
                self._flag(
                    "rng-module-state",
                    stmt,
                    "random.Random constructed at module scope: import-time "
                    "RNG state is shared by every caller — construct it "
                    "where the seed is known",
                )

    def _check_global_draw(self, node: ast.Call) -> None:
        name = dotted_call_name(node.func)
        if name is None:
            return
        head, _, member = name.rpartition(".")
        if head in self.aliases.module_names("random"):
            if member not in _RANDOM_TYPES:
                self._flag(
                    "rng-module-state",
                    node,
                    f"random.{member}() draws from the process-global RNG; "
                    "use an explicitly seeded random.Random instance",
                )
        elif not head:
            imported = self.aliases.member_name("random", name)
            if imported is not None and imported not in _RANDOM_TYPES:
                self._flag(
                    "rng-module-state",
                    node,
                    f"{name}() (from random import {imported}) draws from "
                    "the process-global RNG; use an explicitly seeded "
                    "random.Random instance",
                )

    # -- rng-seed-derivation ------------------------------------------
    def _check_seed_derivation(self, node: ast.Call) -> None:
        if not self._is_rng_ctor(node) or not node.args:
            return
        seed = node.args[0]
        for sub in ast.walk(seed):
            if not isinstance(sub, ast.Call):
                continue
            name = dotted_call_name(sub.func)
            bare = name.rpartition(".")[2] if name else None
            if bare in _SEED_BUILTIN_OK:
                continue
            if bare in self.det.blessed_seed_calls:
                continue
            shown = name if name is not None else "<dynamic>"
            self._flag(
                "rng-seed-derivation",
                sub,
                f"seed expression calls {shown}(), which is not a blessed "
                "seed helper ([rng] blessed in determinism.toml); derive "
                "seeds from config values with arithmetic or a blessed "
                "helper",
            )

    # -- rng-worker-share ---------------------------------------------
    def _check_dispatch(self, node: ast.Call) -> None:
        if not self.rng_names:
            return
        name = dotted_call_name(node.func)
        if name is None:
            return
        head, _, member = name.rpartition(".")
        is_dispatch = bool(head) and member in _DISPATCH_METHODS
        is_process = member == "Process" and (
            head in self.aliases.module_names("multiprocessing") or not head
        )
        if not is_dispatch and not is_process:
            return
        payload: List[ast.expr] = list(node.args)
        payload.extend(
            kw.value for kw in node.keywords if kw.arg in ("args", "iterable")
        )
        for arg in payload:
            for sub in ast.walk(arg):
                if (
                    isinstance(sub, ast.Name)
                    and isinstance(sub.ctx, ast.Load)
                    and sub.id in self.rng_names
                ):
                    self._flag(
                        "rng-worker-share",
                        sub,
                        f"RNG instance {sub.id!r} crosses a worker boundary "
                        f"via {member}(); send a derived seed instead and "
                        "construct the Random inside the worker",
                    )

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                rule=rule,
                path=self.module.path,
                line=getattr(node, "lineno", 0),
                message=f"{self.module.name}: {message}",
            )
        )
