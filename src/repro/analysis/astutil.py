"""Shared AST helpers for the analysis passes.

The determinism, RNG-flow, and parallel-safety passes all need the same
two primitives:

* :class:`ModuleAliases` — which local names a file binds to the stdlib
  modules the rules care about (``random``, ``time``, ``datetime``,
  ``os``, ``math``, ``multiprocessing``, ``concurrent.futures``),
  resolved from both ``import x [as y]`` and ``from x import y [as z]``
  forms.
* :func:`dotted_call_name` — the dotted name of a call target when it is
  statically resolvable (``pool.map`` → ``"pool.map"``,
  ``multiprocessing.Pool`` → ``"multiprocessing.Pool"``), or ``None``
  for dynamic targets.

Everything here is pure stdlib so the analysis package keeps its
bottom-of-the-layering (stdlib + :mod:`repro.errors`) contract.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

#: Modules the passes track aliases for.
_TRACKED_MODULES = (
    "random",
    "time",
    "datetime",
    "os",
    "math",
    "multiprocessing",
    "concurrent.futures",
)


class ModuleAliases:
    """Names one source file binds to the tracked stdlib modules.

    ``modules[m]`` is the set of local names bound to module ``m``
    (``import time as t`` → ``{"t"}``); ``members[m]`` maps local names
    to the member imported from ``m`` (``from time import perf_counter
    as pc`` → ``{"pc": "perf_counter"}``).
    """

    def __init__(self) -> None:
        self.modules: Dict[str, Set[str]] = {
            name: set() for name in _TRACKED_MODULES
        }
        self.members: Dict[str, Dict[str, str]] = {
            name: {} for name in _TRACKED_MODULES
        }

    def module_names(self, module: str) -> Set[str]:
        return self.modules.get(module, set())

    def member_name(self, module: str, bound: str) -> Optional[str]:
        """The imported member a local name refers to, if any."""
        return self.members.get(module, {}).get(bound)


def collect_module_aliases(tree: ast.Module) -> ModuleAliases:
    """Scan every import in ``tree`` (lazy ones included)."""
    aliases = ModuleAliases()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in aliases.modules:
                    # ``import concurrent.futures`` binds ``concurrent``;
                    # the dotted-attribute form is resolved at use sites.
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    aliases.modules[alias.name].add(bound)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module in aliases.members:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    aliases.members[node.module][
                        alias.asname or alias.name
                    ] = alias.name
    return aliases


def dotted_call_name(func: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def build_parent_map(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    """child → parent for every node in ``tree``."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def function_like(node: ast.AST) -> bool:
    return isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
    )
