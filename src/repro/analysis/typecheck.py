"""The scoped ``mypy --strict`` pass behind ``repro lint --types``.

Only the typed core is checked — :mod:`repro.errors`,
:mod:`repro.obs.recorder`, :mod:`repro.analysis` itself,
:mod:`repro.serve.stats`, and :mod:`repro.sweep` (the modules shipping
under the ``py.typed`` marker) — with ``--follow-imports=skip`` so the
numeric solver layers stay out of scope until they are annotated.

mypy ships in the ``dev`` extra; when it is not installed the pass is
skipped with a note and exit code 0, so ``repro lint --types`` degrades
gracefully on minimal environments.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Tuple, Union

#: Paths (relative to the source root holding ``repro/``) under strict
#: checking.  Extend this list as more modules gain full annotations.
TYPED_TARGETS: Tuple[str, ...] = (
    "repro/errors.py",
    "repro/obs/recorder.py",
    "repro/analysis",
    "repro/serve/stats.py",
    "repro/sweep.py",
)

_MYPY_FLAGS: Tuple[str, ...] = (
    "--strict",
    "--follow-imports=skip",
    "--no-error-summary",
    "--no-incremental",
)


def mypy_available() -> bool:
    return importlib.util.find_spec("mypy") is not None


def run_typecheck(
    src_root: Optional[Union[str, Path]] = None,
) -> Tuple[int, str]:
    """Run the scoped strict pass; returns ``(exit_code, output)``.

    ``src_root`` is the directory containing the ``repro`` package
    (default: derived from this installed module's location).
    """
    if src_root is None:
        src_root = Path(__file__).resolve().parent.parent.parent
    src_root = Path(src_root)
    missing = [t for t in TYPED_TARGETS if not (src_root / t).exists()]
    if missing:
        return 2, (
            "types: cannot locate typed targets "
            f"{missing!r} under {src_root}"
        )
    if not mypy_available():
        return 0, (
            "types: mypy is not installed; skipping the scoped --strict "
            "pass (pip install 'repro[dev]' to enable it)"
        )
    command: List[str] = [
        sys.executable,
        "-m",
        "mypy",
        *_MYPY_FLAGS,
        *TYPED_TARGETS,
    ]
    proc = subprocess.run(
        command,
        cwd=src_root,
        capture_output=True,
        text=True,
        check=False,
    )
    output = (proc.stdout + proc.stderr).strip()
    if proc.returncode == 0:
        targets = ", ".join(TYPED_TARGETS)
        return 0, f"types: mypy --strict clean on {targets}"
    return proc.returncode, f"types: mypy --strict failed\n{output}"
