"""The machine-readable layering spec (``docs/layering.toml``).

The spec is the single source of truth the architecture linter checks
against; it is generated from (and cross-referenced with) the module map
in ``docs/ARCHITECTURE.md``.  Schema ``repro-layering/1``:

* ``[layers]`` — dotted module prefix → integer layer.  A module may
  import only modules whose layer is **less than or equal to** its own
  (same-layer imports are allowed; cycles are caught separately).
  Prefixes match on dotted-name boundaries, longest prefix wins.
* ``[rules] stdlib_only`` — modules restricted to the standard library
  (all imports, including lazy function-level ones).
* ``[rules] layering_exempt`` — modules exempt from the layering pass
  (e.g. ``repro.obs.bench``, the documented exception that drives the
  solver layers from inside ``obs/``).
* ``[rules.forbidden]`` — explicit import bans (checked on *every*
  import, lazy ones included), e.g. ``core/`` → ``experiments/``.
* ``[hygiene]`` — scopes for the code-hygiene rules (which subtrees the
  unseeded-RNG and float-equality rules apply to, which are exempt from
  the wall-clock rule).

Parsing uses :mod:`tomllib` when available (Python ≥ 3.11) and falls
back to a small TOML-subset parser otherwise — the spec file
deliberately stays within that subset (string/int/bool scalars and
string arrays, which may span lines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ProblemError

SPEC_SCHEMA = "repro-layering/1"
DETERMINISM_SCHEMA = "repro-determinism/1"

#: Where the specs live, relative to the repository root.
DEFAULT_SPEC_RELPATH = Path("docs") / "layering.toml"
DEFAULT_DETERMINISM_RELPATH = Path("docs") / "determinism.toml"

#: Contract labels a module prefix may declare in ``[modules]``.
_CONTRACTS = ("deterministic", "fork-safe", "exempt")


@dataclass(frozen=True)
class LayeringSpec:
    """Parsed layering spec; see the module docstring for semantics."""

    layers: Dict[str, int]
    stdlib_only: Tuple[str, ...] = ()
    layering_exempt: Tuple[str, ...] = ()
    forbidden: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    unseeded_random_scope: Tuple[str, ...] = ()
    float_equality_scope: Tuple[str, ...] = ()
    wallclock_exempt: Tuple[str, ...] = ()

    def layer_of(self, module: str) -> Optional[int]:
        """Layer of ``module`` by longest dotted-prefix match."""
        best: Optional[int] = None
        best_len = -1
        for prefix, layer in self.layers.items():
            if _is_prefix(prefix, module) and len(prefix) > best_len:
                best = layer
                best_len = len(prefix)
        return best

    def in_scope(self, module: str, prefixes: Sequence[str]) -> bool:
        """True when ``module`` falls under any of ``prefixes``."""
        return any(_is_prefix(prefix, module) for prefix in prefixes)


def _is_prefix(prefix: str, module: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


def load_spec(path: Union[str, Path]) -> LayeringSpec:
    """Load and validate a ``repro-layering/1`` spec file."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ProblemError(f"layering spec {path}: {exc}") from exc
    data = _parse_toml(text)
    schema = data.get("schema")
    if schema != SPEC_SCHEMA:
        raise ProblemError(
            f"layering spec {path}: schema {schema!r}, expected {SPEC_SCHEMA!r}"
        )
    raw_layers = data.get("layers")
    if not isinstance(raw_layers, Mapping) or not raw_layers:
        raise ProblemError(f"layering spec {path}: missing [layers] table")
    layers: Dict[str, int] = {}
    for module, layer in raw_layers.items():
        if not isinstance(layer, int) or isinstance(layer, bool):
            raise ProblemError(
                f"layering spec {path}: layer of {module!r} must be an "
                f"integer, got {layer!r}"
            )
        layers[str(module)] = layer
    rules = data.get("rules", {})
    if not isinstance(rules, Mapping):
        raise ProblemError(f"layering spec {path}: [rules] must be a table")
    forbidden_raw = rules.get("forbidden", {})
    if not isinstance(forbidden_raw, Mapping):
        raise ProblemError(
            f"layering spec {path}: [rules.forbidden] must be a table"
        )
    forbidden = {
        str(source): _str_tuple(targets)
        for source, targets in forbidden_raw.items()
    }
    hygiene = data.get("hygiene", {})
    if not isinstance(hygiene, Mapping):
        raise ProblemError(f"layering spec {path}: [hygiene] must be a table")
    return LayeringSpec(
        layers=layers,
        stdlib_only=_str_tuple(rules.get("stdlib_only", [])),
        layering_exempt=_str_tuple(rules.get("layering_exempt", [])),
        forbidden=forbidden,
        unseeded_random_scope=_str_tuple(hygiene.get("unseeded_random", [])),
        float_equality_scope=_str_tuple(hygiene.get("float_equality", [])),
        wallclock_exempt=_str_tuple(hygiene.get("wallclock_exempt", [])),
    )


def _str_tuple(value: Any) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)):
        raise ProblemError(f"expected a list of strings, got {value!r}")
    return tuple(str(item) for item in value)


# ----------------------------------------------------------------------
# Determinism contracts (docs/determinism.toml, repro-determinism/1).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeterminismSpec:
    """Parsed determinism contracts; see ``docs/determinism.toml``.

    ``modules`` maps dotted module prefixes to contract-label tuples
    (``deterministic`` / ``fork-safe`` / ``exempt``); a module inherits
    the contracts of its longest matching prefix.  ``wallclock_allow``
    and ``env_allow`` scope the clock/env rules; ``blessed_seed_calls``
    names the helpers a ``random.Random`` seed expression may call.
    """

    modules: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    wallclock_allow: Tuple[str, ...] = ()
    env_allow: Tuple[str, ...] = ()
    blessed_seed_calls: Tuple[str, ...] = ()

    def contracts_of(self, module: str) -> Tuple[str, ...]:
        """Contracts of ``module`` by longest dotted-prefix match."""
        best: Tuple[str, ...] = ()
        best_len = -1
        for prefix, contracts in self.modules.items():
            if _is_prefix(prefix, module) and len(prefix) > best_len:
                best = contracts
                best_len = len(prefix)
        return best

    def is_exempt(self, module: str) -> bool:
        return "exempt" in self.contracts_of(module)

    def is_deterministic(self, module: str) -> bool:
        contracts = self.contracts_of(module)
        return "deterministic" in contracts and "exempt" not in contracts

    def is_fork_safe(self, module: str) -> bool:
        contracts = self.contracts_of(module)
        return "fork-safe" in contracts and "exempt" not in contracts

    def allows_wallclock(self, module: str) -> bool:
        return any(_is_prefix(p, module) for p in self.wallclock_allow)

    def allows_env(self, module: str) -> bool:
        return any(_is_prefix(p, module) for p in self.env_allow)


def load_determinism_spec(path: Union[str, Path]) -> DeterminismSpec:
    """Load and validate a ``repro-determinism/1`` contracts file."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ProblemError(f"determinism spec {path}: {exc}") from exc
    data = _parse_toml(text)
    schema = data.get("schema")
    if schema != DETERMINISM_SCHEMA:
        raise ProblemError(
            f"determinism spec {path}: schema {schema!r}, "
            f"expected {DETERMINISM_SCHEMA!r}"
        )
    raw_modules = data.get("modules")
    if not isinstance(raw_modules, Mapping) or not raw_modules:
        raise ProblemError(
            f"determinism spec {path}: missing [modules] table"
        )
    modules: Dict[str, Tuple[str, ...]] = {}
    for module, contracts in raw_modules.items():
        labels = _str_tuple(contracts)
        for label in labels:
            if label not in _CONTRACTS:
                raise ProblemError(
                    f"determinism spec {path}: unknown contract {label!r} "
                    f"on {module!r} (expected one of {_CONTRACTS})"
                )
        modules[str(module)] = labels
    allowlist = data.get("allowlist", {})
    if not isinstance(allowlist, Mapping):
        raise ProblemError(
            f"determinism spec {path}: [allowlist] must be a table"
        )
    rng = data.get("rng", {})
    if not isinstance(rng, Mapping):
        raise ProblemError(f"determinism spec {path}: [rng] must be a table")
    return DeterminismSpec(
        modules=modules,
        wallclock_allow=_str_tuple(allowlist.get("wallclock", [])),
        env_allow=_str_tuple(allowlist.get("env", [])),
        blessed_seed_calls=_str_tuple(rng.get("blessed", [])),
    )


# ----------------------------------------------------------------------
# TOML loading: tomllib when available, a strict subset parser otherwise.
# ----------------------------------------------------------------------
def _parse_toml(text: str) -> Dict[str, Any]:
    try:
        import tomllib
    except ImportError:  # Python < 3.11
        return _parse_toml_subset(text)
    return tomllib.loads(text)


def _parse_toml_subset(text: str) -> Dict[str, Any]:
    """Parse the TOML subset the layering spec restricts itself to.

    Supported: ``[dotted.tables]``, bare/quoted keys, string / integer /
    boolean scalars, and arrays of strings (single- or multi-line).
    Anything else raises, which keeps the spec honest on Python 3.9/3.10.
    """
    root: Dict[str, Any] = {}
    table = root
    for lineno, line in _logical_lines(text):
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            table = root
            for part in _split_table_name(line[1:-1], lineno):
                table = table.setdefault(part, {})
                if not isinstance(table, dict):
                    raise ProblemError(
                        f"layering spec line {lineno}: {part!r} is not a table"
                    )
            continue
        if "=" not in line:
            raise ProblemError(
                f"layering spec line {lineno}: expected 'key = value'"
            )
        key_text, value_text = line.split("=", 1)
        table[_parse_key(key_text.strip(), lineno)] = _parse_value(
            value_text.strip(), lineno
        )
    return root


def _logical_lines(text: str) -> List[Tuple[int, str]]:
    """Comment-stripped lines, with multi-line arrays joined into one.

    A line whose value opens a ``[`` array without closing it absorbs
    subsequent lines until the bracket balance returns to zero, so the
    spec can format long arrays one item per line.
    """
    lines: List[Tuple[int, str]] = []
    pending: Optional[Tuple[int, str]] = None
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if pending is not None:
            start, joined = pending
            joined = joined + " " + line
            if _bracket_balance(joined) <= 0:
                lines.append((start, joined))
                pending = None
            else:
                pending = (start, joined)
            continue
        if "=" in line and _bracket_balance(line) > 0:
            pending = (lineno, line)
            continue
        lines.append((lineno, line))
    if pending is not None:
        raise ProblemError(
            f"layering spec line {pending[0]}: unterminated array"
        )
    return lines


def _bracket_balance(line: str) -> int:
    balance = 0
    in_string = False
    for char in line:
        if char == '"':
            in_string = not in_string
        elif not in_string:
            if char == "[":
                balance += 1
            elif char == "]":
                balance -= 1
    return balance


def _strip_comment(line: str) -> str:
    in_string = False
    for index, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:index]
    return line


def _split_table_name(name: str, lineno: int) -> List[str]:
    parts = [_parse_key(part.strip(), lineno) for part in name.split(".")]
    if not all(parts):
        raise ProblemError(f"layering spec line {lineno}: empty table name")
    return parts


def _parse_key(key: str, lineno: int) -> str:
    if len(key) >= 2 and key[0] == '"' and key[-1] == '"':
        return key[1:-1]
    if key and all(c.isalnum() or c in "-_" for c in key):
        return key
    raise ProblemError(f"layering spec line {lineno}: bad key {key!r}")


def _parse_value(value: str, lineno: int) -> Any:
    if value.startswith("[") and value.endswith("]"):
        inner = value[1:-1].strip()
        if not inner:
            return []
        items = [item.strip() for item in inner.split(",")]
        return [
            _parse_scalar(item, lineno) for item in items if item
        ]
    return _parse_scalar(value, lineno)


def _parse_scalar(value: str, lineno: int) -> Any:
    if len(value) >= 2 and value[0] == '"' and value[-1] == '"':
        return value[1:-1]
    if value in ("true", "false"):
        return value == "true"
    try:
        return int(value)
    except ValueError:
        raise ProblemError(
            f"layering spec line {lineno}: unsupported value {value!r} "
            "(the spec restricts itself to strings, ints, booleans, and "
            "string arrays)"
        ) from None
