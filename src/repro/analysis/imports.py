"""Architecture linter: AST import walker + layering/cycle/stdlib checks.

Works on :class:`SourceModule` snapshots (one parsed file each) produced
by :mod:`repro.analysis.linter`.  Four rules:

* ``layering`` — a module-level import reaches a *higher* layer than the
  importer's (per ``docs/layering.toml``).  Function-scoped (lazy)
  imports are the sanctioned escape hatch and are not flagged.
* ``cycle`` — a strongly connected component of size > 1 (or a
  self-import) in the module-level import graph.
* ``stdlib-only`` — a module listed in ``[rules] stdlib_only`` imports
  anything outside the standard library (lazy imports included).  Other
  modules in the ``stdlib_only`` scope are allowed targets: the rule
  guards the *transitive* dependency-free property, which importing
  another dependency-free module preserves.
* ``forbidden-import`` — an import matches an explicit ban from
  ``[rules.forbidden]`` (lazy imports included).
* ``unassigned-module`` — a first-party module has no layer in the
  spec, which would silently exempt it from the layering pass.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.report import Violation
from repro.analysis.spec import LayeringSpec


@dataclass(frozen=True)
class SourceModule:
    """One parsed first-party source file."""

    name: str
    path: str
    tree: ast.Module
    lines: Tuple[str, ...]
    is_package: bool = False


@dataclass(frozen=True)
class ImportEdge:
    """One import statement: ``module`` imports ``target`` at ``line``."""

    module: str
    target: str
    line: int
    lazy: bool


def collect_imports(module: SourceModule) -> List[ImportEdge]:
    """All imports of ``module``; function-scoped ones are marked lazy."""
    edges: List[ImportEdge] = []

    def visit(node: ast.AST, lazy: bool) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                edges.append(
                    ImportEdge(module.name, alias.name, node.lineno, lazy)
                )
            return
        if isinstance(node, ast.ImportFrom):
            base = _resolve_from(module.name, module.is_package, node)
            if base:
                edges.append(
                    ImportEdge(module.name, base, node.lineno, lazy)
                )
                # ``from pkg import sub`` may bind a submodule, not a
                # symbol; emit the deeper edge too so layering, cycle,
                # and forbidden checks see it.  Symbol names resolve to
                # their base module's layer via prefix matching, so the
                # extra edges are harmless when the name is not a module.
                for alias in node.names:
                    if alias.name != "*":
                        edges.append(
                            ImportEdge(
                                module.name,
                                f"{base}.{alias.name}",
                                node.lineno,
                                lazy,
                            )
                        )
            return
        nested_lazy = lazy or isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ) or _is_type_checking_guard(node)
        for child in ast.iter_child_nodes(node):
            visit(child, nested_lazy)

    for top in module.tree.body:
        visit(top, False)
    return edges


def _is_type_checking_guard(node: ast.AST) -> bool:
    """True for ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:`` blocks
    — annotation-only imports, never executed at runtime."""
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _resolve_from(
    module_name: str, is_package: bool, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute target of a ``from ... import`` (handles relative levels)."""
    if node.level == 0:
        return node.module
    parts = module_name.split(".")
    # Level 1 resolves against the containing package: the module itself
    # for a package __init__, its parent for a plain module.
    drop = node.level - 1 if is_package else node.level
    base = parts[: len(parts) - drop] if drop else parts
    if node.module:
        return ".".join(base + node.module.split("."))
    return ".".join(base) if base else None


def first_party_prefix(modules: Sequence[SourceModule]) -> str:
    """The shared root package name (``repro`` in this tree)."""
    if not modules:
        return ""
    return modules[0].name.split(".", 1)[0]


def check_architecture(
    modules: Sequence[SourceModule], spec: LayeringSpec
) -> List[Violation]:
    """Run every architecture rule over the module set."""
    violations: List[Violation] = []
    edges_by_module = {m.name: collect_imports(m) for m in modules}
    paths = {m.name: m.path for m in modules}
    root = first_party_prefix(modules)

    violations.extend(
        _check_layering(modules, edges_by_module, spec, root)
    )
    violations.extend(
        _check_forbidden(modules, edges_by_module, spec)
    )
    violations.extend(
        _check_stdlib_only(modules, edges_by_module, spec, root)
    )
    violations.extend(
        _check_cycles(set(paths), edges_by_module, paths)
    )
    return violations


def _check_layering(
    modules: Sequence[SourceModule],
    edges_by_module: Dict[str, List[ImportEdge]],
    spec: LayeringSpec,
    root: str,
) -> List[Violation]:
    violations: List[Violation] = []
    for module in modules:
        if spec.in_scope(module.name, spec.layering_exempt):
            continue
        own_layer = spec.layer_of(module.name)
        if own_layer is None:
            violations.append(
                Violation(
                    "unassigned-module",
                    module.path,
                    1,
                    f"module {module.name} has no layer in the spec; add it "
                    "to [layers] in docs/layering.toml",
                )
            )
            continue
        for edge in edges_by_module[module.name]:
            if edge.lazy or not _is_first_party(edge.target, root):
                continue
            target_layer = spec.layer_of(edge.target)
            if target_layer is None:
                continue  # the target's own unassigned-module row covers it
            if target_layer > own_layer:
                violations.append(
                    Violation(
                        "layering",
                        module.path,
                        edge.line,
                        f"{module.name} (layer {own_layer}) imports "
                        f"{edge.target} (layer {target_layer}): upward "
                        "imports are banned; use a lazy function-level "
                        "import if the dependency is genuinely one-shot",
                    )
                )
    return violations


def _check_forbidden(
    modules: Sequence[SourceModule],
    edges_by_module: Dict[str, List[ImportEdge]],
    spec: LayeringSpec,
) -> List[Violation]:
    violations: List[Violation] = []
    for module in modules:
        for edge in edges_by_module[module.name]:
            for source, targets in spec.forbidden.items():
                if not spec.in_scope(module.name, [source]):
                    continue
                if spec.in_scope(edge.target, list(targets)):
                    violations.append(
                        Violation(
                            "forbidden-import",
                            module.path,
                            edge.line,
                            f"{module.name} imports {edge.target}: "
                            f"{source} -> {_match_of(edge.target, targets)} "
                            "is explicitly banned by docs/layering.toml",
                        )
                    )
    return violations


def _match_of(target: str, prefixes: Iterable[str]) -> str:
    for prefix in prefixes:
        if target == prefix or target.startswith(prefix + "."):
            return prefix
    return target


def _check_stdlib_only(
    modules: Sequence[SourceModule],
    edges_by_module: Dict[str, List[ImportEdge]],
    spec: LayeringSpec,
    root: str,
) -> List[Violation]:
    stdlib: Set[str] = set(getattr(sys, "stdlib_module_names", ()))
    violations: List[Violation] = []
    for module in modules:
        if not spec.in_scope(module.name, spec.stdlib_only):
            continue
        seen: Set[Tuple[int, str]] = set()
        for edge in edges_by_module[module.name]:
            top = edge.target.split(".", 1)[0]
            if _is_first_party(edge.target, root) and spec.in_scope(
                edge.target, spec.stdlib_only
            ):
                # Importing another stdlib-only module keeps the importer
                # transitively dependency-free.
                continue
            if stdlib and top in stdlib and not _is_first_party(edge.target, root):
                continue
            if not stdlib and not _is_first_party(edge.target, root):
                continue  # Python < 3.10: only first-party imports checkable
            if (edge.line, top) in seen:
                continue  # base + submodule edges of one from-import
            seen.add((edge.line, top))
            violations.append(
                Violation(
                    "stdlib-only",
                    module.path,
                    edge.line,
                    f"{module.name} must stay standard-library-only but "
                    f"imports {edge.target}",
                )
            )
    return violations


def _is_first_party(target: str, root: str) -> bool:
    return bool(root) and (target == root or target.startswith(root + "."))


def _check_cycles(
    module_names: Set[str],
    edges_by_module: Dict[str, List[ImportEdge]],
    paths: Dict[str, str],
) -> List[Violation]:
    """Tarjan SCCs over the module-level import graph (lazy edges excluded).

    Edges to an *ancestor package* are skipped: importing any submodule
    already executes every ancestor ``__init__``, so those edges are
    implicit and unavoidable, not design choices.  Self-edges from a
    package ``__init__`` importing its own submodules by name
    (``from repro.experiments import fig1``) are skipped for the same
    reason.
    """
    graph: Dict[str, List[str]] = {name: [] for name in module_names}
    for name, edges in edges_by_module.items():
        for edge in edges:
            if edge.lazy or edge.target not in module_names:
                continue
            if name == edge.target or name.startswith(edge.target + "."):
                continue  # self- or ancestor-package edge
            graph[name].append(edge.target)

    index_counter = [0]
    stack: List[str] = []
    on_stack: Set[str] = set()
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    sccs: List[List[str]] = []

    def strongconnect(node: str) -> None:
        # Iterative Tarjan: (node, iterator-position) frames.
        work = [(node, 0)]
        while work:
            current, child_index = work.pop()
            if child_index == 0:
                index[current] = index_counter[0]
                lowlink[current] = index_counter[0]
                index_counter[0] += 1
                stack.append(current)
                on_stack.add(current)
            recurse = False
            children = graph[current]
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index:
                    work.append((current, position + 1))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    lowlink[current] = min(lowlink[current], index[child])
            if recurse:
                continue
            if lowlink[current] == index[current]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                sccs.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])

    for name in sorted(graph):
        if name not in index:
            strongconnect(name)

    violations: List[Violation] = []
    for component in sccs:
        if len(component) < 2:
            continue
        members = sorted(component)
        anchor = members[0]
        violations.append(
            Violation(
                "cycle",
                paths[anchor],
                1,
                "import cycle: " + " <-> ".join(members),
            )
        )
    return violations
