"""Serialize placements and problems to/from JSON.

A downstream user running the solvers on real deployments needs to save
placements (ship them to devices, archive experiment artifacts, diff runs).
The format is plain JSON; node labels are serialized through a reversible
tagged encoding so the common label types (int, str, tuples of those)
round-trip exactly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Hashable, List

from repro.errors import ProblemError
from repro.graphs.graph import Graph
from repro.core.placement import CachePlacement, ChunkPlacement, StageCost, edge_key
from repro.core.problem import CachingProblem

Node = Hashable

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Node-label encoding: JSON object keys must be strings, and tuples don't
# exist in JSON — tag every label with its type so decoding is exact.
# ----------------------------------------------------------------------
def encode_node(node: Node) -> Any:
    """Encode a node label into a JSON-safe tagged value."""
    if isinstance(node, bool):  # bool is an int subtype; keep it distinct
        return {"t": "bool", "v": node}
    if isinstance(node, int):
        return {"t": "int", "v": node}
    if isinstance(node, float):
        return {"t": "float", "v": node}
    if isinstance(node, str):
        return {"t": "str", "v": node}
    if isinstance(node, tuple):
        return {"t": "tuple", "v": [encode_node(item) for item in node]}
    raise ProblemError(
        f"cannot serialize node label of type {type(node).__name__}"
    )


def decode_node(payload: Any) -> Node:
    """Invert :func:`encode_node`."""
    if not isinstance(payload, dict) or "t" not in payload:
        raise ProblemError(f"malformed node payload: {payload!r}")
    tag, value = payload["t"], payload.get("v")
    if tag == "bool":
        return bool(value)
    if tag == "int":
        return int(value)
    if tag == "float":
        return float(value)
    if tag == "str":
        return str(value)
    if tag == "tuple":
        return tuple(decode_node(item) for item in value)
    raise ProblemError(f"unknown node tag {tag!r}")


# ----------------------------------------------------------------------
# Graph / problem / placement codecs
# ----------------------------------------------------------------------
def graph_to_dict(graph: Graph) -> Dict[str, Any]:
    return {
        "nodes": [encode_node(n) for n in graph.nodes()],
        "edges": [
            [encode_node(u), encode_node(v), w] for u, v, w in graph.edges()
        ],
    }


def graph_from_dict(payload: Dict[str, Any]) -> Graph:
    graph = Graph()
    for node in payload["nodes"]:
        graph.add_node(decode_node(node))
    for u, v, w in payload["edges"]:
        graph.add_edge(decode_node(u), decode_node(v), float(w))
    return graph


def problem_to_dict(problem: CachingProblem) -> Dict[str, Any]:
    storage = problem.new_storage()
    return {
        "graph": graph_to_dict(problem.graph),
        "producer": encode_node(problem.producer),
        "num_chunks": problem.num_chunks,
        "capacity": [
            [encode_node(n), storage.capacity(n)] for n in storage.nodes()
        ],
        "fairness_weight": problem.fairness_weight,
        "contention_weight": problem.contention_weight,
        "dissemination_scale": problem.dissemination_scale,
        "path_policy": problem.path_policy,
    }


def problem_from_dict(payload: Dict[str, Any]) -> CachingProblem:
    capacity = {
        decode_node(node): int(cap) for node, cap in payload["capacity"]
    }
    return CachingProblem(
        graph=graph_from_dict(payload["graph"]),
        producer=decode_node(payload["producer"]),
        num_chunks=int(payload["num_chunks"]),
        capacity=capacity,
        fairness_weight=float(payload["fairness_weight"]),
        contention_weight=float(payload["contention_weight"]),
        dissemination_scale=float(payload["dissemination_scale"]),
        path_policy=payload["path_policy"],
    )


def placement_to_dict(placement: CachePlacement) -> Dict[str, Any]:
    """Serialize a placement (problem included) to JSON-safe primitives."""
    chunks: List[Dict[str, Any]] = []
    for chunk in placement.chunks:
        chunks.append(
            {
                "chunk": chunk.chunk,
                "caches": [encode_node(n) for n in sorted(chunk.caches, key=str)],
                "assignment": [
                    [encode_node(c), encode_node(s)]
                    for c, s in chunk.assignment.items()
                ],
                "tree_edges": [
                    [encode_node(u), encode_node(v)]
                    for u, v in (tuple(key) for key in chunk.tree_edges)
                ],
                "stage_cost": {
                    "fairness": chunk.stage_cost.fairness,
                    "access": chunk.stage_cost.access,
                    "dissemination": chunk.stage_cost.dissemination,
                },
            }
        )
    return {
        "format_version": FORMAT_VERSION,
        "algorithm": placement.algorithm,
        "problem": problem_to_dict(placement.problem),
        "chunks": chunks,
    }


def placement_from_dict(payload: Dict[str, Any]) -> CachePlacement:
    """Invert :func:`placement_to_dict`; validates the result."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ProblemError(
            f"unsupported placement format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    problem = problem_from_dict(payload["problem"])
    chunks: List[ChunkPlacement] = []
    for entry in payload["chunks"]:
        stage = entry["stage_cost"]
        chunks.append(
            ChunkPlacement(
                chunk=int(entry["chunk"]),
                caches=frozenset(decode_node(n) for n in entry["caches"]),
                assignment={
                    decode_node(c): decode_node(s)
                    for c, s in entry["assignment"]
                },
                tree_edges=frozenset(
                    edge_key(decode_node(u), decode_node(v))
                    for u, v in entry["tree_edges"]
                ),
                stage_cost=StageCost(
                    fairness=float(stage["fairness"]),
                    access=float(stage["access"]),
                    dissemination=float(stage["dissemination"]),
                ),
            )
        )
    placement = CachePlacement(
        problem=problem, chunks=chunks, algorithm=payload.get("algorithm", "")
    )
    placement.validate()
    return placement


def save_placement(placement: CachePlacement, path: str) -> None:
    """Write a placement (with its problem) to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(placement_to_dict(placement), handle, indent=1)


def load_placement(path: str) -> CachePlacement:
    """Read a placement back; raises on malformed/infeasible content."""
    with open(path, "r", encoding="utf-8") as handle:
        return placement_from_dict(json.load(handle))
