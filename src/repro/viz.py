"""Plain-text visualizations of placements (Fig. 1-style load maps).

The paper's Fig. 1 draws per-node circles sized by how much a node's
cached-chunk count deviates from the optimum.  These helpers render the
same information as monospace text so examples, the CLI and experiment
logs can show placements without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Sequence

from repro.core.placement import CachePlacement

Node = Hashable


def render_grid_loads(
    side: int,
    loads: Mapping[int, int],
    producer: Optional[int] = None,
    cell_width: int = 3,
) -> str:
    """Render per-node loads of a ``side × side`` grid (row-major labels).

    The producer cell shows ``*``; empty nodes show ``.``.

    >>> print(render_grid_loads(2, {0: 1, 1: 0, 2: 2, 3: 0}, producer=3))
      1  .
      2  *
    """
    if side < 1:
        raise ValueError("side must be positive")
    lines = []
    for row in range(side):
        cells = []
        for col in range(side):
            node = row * side + col
            if node == producer:
                text = "*"
            else:
                load = loads.get(node, 0)
                text = str(load) if load else "."
            cells.append(text.rjust(cell_width))
        lines.append("".join(cells))
    return "\n".join(lines)


def render_grid_placement(
    placement: CachePlacement, side: Optional[int] = None
) -> str:
    """Load map of a grid placement (side inferred from the node count)."""
    problem = placement.problem
    if side is None:
        count = problem.graph.num_nodes
        side = int(round(count ** 0.5))
        if side * side != count:
            raise ValueError(
                f"{count} nodes is not a square grid; pass side explicitly"
            )
    return render_grid_loads(side, placement.loads(), problem.producer)


def render_load_histogram(
    loads: Sequence[int], width: int = 40, label: str = "chunks"
) -> str:
    """Horizontal histogram of load frequencies.

    >>> print(render_load_histogram([0, 1, 1, 2], width=4))
    0 chunks | 1 node(s)  ##
    1 chunks | 2 node(s)  ####
    2 chunks | 1 node(s)  ##
    """
    if width < 1:
        raise ValueError("width must be positive")
    counts: Dict[int, int] = {}
    for load in loads:
        counts[load] = counts.get(load, 0) + 1
    if not counts:
        return "(no nodes)"
    peak = max(counts.values())
    lines = []
    for load in sorted(counts):
        bar = "#" * max(1, round(width * counts[load] / peak))
        lines.append(f"{load} {label} | {counts[load]} node(s)  {bar}")
    return "\n".join(lines)


def render_delta_map(
    side: int,
    loads: Mapping[int, int],
    reference: Mapping[int, int],
    producer: Optional[int] = None,
    cell_width: int = 4,
) -> str:
    """Fig. 1 proper: signed per-node difference from a reference placement.

    Zero differences render as ``.``, the producer as ``*``.
    """
    if side < 1:
        raise ValueError("side must be positive")
    lines = []
    for row in range(side):
        cells = []
        for col in range(side):
            node = row * side + col
            if node == producer:
                text = "*"
            else:
                delta = loads.get(node, 0) - reference.get(node, 0)
                text = f"{delta:+d}" if delta else "."
            cells.append(text.rjust(cell_width))
        lines.append("".join(cells))
    return "\n".join(lines)
