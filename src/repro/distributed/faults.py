"""Fault injection for Algorithm 2: the radio between nodes and simulator.

The Table II protocol was grown on a reliable, in-order, churn-free
simulator.  A pervasive-edge radio environment offers none of that, so
this module interposes a :class:`FaultPlane` between the protocol
(:mod:`repro.distributed.protocol`) and the discrete-event
:class:`~repro.distributed.simulator.Simulator`.  Every control-message
delivery — unicasts *and* the per-destination legs of the NPI / CC /
BADMIN floods — funnels through the plane, which can:

* **drop** it: per-link Bernoulli loss with probability ``loss_rate``
  (seeded, deterministic);
* **reorder** it: a uniform latency jitter in ``[0, jitter)`` is added to
  the hop latency, so two messages on the same link may arrive out of
  send order;
* **never start it**: nodes leave and join the network on a scheduled
  ``churn_schedule``; an offline node neither transmits nor receives, and
  its per-tick state machine is paused by the session;
* **retry it**: when ``retx_timeout > 0`` every delivery is acknowledged
  by the receiver; an unacknowledged message is retransmitted with
  exponential backoff (``retx_timeout * 2**attempt``) up to
  ``max_retries`` times before the sender gives up.  Retransmissions
  reuse the original per-message sequence number
  (:class:`~repro.distributed.messages.Message.seq`), and receivers
  suppress duplicates through a per-node seen-set, so the node state
  machines observe each logical message at most once.

Operating modes
---------------
The plane resolves one of three modes from the config, so the fault
machinery is provably absent when unused:

``PASSTHROUGH``
    No faults configured.  Every call reduces to exactly the pre-fault
    code path — record the stats, trace, ``sim.schedule(hops *
    hop_latency, handler)`` — consuming no randomness and scheduling no
    extra events.  Placements and :class:`MessageStats` are
    byte-identical to a build without this module (tested against a
    golden snapshot in ``tests/test_faults.py``).

``LEGACY_LOSS``
    Only ``loss_rate`` is set (the pre-existing knob): unicast control
    messages (TIGHT / SPAN / FREEZE / NADMIN) are dropped with the
    historical RNG stream (``random.Random(loss_seed * 1_000_003 +
    chunk)``, one draw per unicast) while floods stay reliable —
    bit-compatible with the previous releases' loss injection.

``FULL``
    ``jitter``, ``churn_schedule`` or ``retx_timeout`` engaged: every
    delivery (floods included) is subject to loss, jitter, churn and —
    when enabled — acknowledged retransmission.  ``loss_rate = 1.0`` is
    legal here: the retry budget bounds the work and the session
    terminates with a partial-placement report instead of hanging.

Fault accounting lives in :class:`FaultStats` (mirrored into
``protocol.drops`` / ``protocol.retx.*`` / ``faults.churn.*`` recorder
counters at session end) — never in :class:`MessageStats`, whose Table II
census counts only messages the protocol actually delivered.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set

from repro.errors import SimulationError
from repro.distributed.messages import MessageStats
from repro.distributed.simulator import EventHandle, Simulator
from repro.obs import get_recorder

Node = Hashable
Handler = Callable[[], None]

PASSTHROUGH = "passthrough"
LEGACY_LOSS = "legacy-loss"
FULL = "full"

LEAVE = "leave"
JOIN = "join"


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled membership change: ``node`` leaves or joins at
    ``time`` (simulation seconds).  The producer may never leave — it is
    the data source and the protocol's termination anchor."""

    time: float
    node: Node
    kind: str  # LEAVE | JOIN

    def validate(self) -> None:
        if self.kind not in (LEAVE, JOIN):
            raise SimulationError(
                f"churn event kind must be {LEAVE!r} or {JOIN!r}, "
                f"got {self.kind!r}"
            )
        if self.time < 0:
            raise SimulationError(
                f"churn event time must be >= 0, got {self.time}"
            )


def normalize_churn(schedule: Sequence) -> List[ChurnEvent]:
    """Accept ``ChurnEvent`` instances or ``(time, node, kind)`` tuples."""
    events: List[ChurnEvent] = []
    for entry in schedule:
        if isinstance(entry, ChurnEvent):
            event = entry
        else:
            try:
                time, node, kind = entry
            except (TypeError, ValueError):
                raise SimulationError(
                    "churn_schedule entries must be ChurnEvent or "
                    f"(time, node, kind) tuples, got {entry!r}"
                )
            event = ChurnEvent(time=float(time), node=node, kind=str(kind))
        event.validate()
        events.append(event)
    return events


@dataclass
class FaultStats:
    """Per-session fault accounting (kept apart from the Table II census).

    ``drops`` counts radio losses by message type; ``offline_drops``
    counts deliveries that found an endpoint churned out; ``retx`` counts
    retransmission attempts; ``acks`` / ``ack_drops`` the transport
    acknowledgements; ``duplicates`` deliveries suppressed by the
    receiver's sequence-number filter; ``exhausted`` messages whose retry
    budget ran out.
    """

    drops: Dict[str, int] = field(default_factory=dict)
    retx: Dict[str, int] = field(default_factory=dict)
    duplicates: Dict[str, int] = field(default_factory=dict)
    exhausted: Dict[str, int] = field(default_factory=dict)
    offline_drops: int = 0
    acks: int = 0
    ack_drops: int = 0
    leaves: int = 0
    joins: int = 0

    def total_drops(self) -> int:
        return sum(self.drops.values())

    def total_retx(self) -> int:
        return sum(self.retx.values())

    def total_duplicates(self) -> int:
        return sum(self.duplicates.values())

    def total_exhausted(self) -> int:
        return sum(self.exhausted.values())

    def merge(self, other: "FaultStats") -> None:
        for mine, theirs in (
            (self.drops, other.drops),
            (self.retx, other.retx),
            (self.duplicates, other.duplicates),
            (self.exhausted, other.exhausted),
        ):
            for key, value in theirs.items():
                mine[key] = mine.get(key, 0) + value
        self.offline_drops += other.offline_drops
        self.acks += other.acks
        self.ack_drops += other.ack_drops
        self.leaves += other.leaves
        self.joins += other.joins


@dataclass
class FaultReport:
    """Run-level fault outcome attached to a ``DistributedOutcome``."""

    stats: FaultStats = field(default_factory=FaultStats)
    #: chunk -> nodes left unserved when the session quiesced (each is
    #: committed against the producer, the physical fallback server).
    unserved: Dict[int, List[Node]] = field(default_factory=dict)

    @property
    def total_unserved(self) -> int:
        return sum(len(nodes) for nodes in self.unserved.values())

    @property
    def converged(self) -> bool:
        """True when every node of every chunk session was served."""
        return self.total_unserved == 0


class _Pending:
    """Sender-side record of one in-flight (possibly retried) message."""

    __slots__ = (
        "seq", "msg_type", "src", "dst", "hops", "handler",
        "attempt", "acked", "timer",
    )

    def __init__(
        self,
        seq: int,
        msg_type: str,
        src: Node,
        dst: Node,
        hops: int,
        handler: Handler,
    ) -> None:
        self.seq = seq
        self.msg_type = msg_type
        self.src = src
        self.dst = dst
        self.hops = hops
        self.handler = handler
        self.attempt = 0
        self.acked = False
        self.timer: Optional[EventHandle] = None


class FaultPlane:
    """The (possibly unreliable) radio between protocol nodes.

    Parameters
    ----------
    sim:
        The session's discrete-event simulator.
    stats:
        The session's Table II :class:`MessageStats`; only *delivered,
        non-duplicate* messages are recorded there.
    trace:
        The resolved tracer (``repro.obs`` Tracer or NullTracer).
    chunk:
        Session chunk id (trace labelling + RNG substream derivation).
    hop_latency:
        Per-hop radio latency (seconds of simulated time).
    loss_rate / jitter / retx_timeout / max_retries / churn / seed:
        The fault knobs; see the module docstring.  ``seed`` feeds
        ``random.Random(seed * 1_000_003 + chunk)`` so every chunk
        session owns an independent, reproducible substream.
    """

    def __init__(
        self,
        *,
        sim: Simulator,
        stats: MessageStats,
        trace,
        chunk: int,
        hop_latency: float,
        loss_rate: float = 0.0,
        jitter: float = 0.0,
        retx_timeout: float = 0.0,
        max_retries: int = 3,
        churn: Sequence = (),
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.stats = stats
        self.fstats = FaultStats()
        self.chunk = chunk
        self.hop_latency = hop_latency
        self.loss_rate = loss_rate
        self.jitter = jitter
        self.retx_timeout = retx_timeout
        self.max_retries = max_retries
        self.churn_events = normalize_churn(churn)
        self._trace = trace
        if jitter < 0:
            raise SimulationError(f"jitter must be >= 0, got {jitter}")
        if retx_timeout < 0:
            raise SimulationError(
                f"retx_timeout must be >= 0, got {retx_timeout}"
            )
        if max_retries < 0:
            raise SimulationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if jitter > 0 or retx_timeout > 0 or self.churn_events:
            self.mode = FULL
            if not 0.0 <= loss_rate <= 1.0:
                raise SimulationError("loss_rate must be in [0, 1]")
        elif loss_rate > 0:
            self.mode = LEGACY_LOSS
            if not 0.0 <= loss_rate < 1.0:
                raise SimulationError("loss_rate must be in [0, 1)")
        else:
            self.mode = PASSTHROUGH
            if loss_rate < 0:
                raise SimulationError("loss_rate must be in [0, 1)")
        # The RNG exists only when it can be consumed, and the legacy
        # stream (one draw per unicast) keeps the historical seeding so
        # pre-fault loss runs replay bit-for-bit.
        self._rng = (
            random.Random(seed * 1_000_003 + chunk)
            if self.mode != PASSTHROUGH
            else None
        )
        self._seq = itertools.count()
        self._offline: Set[Node] = set()
        self._pending_joins: Dict[Node, int] = {}
        self._outstanding: Dict[int, _Pending] = {}
        self._seen: Dict[Node, Set[int]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def faults_active(self) -> bool:
        """True when the session must expect drops / churn / duplicates."""
        return self.mode == FULL

    @property
    def in_flight(self) -> int:
        """Unacknowledged messages still holding a retransmission claim."""
        return len(self._outstanding)

    def next_seq(self) -> int:
        """Allocate the sequence number for one logical message."""
        return next(self._seq)

    def is_online(self, node: Node) -> bool:
        return node not in self._offline

    def has_pending_join(self, node: Node) -> bool:
        """True while a scheduled JOIN for ``node`` has not fired yet."""
        return self._pending_joins.get(node, 0) > 0

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def start(self, known_nodes: Set[Node], producer: Node) -> None:
        """Validate and schedule the churn timeline onto the simulator."""
        for event in self.churn_events:
            if event.node == producer:
                raise SimulationError(
                    "the producer cannot churn out: it is the data source "
                    f"(event at t={event.time})"
                )
            if event.node not in known_nodes:
                raise SimulationError(
                    f"churn event names unknown node {event.node!r}"
                )
            if event.kind == JOIN:
                self._pending_joins[event.node] = (
                    self._pending_joins.get(event.node, 0) + 1
                )
            self.sim.schedule_at(
                event.time, (lambda e=event: self._apply_churn(e))
            )

    def _apply_churn(self, event: ChurnEvent) -> None:
        if event.kind == LEAVE:
            self._offline.add(event.node)
            self.fstats.leaves += 1
        else:
            self._offline.discard(event.node)
            self._pending_joins[event.node] -= 1
            self.fstats.joins += 1
        if self._trace.enabled:
            self._trace.instant(
                f"fault.churn.{event.kind}",
                track="faults",
                args={
                    "node": str(event.node),
                    "chunk": self.chunk,
                    "sim_time": self.sim.now,
                },
            )
        # Churn events are rare (scheduled timeline, not per-message),
        # so the context-var lookup here is off the hot path.  The
        # series records the offline census at each step edge; the
        # per-tick ``protocol.online_nodes`` samples fill in between.
        obs = get_recorder()
        if obs.series_enabled:
            obs.series_point(
                "faults.offline_nodes", self.sim.now, len(self._offline)
            )

    # ------------------------------------------------------------------
    # Send paths
    # ------------------------------------------------------------------
    def unicast(
        self, msg_type: str, src: Node, dst: Node, hops: int,
        handler: Handler, seq: int,
    ) -> None:
        """One k-hop-scoped control message (TIGHT/SPAN/FREEZE/NADMIN)."""
        if self.mode == PASSTHROUGH:
            self._deliver_reliable(msg_type, src, dst, hops, handler)
            return
        if self.mode == LEGACY_LOSS:
            # Historical semantics: one draw per unicast, drop is final,
            # floods unaffected.  Dropped messages never reach the stats.
            if self._rng.random() < self.loss_rate:
                self._count_drop(msg_type, src, dst)
                return
            self._deliver_reliable(msg_type, src, dst, hops, handler)
            return
        self._send(_Pending(seq, msg_type, src, dst, hops, handler))

    def flood_leg(
        self, msg_type: str, src: Node, dst: Node, hops: int,
        handler: Handler, seq: int,
    ) -> None:
        """One per-destination leg of an NPI / CC / BADMIN flood.

        Reliable outside FULL mode (broadcast redundancy makes per-node
        flood loss a different regime from unicast loss); in FULL mode a
        flood leg is just another lossy, retriable delivery — re-flooding
        is idempotent because receivers suppress duplicate sequence
        numbers and every flood handler is a monotone update.
        """
        if self.mode != FULL:
            self._deliver_reliable(msg_type, src, dst, hops, handler)
            return
        self._send(_Pending(seq, msg_type, src, dst, hops, handler))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _deliver_reliable(
        self, msg_type: str, src: Node, dst: Node, hops: int, handler: Handler
    ) -> None:
        """The exact pre-fault delivery path (no RNG, no extra events)."""
        self.stats.record(msg_type, hops)
        if self._trace.enabled:
            self._trace_msg(msg_type, src, dst, hops)
        self.sim.schedule(hops * self.hop_latency, handler)

    def _latency(self, hops: int) -> float:
        delay = hops * self.hop_latency
        if self.jitter > 0:
            delay += self._rng.random() * self.jitter
        return delay

    def _send(self, rec: _Pending) -> None:
        """Attempt (or re-attempt) one FULL-mode delivery."""
        retriable = self.retx_timeout > 0
        if rec.attempt > 0:
            self.fstats.retx[rec.msg_type] = (
                self.fstats.retx.get(rec.msg_type, 0) + 1
            )
            if self._trace.enabled:
                self._trace.instant(
                    "fault.retx",
                    track="faults",
                    args={
                        "type": rec.msg_type,
                        "src": str(rec.src),
                        "dst": str(rec.dst),
                        "attempt": rec.attempt,
                        "chunk": self.chunk,
                        "sim_time": self.sim.now,
                    },
                )
        if rec.src in self._offline:
            # A churned-out sender cannot key the radio at all; the
            # attempt is spent (its backoff timer still runs), so a
            # permanent leaver drains its budget and goes quiet.
            self.fstats.offline_drops += 1
        elif self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            self._count_drop(rec.msg_type, rec.src, rec.dst)
        else:
            self.sim.schedule(
                self._latency(rec.hops), (lambda r=rec: self._arrive(r))
            )
        if retriable:
            if rec.attempt == 0:
                self._outstanding[rec.seq] = rec
            backoff = self.retx_timeout * (2.0 ** rec.attempt)
            rec.timer = self.sim.schedule(
                backoff, (lambda r=rec: self._on_timeout(r))
            )
        # retx_timeout == 0 (jitter/churn only): drop is final, exactly
        # like the legacy loss regime but applied to every delivery.

    def _arrive(self, rec: _Pending) -> None:
        if rec.dst in self._offline:
            self.fstats.offline_drops += 1
            return  # no ack: the sender's backoff may retry post-rejoin
        seen = self._seen.setdefault(rec.dst, set())
        if rec.seq in seen:
            self.fstats.duplicates[rec.msg_type] = (
                self.fstats.duplicates.get(rec.msg_type, 0) + 1
            )
        else:
            seen.add(rec.seq)
            self.stats.record(rec.msg_type, rec.hops)
            if self._trace.enabled:
                self._trace_msg(rec.msg_type, rec.src, rec.dst, rec.hops)
            rec.handler()
        # Duplicates re-acknowledge: the first ack may have been the
        # casualty, and an un-acked sender retransmits forever (well,
        # until its budget runs out).
        if self.retx_timeout > 0:
            if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
                self.fstats.ack_drops += 1
                return
            self.sim.schedule(
                self._latency(rec.hops), (lambda r=rec: self._on_ack(r))
            )

    def _on_ack(self, rec: _Pending) -> None:
        if rec.src in self._offline or rec.acked:
            return
        rec.acked = True
        self.fstats.acks += 1
        if rec.timer is not None:
            rec.timer.cancel()
        self._outstanding.pop(rec.seq, None)

    def _on_timeout(self, rec: _Pending) -> None:
        if rec.acked:
            return
        if rec.attempt >= self.max_retries:
            self.fstats.exhausted[rec.msg_type] = (
                self.fstats.exhausted.get(rec.msg_type, 0) + 1
            )
            self._outstanding.pop(rec.seq, None)
            return
        rec.attempt += 1
        self._send(rec)

    def _count_drop(self, msg_type: str, src: Node, dst: Node) -> None:
        self.fstats.drops[msg_type] = self.fstats.drops.get(msg_type, 0) + 1
        if self._trace.enabled:
            self._trace.instant(
                "fault.drop",
                track="faults",
                args={
                    "type": msg_type,
                    "src": str(src),
                    "dst": str(dst),
                    "chunk": self.chunk,
                    "sim_time": self.sim.now,
                },
            )

    def _trace_msg(self, msg_type: str, src: Node, dst: Node, hops: int) -> None:
        """One ``msg.<TYPE>`` instant per delivered Table II message."""
        self._trace.instant(
            f"msg.{msg_type}",
            track="protocol",
            args={
                "src": str(src),
                "dst": str(dst),
                "hops": hops,
                "chunk": self.chunk,
                "sim_time": self.sim.now,
            },
        )

    # ------------------------------------------------------------------
    # Termination support
    # ------------------------------------------------------------------
    def quiescent(self) -> bool:
        """No in-flight retransmission claims remain."""
        return not self._outstanding
