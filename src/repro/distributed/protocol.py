"""Orchestration of the distributed algorithm (Sec. IV-C).

:func:`solve_distributed` runs Algorithm 2 chunk by chunk on the
discrete-event simulator:

1. The producer floods NPI — every node learns a new chunk needs caching
   and its own contention cost to the producer.
2. Every node floods a CC (contention collection) request ``k`` hops out;
   receivers learn candidate caches and the ``Con_ij`` costs (the flood
   accumulates node contention along the BFS path, exactly Eq. 2).
3. A global bid clock ticks; nodes bid, TIGHT, SPAN, and freeze per
   :class:`~repro.distributed.node.ProtocolNode` until every node is
   served.
4. Admins that emerged proactively fetch the chunk; the session commits
   the placement with the shared accounting of
   :func:`repro.core.commit.commit_chunk`, so Dist / Appx / baselines /
   exact results are directly comparable.

All control messages except NPI and BADMIN are limited to ``k`` hops
(k = 2 in the paper's evaluation; Fig. 3 studies the sweep).  Message and
transmission counts per Table II type are collected in
:class:`~repro.distributed.messages.MessageStats`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set

from repro.errors import SimulationError
from repro.analysis import contracts
from repro.graphs.traversal import hop_distances
from repro.core.commit import commit_chunk
from repro.core.placement import CachePlacement, ChunkPlacement
from repro.core.problem import CachingProblem, ProblemState
from repro.distributed.messages import (
    BADMIN,
    CC,
    FREEZE,
    NADMIN,
    NPI,
    SPAN,
    TIGHT,
    BAdminMessage,
    CcMessage,
    FreezeMessage,
    MessageStats,
    NAdminMessage,
    NpiMessage,
    SpanMessage,
    TightMessage,
)
from repro.distributed.node import ProtocolNode
from repro.distributed.simulator import Simulator
from repro.obs import get_recorder, get_tracer

Node = Hashable

ALGORITHM_NAME = "distributed"


@dataclass(frozen=True)
class DistributedConfig:
    """Protocol parameters.

    Attributes
    ----------
    hop_limit:
        ``k`` — range of CC / TIGHT / SPAN / FREEZE / NADMIN messages
        (paper default 2).
    step:
        Bid increment per tick (the distributed ``U_α``).
    span_threshold:
        ``M`` — SPAN supporters required to self-promote to ADMIN; matches
        the centralized dual ascent's threshold so the two algorithms are
        directly comparable.
    tick_interval / hop_latency:
        Simulated durations of a bidding round and of one radio hop.  The
        defaults keep all message deliveries within the round that sent
        them, which mirrors the synchronous-round analysis of Sec. IV-D.
    max_ticks:
        Safety bound; the ascent provably freezes every node once bids
        exceed its producer cost.
    gamma_from_alpha:
        Where the relay bid ``γ`` starts when a client goes tight.  True
        (default): at the current bid ``α_j``, so SPAN follows TIGHT on the
        next tick — this keeps the distributed opening clock aligned with
        the centralized dual ascent.  False: γ ramps from zero (the
        literal pseudocode), which delays facility openings by roughly
        ``Con_ij / U`` extra rounds and measurably under-opens; exposed as
        an ablation (see ``benchmarks/test_ablation_gamma.py``).
    serialize_promotions:
        True (default): self-promotions to ADMIN pass through a session
        arbiter that re-validates the ADMIN condition against *live*
        supporters and admits one candidate per ``promotion_latency``
        window — emulating the backoff-based collision avoidance a real
        radio deployment needs.  False: candidates promote the instant
        their condition holds, so a whole wave can open simultaneously
        before each other's FREEZEs land (the over-opening race; kept as
        an ablation).
    promotion_latency:
        Arbitration window; must exceed the worst-case FREEZE delivery
        time (network diameter × ``hop_latency``) and stay well under
        ``tick_interval``.
    loss_rate / loss_seed:
        Failure injection: each *unicast* control message (TIGHT, SPAN,
        FREEZE, NADMIN) is independently dropped with this probability
        (seeded, deterministic).  Floods (NPI, CC, BADMIN) are treated as
        reliable — broadcast redundancy makes their per-node loss a
        different regime.  The protocol must still terminate: clients
        always retain the producer fallback.  Dropped messages are not
        counted in the message statistics (they never arrived), so loss
        shows up as degraded placement quality, not accounting noise.
    """

    hop_limit: int = 2
    step: float = 1.0
    span_threshold: int = 3
    tick_interval: float = 1.0
    hop_latency: float = 0.001
    max_ticks: int = 1_000_000
    gamma_from_alpha: bool = True
    serialize_promotions: bool = True
    promotion_latency: float = 0.05
    span_policy: str = "all"
    loss_rate: float = 0.0
    loss_seed: int = 0


@dataclass
class DistributedOutcome:
    """Placement plus protocol-level observables."""

    placement: CachePlacement
    stats: MessageStats
    ticks_per_chunk: List[int] = field(default_factory=list)
    sim_events: int = 0


class ChunkSession:
    """One chunk's protocol run; the service interface nodes talk to."""

    def __init__(
        self,
        state: ProblemState,
        chunk: int,
        config: DistributedConfig,
        stats: MessageStats,
    ) -> None:
        self.state = state
        self.chunk = chunk
        self.config = config
        self.stats = stats
        self.sim = Simulator()
        self.producer = state.problem.producer
        self.graph = state.problem.graph
        self.span_threshold = config.span_threshold
        self.gamma_starts_at_alpha = config.gamma_from_alpha
        self.span_policy = config.span_policy
        if self.span_policy not in ("best", "all"):
            raise SimulationError(f"unknown span_policy {self.span_policy!r}")
        self._order = {
            node: index for index, node in enumerate(self.graph.nodes())
        }
        self.nodes: Dict[Node, ProtocolNode] = {
            node: ProtocolNode(node, self)
            for node in self.graph.nodes()
            if node != self.producer
        }
        self._done: Set[Node] = set()
        self.admins: List[Node] = []
        self.ticks = 0
        self._promotion_queue: List[Node] = []
        self._promotion_pending: Set[Node] = set()
        self._arbiter_scheduled = False
        if not 0.0 <= config.loss_rate < 1.0:
            raise SimulationError("loss_rate must be in [0, 1)")
        self._rng = (
            random.Random(config.loss_seed * 1_000_003 + chunk)
            if config.loss_rate > 0
            else None
        )
        # Hop distances from every node (for scoped delivery + latency).
        self._hops: Dict[Node, Dict[Node, int]] = {}
        # Resolved once per session: the per-message trace guard must be
        # a plain attribute read, not a context-var lookup per radio send.
        self._trace = get_tracer()

    # ------------------------------------------------------------------
    # Node-facing services
    # ------------------------------------------------------------------
    def can_cache(self, node: Node) -> bool:
        return self.state.can_cache(node)

    def fairness_cost(self, node: Node) -> float:
        return self.state.costs.fairness_cost(node)

    def is_done(self, node: Node) -> bool:
        return node in self._done

    def order_index(self, node: Node) -> int:
        """Deterministic global order of nodes (tie-breaking)."""
        return self._order[node]

    def notify_done(self, node: Node) -> None:
        self._done.add(node)

    def register_admin(self, node: Node) -> None:
        self.admins.append(node)

    def request_promotion(self, node: Node) -> None:
        """A candidate met the ADMIN condition and wants to self-promote."""
        if not self.config.serialize_promotions:
            self.nodes[node].promote()
            return
        if node in self._promotion_pending:
            return
        get_recorder().count("dist.promotion_requests")
        self._promotion_pending.add(node)
        self._promotion_queue.append(node)
        if not self._arbiter_scheduled:
            self._arbiter_scheduled = True
            self.sim.schedule(self.config.promotion_latency, self._arbitrate)

    def _arbitrate(self) -> None:
        """Admit one still-valid candidate; requeue the arbiter if needed."""
        self._arbiter_scheduled = False
        while self._promotion_queue:
            node = self._promotion_queue.pop(0)
            self._promotion_pending.discard(node)
            proto = self.nodes[node]
            if proto.promotion_valid():
                proto.promote()
                break
        if self._promotion_queue:
            self._arbiter_scheduled = True
            self.sim.schedule(self.config.promotion_latency, self._arbitrate)

    def _trace_msg(self, msg_type: str, src: Node, dst: Node, hops: int) -> None:
        """One ``msg.<TYPE>`` instant per delivered Table II message.

        Callers must guard with ``self._trace.enabled`` so the default
        NullTracer costs one attribute read per radio send.
        """
        self._trace.instant(
            f"msg.{msg_type}",
            track="protocol",
            args={
                "src": str(src),
                "dst": str(dst),
                "hops": hops,
                "chunk": self.chunk,
                "sim_time": self.sim.now,
            },
        )

    # --- unicasts (k-hop scoped) --------------------------------------
    def _deliver(self, msg_type: str, src: Node, dst: Node, handler) -> None:
        hops = self._hop(src, dst)
        if msg_type != NPI and msg_type != BADMIN and hops > self.config.hop_limit:
            return  # out of control-message range
        if self._rng is not None and self._rng.random() < self.config.loss_rate:
            return  # radio loss (failure injection)
        self.stats.record(msg_type, hops)
        if self._trace.enabled:
            self._trace_msg(msg_type, src, dst, hops)
        self.sim.schedule(hops * self.config.hop_latency, handler)

    def send_tight(self, src: Node, dst: Node, contention: float, bid: float) -> None:
        msg = TightMessage(
            sender=src, chunk=self.chunk, target=dst,
            contention=contention, bid=bid,
        )
        self._deliver(TIGHT, src, dst, lambda: self.nodes[dst].on_tight(msg))

    def send_span(
        self, src: Node, dst: Node, contention: float, resource_bid: float
    ) -> None:
        msg = SpanMessage(
            sender=src, chunk=self.chunk, target=dst,
            contention=contention, resource_bid=resource_bid,
        )
        self._deliver(SPAN, src, dst, lambda: self.nodes[dst].on_span(msg))

    def send_freeze(self, src: Node, dst: Node, server: Node) -> None:
        msg = FreezeMessage(sender=src, chunk=self.chunk, server=server)
        self._deliver(FREEZE, src, dst, lambda: self.nodes[dst].on_freeze(msg))

    def send_nadmin(self, src: Node, dst: Node) -> None:
        msg = NAdminMessage(sender=src, chunk=self.chunk)
        self._deliver(NADMIN, src, dst, lambda: self.nodes[dst].on_nadmin(msg))

    # --- floods ---------------------------------------------------------
    def broadcast_badmin(self, admin: Node) -> None:
        """Network-wide admin announcement, accumulating path contention."""
        costs = self.state.costs.all_contention_costs(admin)
        hops = self._hops_from(admin)
        for node in self.nodes:
            if node == admin:
                continue
            msg = BAdminMessage(
                sender=admin, chunk=self.chunk,
                cost_from_admin=costs[node], hops=hops[node],
            )
            self.stats.record(BADMIN, hops[node])
            if self._trace.enabled:
                self._trace_msg(BADMIN, admin, node, hops[node])
            self.sim.schedule(
                hops[node] * self.config.hop_latency,
                (lambda m=msg, n=node: self.nodes[n].on_badmin(m)),
            )

    def _flood_npi(self) -> None:
        costs = self.state.costs.all_contention_costs(self.producer)
        hops = self._hops_from(self.producer)
        for node in self.nodes:
            msg = NpiMessage(
                sender=self.producer, chunk=self.chunk,
                cost_from_producer=costs[node], hops=hops[node],
            )
            self.stats.record(NPI, hops[node])
            if self._trace.enabled:
                self._trace_msg(NPI, self.producer, node, hops[node])
            self.sim.schedule(
                hops[node] * self.config.hop_latency,
                (lambda m=msg, n=node: self.nodes[n].on_npi(m)),
            )

    def _flood_cc(self, origin: Node) -> None:
        """CC flood: k-hop neighbors learn (origin, Con_origin→them)."""
        costs = self.state.costs.all_contention_costs(origin)
        hops = self._hops_from(origin)
        for node, h in hops.items():
            if node == origin or node == self.producer:
                continue
            if h > self.config.hop_limit:
                continue
            msg = CcMessage(
                sender=origin, chunk=self.chunk, origin=origin,
                accumulated_cost=costs[node], hops=h,
            )
            self.stats.record(CC, h)
            if self._trace.enabled:
                self._trace_msg(CC, origin, node, h)
            self.sim.schedule(
                h * self.config.hop_latency,
                (lambda m=msg, n=node: self.nodes[n].on_cc(m)),
            )

    # ------------------------------------------------------------------
    # Session driver
    # ------------------------------------------------------------------
    def run(self) -> ChunkPlacement:
        """Run the protocol for this chunk and commit the placement."""
        sanitize = contracts.sanitize_enabled()
        # Always-on Table II census: message totals are snapshotted per
        # session and mirrored into ``protocol.msgs.<type>`` counters at
        # the end, so the per-message radio path stays counter-free.  The
        # REPRO_SANITIZE census cross-check below additionally covers
        # transmissions and structural bounds.
        msgs_before = dict(self.stats.messages)
        census_before = (
            dict(self.stats.transmissions) if sanitize else None
        )
        with self._trace.span("chunk_session", track="protocol") as span:
            self._flood_npi()
            # After NPI propagates, cacheable candidates announce themselves.
            for node in self.nodes:
                if self.can_cache(node):
                    self.sim.schedule(
                        0.5 * self.config.tick_interval,
                        (lambda origin=node: self._flood_cc(origin)),
                    )
            self.sim.schedule(self.config.tick_interval, self._tick)
            self.sim.run()
            if len(self._done) < len(self.nodes):
                raise SimulationError(
                    f"chunk {self.chunk}: protocol ended with "
                    f"{len(self.nodes) - len(self._done)} unserved nodes"
                )
            if self._trace.enabled:
                span.add(
                    chunk=self.chunk,
                    ticks=self.ticks,
                    admins=sorted(str(node) for node in self.admins),
                    nodes=len(self.nodes),
                )
        if sanitize and census_before is not None:
            from repro.distributed.messages import ALL_TYPES

            contracts.check_message_census(
                chunk=self.chunk,
                known_types=ALL_TYPES,
                messages_before=msgs_before,
                messages_after=dict(self.stats.messages),
                transmissions_before=census_before,
                transmissions_after=dict(self.stats.transmissions),
                num_nodes=len(self.nodes),
                num_admins=len(self.admins),
                hop_limit=self.config.hop_limit,
            )
        obs = get_recorder()
        obs.count("dist.chunk_sessions")
        obs.count("dist.ticks", self.ticks)
        obs.count("dist.admins_promoted", len(self.admins))
        # Table II census, always on (not just under REPRO_SANITIZE): one
        # counter per message type this session actually sent.
        session_total = 0
        for msg_type, count in self.stats.messages.items():
            delta = count - msgs_before.get(msg_type, 0)
            if delta:
                obs.count(f"protocol.msgs.{msg_type}", delta)
                session_total += delta
        obs.count("protocol.msgs.total", session_total)
        # Per-node queue depth: how many tight clients each candidate had
        # to track (the candidate-side memory the protocol costs a node).
        for proto in self.nodes.values():
            obs.gauge("dist.node_tight_queue", len(proto.tights))
        assignment = {
            node_id: (proto.target if proto.target is not None else self.producer)
            for node_id, proto in self.nodes.items()
        }
        return commit_chunk(
            self.state, self.chunk, self.admins, assignment=assignment
        )

    def _tick(self) -> None:
        self.ticks += 1
        if self.ticks > self.config.max_ticks:
            raise SimulationError("distributed protocol exceeded max_ticks")
        for node in self.nodes.values():
            node.client_tick(self.config.step)
        for node in self.nodes.values():
            node.candidate_tick(self.config.step)
        if self._trace.enabled:
            self._trace.instant(
                "dist.tick",
                track="protocol",
                args={
                    "tick": self.ticks,
                    "chunk": self.chunk,
                    "done": len(self._done),
                    "nodes": len(self.nodes),
                    "admins": len(self.admins),
                    "sim_time": self.sim.now,
                },
            )
        if len(self._done) < len(self.nodes):
            self.sim.schedule(self.config.tick_interval, self._tick)

    # ------------------------------------------------------------------
    def _hops_from(self, source: Node) -> Dict[Node, int]:
        cached = self._hops.get(source)
        if cached is None:
            cached = hop_distances(self.graph, source)
            self._hops[source] = cached
        return cached

    def _hop(self, src: Node, dst: Node) -> int:
        return self._hops_from(src)[dst]


def solve_distributed(
    problem: CachingProblem, config: Optional[DistributedConfig] = None
) -> DistributedOutcome:
    """Run the distributed algorithm for every chunk of ``problem``."""
    config = config or DistributedConfig()
    if config.hop_limit < 1:
        raise SimulationError("hop_limit must be at least 1")
    state = problem.new_state()
    stats = MessageStats()
    placements: List[ChunkPlacement] = []
    ticks: List[int] = []
    events = 0
    obs = get_recorder()
    with obs.timer("solve_distributed"):
        for chunk in problem.chunks:
            session = ChunkSession(state, chunk, config, stats)
            with obs.timer("chunk_session"):
                placements.append(session.run())
            ticks.append(session.ticks)
            events += session.sim.events_processed
    # Mirror the Table II message census into the recorder (totals over
    # all chunks; recorded once at the end so the radio path stays cheap).
    for msg_type, count in stats.messages.items():
        obs.count(f"dist.messages.{msg_type}", count)
        obs.count(f"dist.transmissions.{msg_type}", stats.transmissions[msg_type])
    obs.count("dist.messages.total", stats.total_messages())
    obs.count("dist.transmissions.total", stats.total_transmissions())
    placement = CachePlacement(
        problem=problem, chunks=placements, algorithm=ALGORITHM_NAME
    )
    return DistributedOutcome(
        placement=placement, stats=stats, ticks_per_chunk=ticks, sim_events=events
    )
