"""Orchestration of the distributed algorithm (Sec. IV-C).

:func:`solve_distributed` runs Algorithm 2 chunk by chunk on the
discrete-event simulator:

1. The producer floods NPI — every node learns a new chunk needs caching
   and its own contention cost to the producer.
2. Every node floods a CC (contention collection) request ``k`` hops out;
   receivers learn candidate caches and the ``Con_ij`` costs (the flood
   accumulates node contention along the BFS path, exactly Eq. 2).
3. A global bid clock ticks; nodes bid, TIGHT, SPAN, and freeze per
   :class:`~repro.distributed.node.ProtocolNode` until every node is
   served.
4. Admins that emerged proactively fetch the chunk; the session commits
   the placement with the shared accounting of
   :func:`repro.core.commit.commit_chunk`, so Dist / Appx / baselines /
   exact results are directly comparable.

All control messages except NPI and BADMIN are limited to ``k`` hops
(k = 2 in the paper's evaluation; Fig. 3 studies the sweep).  Message and
transmission counts per Table II type are collected in
:class:`~repro.distributed.messages.MessageStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.analysis import contracts
from repro.graphs.traversal import hop_distances
from repro.core.commit import commit_chunk
from repro.core.placement import CachePlacement, ChunkPlacement
from repro.core.problem import CachingProblem, ProblemState
from repro.distributed.faults import PASSTHROUGH, FaultPlane, FaultReport
from repro.distributed.messages import (
    BADMIN,
    CC,
    FREEZE,
    NADMIN,
    NPI,
    SPAN,
    TIGHT,
    BAdminMessage,
    CcMessage,
    FreezeMessage,
    MessageStats,
    NAdminMessage,
    NpiMessage,
    SpanMessage,
    TightMessage,
)
from repro.distributed.node import ProtocolNode
from repro.distributed.simulator import Simulator
from repro.obs import get_recorder, get_tracer

Node = Hashable

ALGORITHM_NAME = "distributed"


@dataclass(frozen=True)
class DistributedConfig:
    """Protocol parameters.

    Attributes
    ----------
    hop_limit:
        ``k`` — range of CC / TIGHT / SPAN / FREEZE / NADMIN messages
        (paper default 2).
    step:
        Bid increment per tick (the distributed ``U_α``).
    span_threshold:
        ``M`` — SPAN supporters required to self-promote to ADMIN; matches
        the centralized dual ascent's threshold so the two algorithms are
        directly comparable.
    tick_interval / hop_latency:
        Simulated durations of a bidding round and of one radio hop.  The
        defaults keep all message deliveries within the round that sent
        them, which mirrors the synchronous-round analysis of Sec. IV-D.
    max_ticks:
        Safety bound; the ascent provably freezes every node once bids
        exceed its producer cost.
    gamma_from_alpha:
        Where the relay bid ``γ`` starts when a client goes tight.  True
        (default): at the current bid ``α_j``, so SPAN follows TIGHT on the
        next tick — this keeps the distributed opening clock aligned with
        the centralized dual ascent.  False: γ ramps from zero (the
        literal pseudocode), which delays facility openings by roughly
        ``Con_ij / U`` extra rounds and measurably under-opens; exposed as
        an ablation (see ``benchmarks/test_ablation_gamma.py``).
    serialize_promotions:
        True (default): self-promotions to ADMIN pass through a session
        arbiter that re-validates the ADMIN condition against *live*
        supporters and admits one candidate per ``promotion_latency``
        window — emulating the backoff-based collision avoidance a real
        radio deployment needs.  False: candidates promote the instant
        their condition holds, so a whole wave can open simultaneously
        before each other's FREEZEs land (the over-opening race; kept as
        an ablation).
    promotion_latency:
        Arbitration window; must exceed the worst-case FREEZE delivery
        time (network diameter × ``hop_latency``) and stay well under
        ``tick_interval``.
    loss_rate / loss_seed:
        Failure injection: each *unicast* control message (TIGHT, SPAN,
        FREEZE, NADMIN) is independently dropped with this probability
        (seeded, deterministic).  With no other fault knob engaged,
        floods (NPI, CC, BADMIN) are treated as reliable — broadcast
        redundancy makes their per-node loss a different regime.  The
        protocol must still terminate: clients always retain the
        producer fallback.  Dropped messages are not counted in the
        message statistics (they never arrived), so loss shows up as
        degraded placement quality, not accounting noise.
    jitter:
        Uniform per-delivery latency jitter in ``[0, jitter)`` simulated
        seconds, added on top of ``hops * hop_latency`` — engages the
        :class:`~repro.distributed.faults.FaultPlane` and lets messages
        on the same link arrive out of send order.
    churn_schedule:
        Scheduled node membership changes — a sequence of
        :class:`~repro.distributed.faults.ChurnEvent` (or ``(time, node,
        "leave"|"join")`` tuples).  Offline nodes neither send, receive,
        nor tick; the producer may never leave.  Applies to every chunk
        session (each runs the same timeline on its own simulator).
    retx_timeout:
        When positive, every delivery (floods included) is acknowledged
        and retransmitted on timeout with exponential backoff
        (``retx_timeout * 2**attempt``), up to ``max_retries`` retries;
        duplicate deliveries are suppressed by per-message sequence
        numbers.  ``0`` (default) disables retransmission.
    max_retries:
        Retry budget per message once ``retx_timeout`` is engaged.
    fault_seed:
        Seed of the fault plane's RNG substream; ``None`` (default)
        reuses ``loss_seed``.

    When ``jitter``, ``churn_schedule`` or ``retx_timeout`` is engaged,
    the plane runs in FULL mode: loss applies to every delivery
    (``loss_rate = 1.0`` becomes legal), the Table II census sanitizer
    check is skipped (floods are no longer conservation-exact), and a
    session that quiesces with unserved nodes commits them to the
    producer and reports them in the outcome's
    :class:`~repro.distributed.faults.FaultReport` instead of raising.
    With every fault knob at its default the plane is a provable no-op:
    placements and :class:`MessageStats` are byte-identical to a
    fault-free build (see ``docs/FAULTS.md``).
    """

    hop_limit: int = 2
    step: float = 1.0
    span_threshold: int = 3
    tick_interval: float = 1.0
    hop_latency: float = 0.001
    max_ticks: int = 1_000_000
    gamma_from_alpha: bool = True
    serialize_promotions: bool = True
    promotion_latency: float = 0.05
    span_policy: str = "all"
    loss_rate: float = 0.0
    loss_seed: int = 0
    jitter: float = 0.0
    churn_schedule: tuple = ()
    retx_timeout: float = 0.0
    max_retries: int = 3
    fault_seed: Optional[int] = None


@dataclass
class DistributedOutcome:
    """Placement plus protocol-level observables.

    ``faults`` is ``None`` when every chunk session ran the fault plane
    in passthrough mode (no fault knob engaged); otherwise it aggregates
    the drop / retransmission / churn accounting and any nodes that
    quiesced unserved (committed to the producer fallback).
    """

    placement: CachePlacement
    stats: MessageStats
    ticks_per_chunk: List[int] = field(default_factory=list)
    sim_events: int = 0
    faults: Optional[FaultReport] = None


class ChunkSession:
    """One chunk's protocol run; the service interface nodes talk to."""

    def __init__(
        self,
        state: ProblemState,
        chunk: int,
        config: DistributedConfig,
        stats: MessageStats,
        series_base: Tuple[float, int, int, int] = (0.0, 0, 0, 0),
    ) -> None:
        self.state = state
        self.chunk = chunk
        self.config = config
        self.stats = stats
        # Telemetry-only offsets ``(sim_time, done, drops, retx)``
        # accumulated over earlier chunk sessions, so the per-tick
        # series stay monotone across the per-chunk simulator resets.
        # Never read by the protocol itself.
        self._series_base = series_base
        self.sim = Simulator()
        self.producer = state.problem.producer
        self.graph = state.problem.graph
        self.span_threshold = config.span_threshold
        self.gamma_starts_at_alpha = config.gamma_from_alpha
        self.span_policy = config.span_policy
        if self.span_policy not in ("best", "all"):
            raise SimulationError(f"unknown span_policy {self.span_policy!r}")
        self._order = {
            node: index for index, node in enumerate(self.graph.nodes())
        }
        self.nodes: Dict[Node, ProtocolNode] = {
            node: ProtocolNode(node, self)
            for node in self.graph.nodes()
            if node != self.producer
        }
        self._done: Set[Node] = set()
        self.admins: List[Node] = []
        self.ticks = 0
        self._promotion_queue: List[Node] = []
        self._promotion_pending: Set[Node] = set()
        self._arbiter_scheduled = False
        #: Nodes still unserved when a faulty session quiesced (sorted by
        #: the deterministic node order; empty outside FULL fault mode).
        self.unserved: List[Node] = []
        # Hop distances from every node (for scoped delivery + latency).
        self._hops: Dict[Node, Dict[Node, int]] = {}
        # Resolved once per session: the per-message trace guard must be
        # a plain attribute read, not a context-var lookup per radio send.
        self._trace = get_tracer()
        # Same contract for the per-tick series guard.
        self._obs = get_recorder()
        # Every delivery funnels through the fault plane; with all fault
        # knobs at their defaults it resolves to passthrough mode, which
        # is byte-identical to scheduling on the simulator directly.
        self.faults = FaultPlane(
            sim=self.sim,
            stats=stats,
            trace=self._trace,
            chunk=chunk,
            hop_latency=config.hop_latency,
            loss_rate=config.loss_rate,
            jitter=config.jitter,
            retx_timeout=config.retx_timeout,
            max_retries=config.max_retries,
            churn=config.churn_schedule,
            seed=(
                config.fault_seed
                if config.fault_seed is not None
                else config.loss_seed
            ),
        )
        self.faults.start(set(self.nodes), self.producer)

    # ------------------------------------------------------------------
    # Node-facing services
    # ------------------------------------------------------------------
    def can_cache(self, node: Node) -> bool:
        return self.state.can_cache(node)

    def fairness_cost(self, node: Node) -> float:
        return self.state.costs.fairness_cost(node)

    def is_done(self, node: Node) -> bool:
        return node in self._done

    def order_index(self, node: Node) -> int:
        """Deterministic global order of nodes (tie-breaking)."""
        return self._order[node]

    def notify_done(self, node: Node) -> None:
        self._done.add(node)

    def register_admin(self, node: Node) -> None:
        self.admins.append(node)

    def request_promotion(self, node: Node) -> None:
        """A candidate met the ADMIN condition and wants to self-promote."""
        if not self.config.serialize_promotions:
            self.nodes[node].promote()
            return
        if node in self._promotion_pending:
            return
        get_recorder().count("dist.promotion_requests")
        self._promotion_pending.add(node)
        self._promotion_queue.append(node)
        if not self._arbiter_scheduled:
            self._arbiter_scheduled = True
            self.sim.schedule(self.config.promotion_latency, self._arbitrate)

    def _arbitrate(self) -> None:
        """Admit one still-valid candidate; requeue the arbiter if needed."""
        self._arbiter_scheduled = False
        while self._promotion_queue:
            node = self._promotion_queue.pop(0)
            self._promotion_pending.discard(node)
            if not self.faults.is_online(node):
                continue  # churned out between request and arbitration
            proto = self.nodes[node]
            if proto.promotion_valid():
                proto.promote()
                break
        if self._promotion_queue:
            self._arbiter_scheduled = True
            self.sim.schedule(self.config.promotion_latency, self._arbitrate)

    # --- unicasts (k-hop scoped) --------------------------------------
    def _deliver(
        self, msg_type: str, src: Node, dst: Node, handler, seq: int
    ) -> None:
        hops = self._hop(src, dst)
        if msg_type != NPI and msg_type != BADMIN and hops > self.config.hop_limit:
            return  # out of control-message range
        self.faults.unicast(msg_type, src, dst, hops, handler, seq)

    def send_tight(self, src: Node, dst: Node, contention: float, bid: float) -> None:
        seq = self.faults.next_seq()
        msg = TightMessage(
            sender=src, chunk=self.chunk, seq=seq, target=dst,
            contention=contention, bid=bid,
        )
        self._deliver(TIGHT, src, dst, lambda: self.nodes[dst].on_tight(msg), seq)

    def send_span(
        self, src: Node, dst: Node, contention: float, resource_bid: float
    ) -> None:
        seq = self.faults.next_seq()
        msg = SpanMessage(
            sender=src, chunk=self.chunk, seq=seq, target=dst,
            contention=contention, resource_bid=resource_bid,
        )
        self._deliver(SPAN, src, dst, lambda: self.nodes[dst].on_span(msg), seq)

    def send_freeze(self, src: Node, dst: Node, server: Node) -> None:
        seq = self.faults.next_seq()
        msg = FreezeMessage(sender=src, chunk=self.chunk, seq=seq, server=server)
        self._deliver(FREEZE, src, dst, lambda: self.nodes[dst].on_freeze(msg), seq)

    def send_nadmin(self, src: Node, dst: Node) -> None:
        seq = self.faults.next_seq()
        msg = NAdminMessage(sender=src, chunk=self.chunk, seq=seq)
        self._deliver(NADMIN, src, dst, lambda: self.nodes[dst].on_nadmin(msg), seq)

    # --- floods ---------------------------------------------------------
    def broadcast_badmin(self, admin: Node) -> None:
        """Network-wide admin announcement, accumulating path contention."""
        costs = self.state.costs.all_contention_costs(admin)
        hops = self._hops_from(admin)
        for node in self.nodes:
            if node == admin:
                continue
            seq = self.faults.next_seq()
            msg = BAdminMessage(
                sender=admin, chunk=self.chunk, seq=seq,
                cost_from_admin=costs[node], hops=hops[node],
            )
            self.faults.flood_leg(
                BADMIN, admin, node, hops[node],
                (lambda m=msg, n=node: self.nodes[n].on_badmin(m)),
                seq,
            )

    def _flood_npi(self) -> None:
        costs = self.state.costs.all_contention_costs(self.producer)
        hops = self._hops_from(self.producer)
        for node in self.nodes:
            seq = self.faults.next_seq()
            msg = NpiMessage(
                sender=self.producer, chunk=self.chunk, seq=seq,
                cost_from_producer=costs[node], hops=hops[node],
            )
            self.faults.flood_leg(
                NPI, self.producer, node, hops[node],
                (lambda m=msg, n=node: self.nodes[n].on_npi(m)),
                seq,
            )

    def _flood_cc(self, origin: Node) -> None:
        """CC flood: k-hop neighbors learn (origin, Con_origin→them)."""
        if not self.faults.is_online(origin):
            return  # a churned-out candidate cannot announce itself
        costs = self.state.costs.all_contention_costs(origin)
        hops = self._hops_from(origin)
        for node, h in hops.items():
            if node == origin or node == self.producer:
                continue
            if h > self.config.hop_limit:
                continue
            seq = self.faults.next_seq()
            msg = CcMessage(
                sender=origin, chunk=self.chunk, seq=seq, origin=origin,
                accumulated_cost=costs[node], hops=h,
            )
            self.faults.flood_leg(
                CC, origin, node, h,
                (lambda m=msg, n=node: self.nodes[n].on_cc(m)),
                seq,
            )

    # ------------------------------------------------------------------
    # Session driver
    # ------------------------------------------------------------------
    def run(self) -> ChunkPlacement:
        """Run the protocol for this chunk and commit the placement."""
        sanitize = contracts.sanitize_enabled()
        # Always-on Table II census: message totals are snapshotted per
        # session and mirrored into ``protocol.msgs.<type>`` counters at
        # the end, so the per-message radio path stays counter-free.  The
        # REPRO_SANITIZE census cross-check below additionally covers
        # transmissions and structural bounds.
        msgs_before = dict(self.stats.messages)
        census_before = (
            dict(self.stats.transmissions) if sanitize else None
        )
        with self._trace.span("chunk_session", track="protocol") as span:
            self._flood_npi()
            # After NPI propagates, cacheable candidates announce themselves.
            for node in self.nodes:
                if self.can_cache(node):
                    self.sim.schedule(
                        0.5 * self.config.tick_interval,
                        (lambda origin=node: self._flood_cc(origin)),
                    )
            self.sim.schedule(self.config.tick_interval, self._tick)
            self.sim.run()
            if len(self._done) < len(self.nodes):
                if not self.faults.faults_active:
                    raise SimulationError(
                        f"chunk {self.chunk}: protocol ended with "
                        f"{len(self.nodes) - len(self._done)} unserved nodes"
                    )
                # Under faults an unreachable node (permanently churned
                # out, or isolated by exhausted retry budgets) is a
                # legitimate outcome: commit it against the producer — the
                # physical fallback server — and report it.
                self.unserved = sorted(
                    (n for n in self.nodes if n not in self._done),
                    key=self._order.__getitem__,
                )
            if self._trace.enabled:
                span.add(
                    chunk=self.chunk,
                    ticks=self.ticks,
                    admins=sorted(str(node) for node in self.admins),
                    nodes=len(self.nodes),
                    unserved=len(self.unserved),
                )
        # The Table II census invariants (every node hears NPI exactly
        # once, BADMIN = admins × (N-1), ...) assume reliable floods; in
        # FULL fault mode floods are lossy, so the cross-check is skipped.
        if self.faults.faults_active:
            census_before = None
        if sanitize and census_before is not None:
            from repro.distributed.messages import ALL_TYPES

            contracts.check_message_census(
                chunk=self.chunk,
                known_types=ALL_TYPES,
                messages_before=msgs_before,
                messages_after=dict(self.stats.messages),
                transmissions_before=census_before,
                transmissions_after=dict(self.stats.transmissions),
                num_nodes=len(self.nodes),
                num_admins=len(self.admins),
                hop_limit=self.config.hop_limit,
            )
        obs = get_recorder()
        obs.count("dist.chunk_sessions")
        obs.count("dist.ticks", self.ticks)
        obs.count("dist.admins_promoted", len(self.admins))
        # Table II census, always on (not just under REPRO_SANITIZE): one
        # counter per message type this session actually sent.
        session_total = 0
        for msg_type, count in self.stats.messages.items():
            delta = count - msgs_before.get(msg_type, 0)
            if delta:
                obs.count(f"protocol.msgs.{msg_type}", delta)
                session_total += delta
        obs.count("protocol.msgs.total", session_total)
        # Fault accounting (all zero — and unrecorded — in passthrough).
        if self.faults.mode != PASSTHROUGH:
            fstats = self.faults.fstats
            if fstats.total_drops():
                obs.count("protocol.drops", fstats.total_drops())
            if fstats.offline_drops:
                obs.count("protocol.drops.offline", fstats.offline_drops)
            if fstats.total_retx():
                obs.count("protocol.retx.attempts", fstats.total_retx())
            if fstats.acks:
                obs.count("protocol.retx.acks", fstats.acks)
            if fstats.ack_drops:
                obs.count("protocol.retx.ack_drops", fstats.ack_drops)
            if fstats.total_exhausted():
                obs.count("protocol.retx.exhausted", fstats.total_exhausted())
            if fstats.total_duplicates():
                obs.count("protocol.dups", fstats.total_duplicates())
            if fstats.leaves:
                obs.count("faults.churn.leaves", fstats.leaves)
            if fstats.joins:
                obs.count("faults.churn.joins", fstats.joins)
            if self.unserved:
                obs.count("protocol.unserved", len(self.unserved))
        # Per-node queue depth: how many tight clients each candidate had
        # to track (the candidate-side memory the protocol costs a node).
        for proto in self.nodes.values():
            obs.gauge("dist.node_tight_queue", len(proto.tights))
        assignment = {
            node_id: (proto.target if proto.target is not None else self.producer)
            for node_id, proto in self.nodes.items()
        }
        return commit_chunk(
            self.state, self.chunk, self.admins, assignment=assignment
        )

    def _tick(self) -> None:
        self.ticks += 1
        if self.ticks > self.config.max_ticks:
            raise SimulationError("distributed protocol exceeded max_ticks")
        faulty = self.faults.faults_active
        for node_id, node in self.nodes.items():
            if faulty and not self.faults.is_online(node_id):
                continue  # churned-out nodes pause their state machine
            node.client_tick(self.config.step)
        for node_id, node in self.nodes.items():
            if faulty and not self.faults.is_online(node_id):
                continue
            node.candidate_tick(self.config.step)
        if self._trace.enabled:
            self._trace.instant(
                "dist.tick",
                track="protocol",
                args={
                    "tick": self.ticks,
                    "chunk": self.chunk,
                    "done": len(self._done),
                    "nodes": len(self.nodes),
                    "admins": len(self.admins),
                    "sim_time": self.sim.now,
                },
            )
        # Per-tick convergence / health series on the simulator clock.
        # ``self.stats`` and ``self.faults.fstats`` are live during the
        # session, so the cumulative counter-kind points yield windowed
        # message / drop / retx rates; ``protocol.online_nodes`` is the
        # live census under churn.  One attribute read when off.
        if self._obs.series_enabled:
            t0, done0, drops0, retx0 = self._series_base
            now = t0 + self.sim.now
            obs = self._obs
            obs.series_point(
                "protocol.done", now, done0 + len(self._done), kind="counter"
            )
            obs.series_point(
                "protocol.messages",
                now,
                self.stats.total_messages(),
                kind="counter",
            )
            # Named apart from the ``protocol.drops`` / ``protocol.retx.*``
            # counters mirrored at session end, so mark snapshots of
            # those stale totals never interleave with these live values.
            fstats = self.faults.fstats
            obs.series_point(
                "protocol.dropped",
                now,
                drops0 + fstats.total_drops(),
                kind="counter",
            )
            obs.series_point(
                "protocol.retransmits",
                now,
                retx0 + fstats.total_retx(),
                kind="counter",
            )
            online = (
                sum(1 for n in self.nodes if self.faults.is_online(n))
                if faulty
                else len(self.nodes)
            )
            obs.series_point("protocol.online_nodes", now, online)
            obs.series_mark(now)
        if len(self._done) < len(self.nodes):
            if not faulty:
                self.sim.schedule(self.config.tick_interval, self._tick)
            elif self.sim.pending > 0 or self._progress_possible():
                # Keep the clock alive while deliveries / acks / retx
                # timers / churn events are in flight or some online node
                # can still make headway.  When both run dry the session
                # is stalled — stop ticking so the simulator quiesces and
                # ``run()`` reports the partial placement.
                self.sim.schedule(self.config.tick_interval, self._tick)

    def _progress_possible(self) -> bool:
        """Can any online, still-bidding or promotable node make progress?"""
        return any(
            self.faults.is_online(node_id) and proto.progress_possible()
            for node_id, proto in self.nodes.items()
        )

    # ------------------------------------------------------------------
    def _hops_from(self, source: Node) -> Dict[Node, int]:
        cached = self._hops.get(source)
        if cached is None:
            cached = hop_distances(self.graph, source)
            self._hops[source] = cached
        return cached

    def _hop(self, src: Node, dst: Node) -> int:
        return self._hops_from(src)[dst]


def solve_distributed(
    problem: CachingProblem, config: Optional[DistributedConfig] = None
) -> DistributedOutcome:
    """Run the distributed algorithm for every chunk of ``problem``."""
    config = config or DistributedConfig()
    if config.hop_limit < 1:
        raise SimulationError("hop_limit must be at least 1")
    state = problem.new_state()
    stats = MessageStats()
    placements: List[ChunkPlacement] = []
    ticks: List[int] = []
    events = 0
    fault_report: Optional[FaultReport] = None
    obs = get_recorder()
    series_base = (0.0, 0, 0, 0)
    with obs.timer("solve_distributed"):
        for chunk in problem.chunks:
            session = ChunkSession(
                state, chunk, config, stats, series_base=series_base
            )
            with obs.timer("chunk_session"):
                placements.append(session.run())
            series_base = (
                series_base[0] + session.sim.now,
                series_base[1] + len(session._done),
                series_base[2] + session.faults.fstats.total_drops(),
                series_base[3] + session.faults.fstats.total_retx(),
            )
            ticks.append(session.ticks)
            events += session.sim.events_processed
            if session.faults.mode != PASSTHROUGH:
                if fault_report is None:
                    fault_report = FaultReport()
                fault_report.stats.merge(session.faults.fstats)
                if session.unserved:
                    fault_report.unserved[chunk] = list(session.unserved)
    # Mirror the Table II message census into the recorder (totals over
    # all chunks; recorded once at the end so the radio path stays cheap).
    for msg_type, count in stats.messages.items():
        obs.count(f"dist.messages.{msg_type}", count)
        obs.count(f"dist.transmissions.{msg_type}", stats.transmissions[msg_type])
    obs.count("dist.messages.total", stats.total_messages())
    obs.count("dist.transmissions.total", stats.total_transmissions())
    placement = CachePlacement(
        problem=problem, chunks=placements, algorithm=ALGORITHM_NAME
    )
    return DistributedOutcome(
        placement=placement,
        stats=stats,
        ticks_per_chunk=ticks,
        sim_events=events,
        faults=fault_report,
    )
