"""Distributed algorithm: discrete-event simulator + Algorithm 2 protocol."""

from repro.distributed.messages import (
    ALL_TYPES,
    BADMIN,
    CC,
    FREEZE,
    NADMIN,
    NPI,
    SPAN,
    TIGHT,
    MessageStats,
)
from repro.distributed.node import ACTIVE, ADMIN, FROZEN, ProtocolNode
from repro.distributed.protocol import (
    ChunkSession,
    DistributedConfig,
    DistributedOutcome,
    solve_distributed,
)
from repro.distributed.simulator import EventHandle, Simulator

__all__ = [
    "ACTIVE",
    "ADMIN",
    "ALL_TYPES",
    "BADMIN",
    "CC",
    "ChunkSession",
    "DistributedConfig",
    "DistributedOutcome",
    "EventHandle",
    "FREEZE",
    "FROZEN",
    "MessageStats",
    "NADMIN",
    "NPI",
    "ProtocolNode",
    "SPAN",
    "Simulator",
    "TIGHT",
    "solve_distributed",
]
