"""Distributed algorithm: discrete-event simulator + Algorithm 2 protocol."""

from repro.distributed.faults import (
    ChurnEvent,
    FaultPlane,
    FaultReport,
    FaultStats,
)
from repro.distributed.messages import (
    ALL_TYPES,
    BADMIN,
    CC,
    FREEZE,
    NADMIN,
    NPI,
    SPAN,
    TIGHT,
    MessageStats,
)
from repro.distributed.node import ACTIVE, ADMIN, FROZEN, ProtocolNode
from repro.distributed.protocol import (
    ChunkSession,
    DistributedConfig,
    DistributedOutcome,
    solve_distributed,
)
from repro.distributed.simulator import EventHandle, Simulator

__all__ = [
    "ACTIVE",
    "ADMIN",
    "ALL_TYPES",
    "BADMIN",
    "CC",
    "ChunkSession",
    "ChurnEvent",
    "DistributedConfig",
    "DistributedOutcome",
    "EventHandle",
    "FREEZE",
    "FROZEN",
    "FaultPlane",
    "FaultReport",
    "FaultStats",
    "MessageStats",
    "NADMIN",
    "NPI",
    "ProtocolNode",
    "SPAN",
    "Simulator",
    "TIGHT",
    "solve_distributed",
]
