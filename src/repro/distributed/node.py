"""Per-node state machine of the distributed algorithm (Algorithm 2).

Each network node runs this machine once per chunk.  It plays two roles at
once:

* **client** — raises its bid ``α_j`` every tick; sends TIGHT when the bid
  covers the contention cost to a candidate it learned through CC; then
  raises the relay bid ``γ`` and sends SPAN; freezes onto the first open
  server it can afford (producer, NADMIN/BADMIN announcers, or a FREEZE
  instruction).
* **candidate facility** — collects TIGHT/SPAN requests, tracks the
  resource payments ``β`` of its tight clients (payments keep growing with
  the global bid clock, so no per-tick messages are needed), and promotes
  itself to ADMIN once it has ≥ M SPAN supporters *and* the payments cover
  its Fairness Degree Cost ``f_i``.  On promotion it NADMINs its tight
  set, broadcasts BADMIN, and proactively requests the chunk from the
  producer.

Deviations from the paper's pseudocode, chosen for determinism and clean
accounting (see DESIGN.md §4):

* INACTIVE (storage-full) nodes ignore TIGHT/SPAN instead of forwarding
  FREEZE pointers; termination is still guaranteed because the producer is
  always an affordable fallback server.
* A node that receives NADMIN forwards FREEZE(admin) to the clients tight
  with it — this is the backup-pointer mechanism (``B[·]`` of Algorithm 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Set, TYPE_CHECKING

from repro.distributed.messages import (
    BAdminMessage,
    CcMessage,
    FreezeMessage,
    NAdminMessage,
    NpiMessage,
    SpanMessage,
    TightMessage,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.distributed.protocol import ChunkSession

Node = Hashable

ACTIVE = "ACTIVE"
FROZEN = "FROZEN"
ADMIN = "ADMIN"


@dataclass
class _TightRecord:
    """Candidate-side view of one tight client."""

    contention: float
    payment: float
    spanned: bool = False


class ProtocolNode:
    """State machine for one node and one chunk."""

    def __init__(self, node_id: Node, session: "ChunkSession") -> None:
        self.id = node_id
        self.session = session
        # --- client-side state ---
        self.state = ACTIVE
        self.alpha = 0.0
        self.target: Optional[Node] = None
        self.producer_cost = math.inf
        self.candidates: Dict[Node, float] = {}  # origin -> Con_ij (k-hop)
        self.open_servers: Dict[Node, float] = {}  # known admins -> cost
        self.tight_sent: Set[Node] = set()
        self.gamma: Dict[Node, float] = {}
        self.span_sent: Set[Node] = set()
        # --- candidate-side state ---
        self.tights: Dict[Node, _TightRecord] = {}
        self.is_admin = False

    # ------------------------------------------------------------------
    # Capabilities
    # ------------------------------------------------------------------
    @property
    def can_cache(self) -> bool:
        """False for the producer and storage-full nodes (INACTIVE role)."""
        return self.session.can_cache(self.id)

    @property
    def fairness_cost(self) -> float:
        return self.session.fairness_cost(self.id)

    @property
    def done(self) -> bool:
        """True once this node no longer bids (frozen or admin)."""
        return self.state != ACTIVE

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def on_npi(self, msg: NpiMessage) -> None:
        """Learn the new chunk and the contention cost to the producer.

        Unlike the centralized dual ascent (where ``c_ii = 0`` makes every
        node tight with itself), ADMIN promotion here counts only SPAN
        *requests received* — Algorithm 2's "a node that has received
        enough SPAN requests will make itself an ADMIN" — so there is no
        self-support.  This is what makes the hop limit ``k`` bite: a
        candidate must gather ``M`` distinct supporters from within ``k``
        hops (Fig. 3).
        """
        self.producer_cost = msg.cost_from_producer

    def on_cc(self, msg: CcMessage) -> None:
        """Record a candidate and the measured contention cost to it."""
        if msg.origin == self.id:
            return
        cost = msg.accumulated_cost
        previous = self.candidates.get(msg.origin)
        if previous is None or cost < previous:
            self.candidates[msg.origin] = cost

    def on_tight(self, msg: TightMessage) -> None:
        """A client's bid covered the cost of reaching us."""
        if self.is_admin:
            self.session.send_freeze(self.id, msg.sender, server=self.id)
            return
        if not self.can_cache:
            return  # INACTIVE for the facility role
        record = self.tights.get(msg.sender)
        if record is None:
            self.tights[msg.sender] = _TightRecord(
                contention=msg.contention,
                payment=max(0.0, msg.bid - msg.contention),
            )

    def on_span(self, msg: SpanMessage) -> None:
        """A client asks us to fetch the chunk on its behalf."""
        if self.is_admin:
            self.session.send_freeze(self.id, msg.sender, server=self.id)
            return
        if not self.can_cache:
            return
        record = self.tights.get(msg.sender)
        if record is None:
            record = _TightRecord(
                contention=msg.contention, payment=msg.resource_bid
            )
            self.tights[msg.sender] = record
        record.spanned = True
        record.payment = max(record.payment, msg.resource_bid)
        self._maybe_become_admin()

    def on_freeze(self, msg: FreezeMessage) -> None:
        """Instructed to connect to ``msg.server`` and stop bidding."""
        if self.state == ACTIVE:
            self._freeze(msg.server)

    def on_nadmin(self, msg: NAdminMessage) -> None:
        """A candidate we were tight with opened; connect and relay."""
        admin = msg.sender
        cost = self.candidates.get(admin, self.producer_cost)
        self.open_servers[admin] = cost
        if self.state == ACTIVE:
            self._freeze(admin)
        # Backup pointers (Algorithm 1 lines 40-41): clients tight with us
        # can reach the chunk through us → tell them where it lives.
        for client in list(self.tights):
            if client != self.id:
                self.session.send_freeze(self.id, client, server=admin)

    def on_badmin(self, msg: BAdminMessage) -> None:
        """Network-wide admin announcement with estimated cost."""
        self.open_servers[msg.sender] = min(
            self.open_servers.get(msg.sender, math.inf), msg.cost_from_admin
        )
        if self.state == ACTIVE and self.alpha >= msg.cost_from_admin:
            self._freeze(msg.sender)

    # ------------------------------------------------------------------
    # Bid clock
    # ------------------------------------------------------------------
    def client_tick(self, step: float) -> None:
        """One bidding round of the client role (Algorithm 2's while loop)."""
        if self.state != ACTIVE:
            return
        self.alpha += step

        # Freeze to the cheapest affordable open server (producer always
        # counts as open — it inherently has the data).
        best_server: Optional[Node] = None
        best_cost = math.inf
        if self.alpha >= self.producer_cost:
            best_server = self.session.producer
            best_cost = self.producer_cost
        for server, cost in self.open_servers.items():
            if self.alpha >= cost and cost < best_cost:
                best_server = server
                best_cost = cost
        if best_server is not None:
            self._freeze(best_server)
            return

        # TIGHT any newly affordable candidates, then grow relay bids.
        for origin, cost in self.candidates.items():
            if origin in self.tight_sent or self.alpha < cost:
                continue
            self.tight_sent.add(origin)
            self.gamma[origin] = (
                self.alpha if self.session.gamma_starts_at_alpha else 0.0
            )
            self.session.send_tight(
                self.id, origin, contention=cost, bid=self.alpha
            )
        # SPAN policy: "best" concentrates relay requests on the client's
        # cheapest tight candidate (the "popular candidates volunteer"
        # behavior of the abstract); "all" spans every tight candidate.
        span_all = self.session.span_policy == "all"
        best_origin = None
        if not span_all and self.gamma:
            best_origin = min(
                (o for o in self.gamma),
                key=lambda o: (self.candidates[o], self.session.order_index(o)),
            )
        for origin in list(self.gamma):
            if origin in self.span_sent:
                continue
            self.gamma[origin] += step
            if not span_all and origin != best_origin:
                continue
            if self.gamma[origin] >= self.candidates[origin]:
                self.span_sent.add(origin)
                self.session.send_span(
                    self.id,
                    origin,
                    contention=self.candidates[origin],
                    resource_bid=max(
                        0.0, self.alpha - self.candidates[origin]
                    ),
                )

    def candidate_tick(self, step: float) -> None:
        """Grow tight clients' payments in lockstep with the bid clock."""
        if self.is_admin or not self.can_cache:
            return
        # β_j stops growing when client j freezes ("Stop increasing α, β,
        # γ"); until then it tracks the shared bid clock.
        for client, record in self.tights.items():
            if not self.session.is_done(client):
                record.payment += step
        self._maybe_become_admin()

    def progress_possible(self) -> bool:
        """Can this node still change protocol state by ticking alone?

        The fault-mode stall detector (``ChunkSession._tick``) stops the
        bid clock when the simulator has drained and no online node can
        make headway without a message it will never receive.  Progress
        means one of:

        * the client can still freeze — it knows a finite escape cost
          (producer or an announced open server), which a growing ``α``
          is guaranteed to cover;
        * the client still owes a TIGHT or SPAN send — candidate costs
          are finite, so the bid clock will eventually trigger it (the
          sent-sets grow monotonically, so this cannot recur forever);
        * the candidate role can still promote — with ≥ M live SPAN
          supporters its payments grow every tick until they cover
          ``f_i`` (or supporters freeze and the condition lapses).

        A node with none of these is inert: ticking it only inflates
        ``α`` with no observable effect.
        """
        if self.state == ACTIVE:
            if self.producer_cost < math.inf:
                return True
            if any(cost < math.inf for cost in self.open_servers.values()):
                return True
            if len(self.tight_sent) < len(self.candidates):
                return True
            if self.session.span_policy == "all":
                if any(origin not in self.span_sent for origin in self.gamma):
                    return True
            elif self.gamma:
                best = min(
                    (o for o in self.gamma),
                    key=lambda o: (
                        self.candidates[o], self.session.order_index(o)
                    ),
                )
                if best not in self.span_sent:
                    return True
        if self.can_cache and not self.is_admin:
            live_spans = sum(
                1
                for client, record in self.tights.items()
                if record.spanned and not self.session.is_done(client)
            )
            if live_spans >= self.session.span_threshold:
                return True
        return False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _freeze(self, server: Node) -> None:
        self.state = FROZEN if server != self.id else ADMIN
        self.target = server
        self.session.notify_done(self.id)

    def promotion_valid(self) -> bool:
        """ADMIN condition: ≥ M live SPAN supporters and ``f_i`` paid."""
        if self.is_admin or not self.can_cache:
            return False
        live_spans = sum(
            1
            for client, record in self.tights.items()
            if record.spanned and not self.session.is_done(client)
        )
        if live_spans < self.session.span_threshold:
            return False
        total_payment = sum(r.payment for r in self.tights.values())
        return total_payment + 1e-12 >= self.fairness_cost

    def _maybe_become_admin(self) -> None:
        if self.promotion_valid():
            self.session.request_promotion(self.id)

    def promote(self) -> None:
        """Become ADMIN: announce, freeze supporters, fetch the chunk."""
        self.is_admin = True
        self.state = ADMIN
        self.target = self.id
        self.session.notify_done(self.id)
        self.session.register_admin(self.id)
        for client in list(self.tights):
            if client != self.id:
                self.session.send_nadmin(self.id, client)
        self.session.broadcast_badmin(self.id)
        # "Proactively request Data chunk from Producer" happens via
        # register_admin: the session wires the dissemination tree.
