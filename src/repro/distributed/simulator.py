"""A small deterministic discrete-event simulator.

The distributed algorithm (Sec. IV-C) is "basically event driven": nodes
react to received control messages and to their own bidding clock.  This
module provides the engine: a priority queue of timestamped events with a
monotone sequence number as tie-breaker, so runs are exactly reproducible.

The simulator knows nothing about networks or caching — it schedules
callables.  :mod:`repro.distributed.protocol` builds the message-passing
layer on top.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs import get_recorder, get_tracer

Handler = Callable[[], None]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    handler: Handler = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event if it has not fired yet."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class Simulator:
    """Deterministic discrete-event loop.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._queue: List[_Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._max_queue_depth = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def max_queue_depth(self) -> int:
        """High-water mark of the event queue (cancelled events included)."""
        return self._max_queue_depth

    def schedule(self, delay: float, handler: Handler) -> EventHandle:
        """Schedule ``handler`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = _Event(self._now + delay, next(self._seq), handler)
        heapq.heappush(self._queue, event)
        if len(self._queue) > self._max_queue_depth:
            self._max_queue_depth = len(self._queue)
        return EventHandle(event)

    def schedule_at(self, time: float, handler: Handler) -> EventHandle:
        """Schedule ``handler`` at an absolute simulation time."""
        return self.schedule(time - self._now, handler)

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.handler()
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: int = 10_000_000
    ) -> None:
        """Run until the queue drains, ``until`` is reached, or the event
        budget is exhausted (which raises, as a runaway-protocol guard)."""
        executed = 0
        try:
            while self._queue:
                next_event = self._peek()
                if next_event is None:
                    return
                if until is not None and next_event.time > until:
                    self._now = until
                    return
                self.step()
                executed += 1
                if executed >= max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; likely a "
                        "non-terminating protocol"
                    )
        finally:
            if executed:
                obs = get_recorder()
                obs.count("sim.events", executed)
                obs.gauge("sim.max_queue_depth", self._max_queue_depth)
                trace = get_tracer()
                if trace.enabled:
                    trace.instant(
                        "sim.run",
                        track="sim",
                        args={
                            "events": executed,
                            "max_queue_depth": self._max_queue_depth,
                            "sim_time": self._now,
                        },
                    )

    def _peek(self) -> Optional[_Event]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None
