"""A small deterministic discrete-event simulator.

The distributed algorithm (Sec. IV-C) is "basically event driven": nodes
react to received control messages and to their own bidding clock.  This
module provides the engine: a priority queue of timestamped events with a
monotone sequence number as tie-breaker, so runs are exactly reproducible.

The simulator knows nothing about networks or caching — it schedules
callables.  :mod:`repro.distributed.protocol` builds the message-passing
layer on top.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs import get_recorder, get_tracer

Handler = Callable[[], None]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    handler: Handler = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    def cancel(self) -> None:
        """Cancel the event if it has not fired yet."""
        if not self._event.cancelled and not self._event.fired:
            self._event.cancelled = True
            self._sim._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class Simulator:
    """Deterministic discrete-event loop.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    #: Absolute times within this relative tolerance of "now" are clamped
    #: to "now" by :meth:`schedule_at` — float-rounding residue from
    #: chained time arithmetic, not a genuine attempt to rewrite history.
    PAST_TOLERANCE = 1e-9

    def __init__(self) -> None:
        self._queue: List[_Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._max_queue_depth = 0
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of queued (non-cancelled) events."""
        return len(self._queue) - self._cancelled

    @property
    def max_queue_depth(self) -> int:
        """High-water mark of live (non-cancelled) queued events."""
        return self._max_queue_depth

    def schedule(self, delay: float, handler: Handler) -> EventHandle:
        """Schedule ``handler`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = _Event(self._now + delay, next(self._seq), handler)
        heapq.heappush(self._queue, event)
        live = len(self._queue) - self._cancelled
        if live > self._max_queue_depth:
            self._max_queue_depth = live
        return EventHandle(event, self)

    def schedule_at(self, time: float, handler: Handler) -> EventHandle:
        """Schedule ``handler`` at an absolute simulation time.

        Tiny negative deltas — the rounding residue of accumulating
        ``now`` through repeated float additions — are clamped to "fire
        immediately" instead of raising :class:`SimulationError`.
        """
        delay = time - self._now
        if delay < 0 and -delay <= self.PAST_TOLERANCE * max(
            1.0, abs(time), abs(self._now)
        ):
            delay = 0.0
        return self.schedule(delay, handler)

    def _note_cancelled(self) -> None:
        """An :class:`EventHandle` cancelled a still-queued event.

        Cancelled entries stay in the heap (removing from the middle of a
        heap is O(n)); once they outnumber the live events the queue is
        compacted in one O(n) pass, so mass-cancelled retransmission
        timers can no longer grow ``_queue`` without bound.
        """
        self._cancelled += 1
        if self._cancelled * 2 > len(self._queue):
            self._queue = [e for e in self._queue if not e.cancelled]
            heapq.heapify(self._queue)
            self._cancelled = 0

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = event.time
            self._events_processed += 1
            event.fired = True
            event.handler()
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: int = 10_000_000
    ) -> None:
        """Run until the queue drains, ``until`` is reached, or the event
        budget is exhausted (which raises, as a runaway-protocol guard)."""
        executed = 0
        try:
            while self._queue:
                next_event = self._peek()
                if next_event is None:
                    return
                if until is not None and next_event.time > until:
                    self._now = until
                    return
                self.step()
                executed += 1
                if executed >= max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; likely a "
                        "non-terminating protocol"
                    )
        finally:
            if executed:
                obs = get_recorder()
                obs.count("sim.events", executed)
                obs.gauge("sim.max_queue_depth", self._max_queue_depth)
                trace = get_tracer()
                if trace.enabled:
                    trace.instant(
                        "sim.run",
                        track="sim",
                        args={
                            "events": executed,
                            "max_queue_depth": self._max_queue_depth,
                            "sim_time": self._now,
                        },
                    )

    def _peek(self) -> Optional[_Event]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._cancelled -= 1
        return self._queue[0] if self._queue else None
