"""Control messages of the distributed algorithm (Table II).

| Packet  | Content                                               | Range     |
|---------|-------------------------------------------------------|-----------|
| NPI     | a new data chunk waits to be cached                   | broadcast |
| CC      | contention collection request                         | local     |
| TIGHT   | bid covered the contention cost ("can I get data?")   | local     |
| SPAN    | relay bid covered the cost ("can you fetch for me?")  | local     |
| FREEZE  | response freezing a node onto a server                | local     |
| NADMIN  | new admin informs the nodes tight with it             | local     |
| BADMIN  | new admin announces itself network-wide               | broadcast |

"Local" messages are scoped to ``k`` hops (k = 2 in the evaluation,
Fig. 3).  :class:`MessageStats` tallies both logical messages and
hop-weighted transmissions, which the Table II complexity check
(``O(QN + N²)``) is run against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable

Node = Hashable

NPI = "NPI"
CC = "CC"
TIGHT = "TIGHT"
SPAN = "SPAN"
FREEZE = "FREEZE"
NADMIN = "NADMIN"
BADMIN = "BADMIN"

ALL_TYPES = (NPI, CC, TIGHT, SPAN, FREEZE, NADMIN, BADMIN)


@dataclass(frozen=True)
class Message:
    """Base class: every message names its type, sender and chunk.

    ``seq`` is the session-unique sequence number stamped by the
    :class:`~repro.distributed.faults.FaultPlane`.  Retransmissions of a
    message reuse its original ``seq``, which is what lets receivers
    suppress duplicate deliveries; ``-1`` marks a message that never
    crossed the fault plane (unit-test construction).
    """

    sender: Node
    chunk: int
    seq: int = -1


@dataclass(frozen=True)
class NpiMessage(Message):
    """New Packet Info — flooded from the producer; accumulates the path
    contention cost so every node learns its cost to reach the producer."""

    cost_from_producer: float = 0.0
    hops: int = 0

    type: str = NPI


@dataclass(frozen=True)
class CcMessage(Message):
    """Contention Collection — flooded ``k`` hops from a candidate;
    accumulates node contention costs so receivers learn ``Con_ij``."""

    origin: Node = None
    accumulated_cost: float = 0.0
    hops: int = 0

    type: str = CC


@dataclass(frozen=True)
class TightMessage(Message):
    """Client's bid ``α_j`` covered ``Con_ij``: "Can I get data from you?"

    Carries the contention cost the client measured so the candidate can
    track the client's payment ``β`` without further traffic."""

    target: Node = None
    contention: float = 0.0
    bid: float = 0.0

    type: str = TIGHT


@dataclass(frozen=True)
class SpanMessage(Message):
    """Client's relay bid ``γ_j`` covered ``Con_ij``: "Can you fetch data
    for me from other nodes?"  Carries the current resource bid ``β_j``."""

    target: Node = None
    contention: float = 0.0
    resource_bid: float = 0.0

    type: str = SPAN


@dataclass(frozen=True)
class FreezeMessage(Message):
    """Freeze the receiver onto server ``server`` (stop bidding)."""

    server: Node = None

    type: str = FREEZE


@dataclass(frozen=True)
class NAdminMessage(Message):
    """A node became ADMIN; sent to the nodes tight with it."""

    type: str = NADMIN


@dataclass(frozen=True)
class BAdminMessage(Message):
    """Network-wide admin announcement; accumulates path cost like NPI so
    distant actives can estimate their contention to the new admin."""

    cost_from_admin: float = 0.0
    hops: int = 0

    type: str = BADMIN


@dataclass
class MessageStats:
    """Counters for delivered messages, by type.

    ``messages`` counts logical deliveries (one per receiving node);
    ``transmissions`` weights each delivery by the hop distance it
    travelled — the radio-level cost.
    """

    messages: Dict[str, int] = field(
        default_factory=lambda: {t: 0 for t in ALL_TYPES}
    )
    transmissions: Dict[str, int] = field(
        default_factory=lambda: {t: 0 for t in ALL_TYPES}
    )

    def record(self, msg_type: str, hops: int) -> None:
        """Record one delivery of ``msg_type`` over ``hops`` hops."""
        self.messages[msg_type] += 1
        self.transmissions[msg_type] += max(1, hops)

    def total_messages(self) -> int:
        return sum(self.messages.values())

    def total_transmissions(self) -> int:
        return sum(self.transmissions.values())

    def merge(self, other: "MessageStats") -> None:
        """Accumulate another stats object into this one."""
        for t in ALL_TYPES:
            self.messages[t] += other.messages[t]
            self.transmissions[t] += other.transmissions[t]
