"""Multi-start local search to (near-)optimality for one chunk's ConFL.

For a *fixed* cache set ``A`` the rest of the chunk problem is easy: the
optimal assignment is nearest-server, and the optimal dissemination tree
is the minimum Steiner tree over ``A ∪ {producer}``.  So the search space
is just subsets of facilities, and classic add / drop / swap local search
over it converges to strong optima quickly.

Pricing: during the descent, trees are priced with a *cached* KMB
2-approximation (metric closure looked up from a one-time all-pairs
Dijkstra, so each evaluation is ~|A|² table lookups plus a tiny MST).
Final incumbents with few enough terminals are re-priced with the exact
Dreyfus–Wagner DP, which also yields the tree edges that get committed.

Role in the reproduction: the paper's ``Brtf`` uses PuLP; the MILP stack
in :mod:`repro.exact.ilp_formulation` is provably exact but this
environment's MILP backend is far too slow beyond toy sizes (see
EXPERIMENTS.md), so ``solve_exact(method="local")`` is the practical
optimum reference for the 4×4 / 6×6 figures.  The test suite verifies the
local search matches the subset-enumeration optimum on every instance
small enough to enumerate.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.graphs.graph import Graph
from repro.graphs.mst import kruskal_mst
from repro.graphs.shortest_paths import path_from_tree
from repro.graphs.steiner import all_pairs_with_parents, dreyfus_wagner
from repro.core.confl import ConFLInstance

Node = Hashable

#: Above this many tree terminals, the final re-pricing skips exact DW.
MAX_EXACT_TERMINALS = 10


class _ChunkObjective:
    """Pricing of cache sets under one ConFL instance (heavily cached)."""

    def __init__(self, instance: ConFLInstance, exact_terminals: int) -> None:
        self.instance = instance
        self.exact_terminals = exact_terminals
        self.facilities = [
            f
            for f in instance.facilities
            if math.isfinite(instance.open_cost[f])
        ]
        # One-time all-pairs shortest paths on the dissemination graph.
        self._dist, self._parents = all_pairs_with_parents(
            instance.steiner_graph
        )
        self._tree_cost_cache: Dict[FrozenSet[Node], float] = {}

    # ------------------------------------------------------------------
    # Tree pricing
    # ------------------------------------------------------------------
    def tree_cost(self, caches: FrozenSet[Node]) -> float:
        """KMB-priced dissemination cost of ``caches`` (cached)."""
        if not caches:
            return 0.0
        cost = self._tree_cost_cache.get(caches)
        if cost is None:
            cost = self._kmb_cost([self.instance.producer] + sorted(caches, key=str))
            self._tree_cost_cache[caches] = cost
        return cost

    def _kmb_cost(self, terminals: List[Node]) -> float:
        """Metric-closure MST expanded over real paths, deduplicating
        shared edges (the standard KMB construction, from cached APSP)."""
        if len(terminals) == 1:
            return 0.0
        closure = Graph()
        closure.add_nodes(terminals)
        for a_index, a in enumerate(terminals):
            row = self._dist[a]
            for b in terminals[a_index + 1 :]:
                closure.add_edge(a, b, row[b])
        mst = kruskal_mst(closure)
        edges = set()
        for a, b, _ in mst.edges():
            path = path_from_tree(self._parents[a], a, b)
            for u, v in zip(path, path[1:]):
                edges.add(frozenset((u, v)))
        # Canonically ordered sum: set iteration order is not byte-stable
        # and float addition is order-dependent.
        total = 0.0
        for key in sorted(edges, key=lambda e: tuple(sorted(map(repr, e)))):
            u, v = tuple(key)
            total += self.instance.steiner_graph.weight(u, v)
        return total

    def exact_tree(
        self, caches: FrozenSet[Node]
    ) -> Tuple[float, List[Tuple[Node, Node]]]:
        """Exact (or KMB if too large) tree cost and edges for a final set."""
        if not caches:
            return 0.0, []
        terminals = [self.instance.producer] + sorted(caches, key=str)
        if len(terminals) <= self.exact_terminals:
            cost, tree = dreyfus_wagner(
                self.instance.steiner_graph, terminals,
                apsp=(self._dist, self._parents),
            )
        else:
            cost, tree = self._kmb_tree(terminals)
        return cost, [(u, v) for u, v, _ in tree.edges()]

    def _kmb_tree(self, terminals: List[Node]) -> Tuple[float, Graph]:
        closure = Graph()
        closure.add_nodes(terminals)
        for a_index, a in enumerate(terminals):
            row = self._dist[a]
            for b in terminals[a_index + 1 :]:
                closure.add_edge(a, b, row[b])
        mst = kruskal_mst(closure)
        expanded = Graph()
        for a, b, _ in mst.edges():
            path = path_from_tree(self._parents[a], a, b)
            for u, v in zip(path, path[1:]):
                if not expanded.has_edge(u, v):
                    expanded.add_edge(
                        u, v, self.instance.steiner_graph.weight(u, v)
                    )
        tree = kruskal_mst(expanded)
        terminal_set = set(terminals)
        pruned = True
        while pruned:
            pruned = False
            for node in list(tree.nodes()):
                if node not in terminal_set and tree.degree(node) <= 1:
                    tree.remove_node(node)
                    pruned = True
        return sum(w for _, _, w in tree.edges()), tree

    # ------------------------------------------------------------------
    # Full objective
    # ------------------------------------------------------------------
    def evaluate(self, caches: FrozenSet[Node]) -> float:
        """Chunk objective (Eq. 8's inner problem), KMB-priced tree."""
        inst = self.instance
        open_cost = sum(inst.open_cost[i] for i in caches)
        access = self.access_cost(caches)
        return (
            open_cost
            + access
            + inst.dissemination_scale * self.tree_cost(caches)
        )

    def access_cost(self, caches: FrozenSet[Node]) -> float:
        inst = self.instance
        servers = [inst.producer] + list(caches)
        total = 0.0
        for j in inst.clients:
            total += min(inst.connect_cost[s][j] for s in servers)
        return total

    def exact_objective(self, caches: FrozenSet[Node]) -> float:
        """Objective with the exact (DW) tree where feasible."""
        inst = self.instance
        tree_cost, _ = self.exact_tree(caches)
        return (
            sum(inst.open_cost[i] for i in caches)
            + self.access_cost(caches)
            + inst.dissemination_scale * tree_cost
        )

    def assignment(self, caches: FrozenSet[Node]) -> Dict[Node, Node]:
        """Nearest-server assignment for a cache set (deterministic ties)."""
        inst = self.instance
        result: Dict[Node, Node] = {}
        ordered = sorted(caches, key=str)
        for j in inst.clients:
            best = inst.producer
            best_cost = inst.connect_cost[inst.producer][j]
            for s in ordered:
                cost = inst.connect_cost[s][j]
                if cost < best_cost:
                    best = s
                    best_cost = cost
            result[j] = best
        return result


def optimize_chunk_local(
    instance: ConFLInstance,
    starts: Optional[Iterable[Iterable[Node]]] = None,
    exact_terminals: int = MAX_EXACT_TERMINALS,
    max_rounds: int = 200,
) -> Tuple[List[Node], Dict[Node, Node], List[Tuple[Node, Node]], float]:
    """Best (caches, assignment, tree_edges, objective) found by local
    search over facility subsets.

    Always starts from the empty set (greedy build-up) and the full
    facility set (greedy pare-down); callers add warm starts (e.g. the
    dual-ascent ADMIN set).  The best local optimum's tree is re-priced
    exactly when small enough (``exact_terminals``), and the returned
    objective reflects that final pricing.
    """
    objective = _ChunkObjective(instance, exact_terminals)
    start_sets: List[FrozenSet[Node]] = [
        frozenset(),
        frozenset(objective.facilities),
    ]
    if starts:
        facility_set = set(objective.facilities)
        for s in starts:
            candidate = frozenset(i for i in s if i in facility_set)
            if candidate not in start_sets:
                start_sets.append(candidate)

    best_set: Optional[FrozenSet[Node]] = None
    best_cost = math.inf
    for start in start_sets:
        local_set, _ = _descend(objective, start, max_rounds)
        # Compare finals under the exact pricing so ties/finishes are fair.
        exact_cost = objective.exact_objective(local_set)
        if exact_cost < best_cost - 1e-12:
            best_cost = exact_cost
            best_set = local_set
    assert best_set is not None
    _, edges = objective.exact_tree(best_set)
    assignment = objective.assignment(best_set)
    return sorted(best_set, key=str), assignment, edges, best_cost


def _descend(
    objective: _ChunkObjective, start: FrozenSet[Node], max_rounds: int
) -> Tuple[FrozenSet[Node], float]:
    """Best-improvement add/drop/swap descent from ``start``."""
    current = start
    current_cost = objective.evaluate(current)
    facilities = objective.facilities
    for _ in range(max_rounds):
        best_move: Optional[FrozenSet[Node]] = None
        best_cost = current_cost
        # Add moves.
        for i in facilities:
            if i in current:
                continue
            candidate = current | {i}
            cost = objective.evaluate(candidate)
            if cost < best_cost - 1e-9:
                best_cost = cost
                best_move = candidate
        # Drop moves.
        for i in current:
            candidate = current - {i}
            cost = objective.evaluate(candidate)
            if cost < best_cost - 1e-9:
                best_cost = cost
                best_move = candidate
        # Swap moves (only when neither add nor drop improved — keeps the
        # quadratic neighborhood off the hot path).
        if best_move is None:
            for i in current:
                without = current - {i}
                for k in facilities:
                    if k in current:
                        continue
                    candidate = without | {k}
                    cost = objective.evaluate(candidate)
                    if cost < best_cost - 1e-9:
                        best_cost = cost
                        best_move = candidate
        if best_move is None:
            break
        current = best_move
        current_cost = best_cost
    return current, current_cost
