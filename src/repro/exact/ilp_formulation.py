"""The per-chunk ConFL ILP (Eqs. 3–7) in compact flow form.

Eq. 6 is a cut-set constraint over *every* node subset — exponentially
many rows.  We replace it with the standard single-commodity-flow encoding
of Steiner connectivity, which is equivalent for the integral problem and
compact (O(|E|) rows):

* one unit of flow is produced at the producer per open facility,
* each open facility consumes one unit,
* flow may only traverse edges bought for dissemination
  (``flow ≤ |F| · z_e``),

so the ``z_e = 1`` edges necessarily connect all open facilities to the
producer.  The objective and constraints (4), (5), (7) are verbatim.

The model is built from a :class:`~repro.core.confl.ConFLInstance`, i.e.
with the fairness/contention costs of the *current* storage state — the
exact solver iterates chunks exactly like Algorithm 1 does (Eq. 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from repro.core.confl import ConFLInstance
from repro.ilp import Model, Variable, lin_sum

Node = Hashable


@dataclass
class ChunkModel:
    """A built ILP plus the variable handles needed to read the solution."""

    model: Model
    open_vars: Dict[Node, Variable]
    assign_vars: Dict[Tuple[Node, Node], Variable]
    edge_vars: Dict[Tuple[Node, Node], Variable]

    def extract(self, solution) -> Tuple[List[Node], Dict[Node, Node], List[Tuple[Node, Node]]]:
        """Read (caches, assignment, tree_edges) from a solved model."""
        caches = [
            node
            for node, var in self.open_vars.items()
            if solution[var] > 0.5
        ]
        assignment: Dict[Node, Node] = {}
        for (server, client), var in self.assign_vars.items():
            if solution[var] > 0.5:
                assignment[client] = server
        tree_edges = [
            edge for edge, var in self.edge_vars.items() if solution[var] > 0.5
        ]
        return caches, assignment, tree_edges


def build_chunk_model(
    instance: ConFLInstance,
    name: str = "confl",
    connectivity: str = "multiflow",
) -> ChunkModel:
    """Build the single-chunk ILP from a ConFL instance snapshot.

    ``connectivity`` selects how Eq. 6 is encoded:

    * ``"multiflow"`` (default) — one flow commodity per facility with
      per-arc capacity ``z_e``; the tightest LP relaxation of the three
      and, despite being the largest model, the fastest to solve on the
      paper's grid sizes;
    * ``"flow"`` — compact single-commodity flow;
    * ``"none"`` — omit connectivity; the caller runs the cut-generation
      loop (:func:`solve_chunk_with_cuts`) that adds violated cut-set rows
      of Eq. 6 lazily.  Singleton cuts (δ({i}) ≥ y_i) are preseeded.

    In every mode a deterministic, strictly increasing micro-epsilon is
    added to each facility's opening cost: on the first chunk all
    ``f_i = 0`` (empty caches), leaving the optimum massively degenerate,
    and unbroken symmetry is what makes branch-and-bound crawl.  The
    epsilons (< 1e-4 total) are orders of magnitude below any real cost
    difference, so the selected optimum is an exact optimum of the
    unperturbed model too.
    """
    if connectivity not in ("multiflow", "flow", "none"):
        raise ValueError(f"unknown connectivity mode {connectivity!r}")
    model = Model(name)
    producer = instance.producer
    clients = list(instance.clients)
    facilities = [
        f for f in instance.facilities if math.isfinite(instance.open_cost[f])
    ]
    servers = [producer] + facilities

    # y_in — cache the chunk at facility i (Eq. 7 domain).
    open_vars = {i: model.binary_var(f"y_{i}") for i in facilities}
    # x_ijn — client j fetches from server i.
    assign_vars: Dict[Tuple[Node, Node], Variable] = {}
    for i in servers:
        for j in clients:
            assign_vars[(i, j)] = model.binary_var(f"x_{i}_{j}")
    # z_en — edge e carries the dissemination of this chunk.
    edge_list = [(u, v) for u, v, _ in instance.steiner_graph.edges()]
    edge_vars = {e: model.binary_var(f"z_{e[0]}_{e[1]}") for e in edge_list}

    # Constraint (4): every client is served exactly once.
    for j in clients:
        model.add_constraint(
            lin_sum(assign_vars[(i, j)] for i in servers) == 1,
            name=f"served_{j}",
        )
    # Constraint (5): serving requires caching (producer always serves).
    for i in facilities:
        for j in clients:
            model.add_constraint(
                open_vars[i] - assign_vars[(i, j)] >= 0,
                name=f"open_{i}_{j}",
            )

    incident: Dict[Node, List[Tuple[Node, Node]]] = {}
    for u, v in edge_list:
        incident.setdefault(u, []).append((u, v))
        incident.setdefault(v, []).append((v, u))

    if connectivity == "flow" and facilities:
        # Constraint (6), flow form: one unit shipped per open facility.
        flow_vars: Dict[Tuple[Node, Node], Variable] = {}
        for u, v in edge_list:
            flow_vars[(u, v)] = model.continuous_var(f"f_{u}_{v}")
            flow_vars[(v, u)] = model.continuous_var(f"f_{v}_{u}")
        num_f = len(facilities)

        def net_outflow(node: Node):
            out_arcs = incident.get(node, [])
            return lin_sum(flow_vars[a] for a in out_arcs) - lin_sum(
                flow_vars[(b, a)] for a, b in out_arcs
            )

        model.add_constraint(
            net_outflow(producer) == lin_sum(open_vars.values()),
            name="flow_producer",
        )
        for node in instance.steiner_graph.nodes():
            if node == producer:
                continue
            demand = open_vars.get(node)
            if demand is not None:
                model.add_constraint(
                    net_outflow(node) + demand == 0, name=f"flow_{node}"
                )
            else:
                model.add_constraint(net_outflow(node) == 0, name=f"flow_{node}")
        # Flow only on bought edges (per-direction caps: tighter LP).
        for u, v in edge_list:
            cap = float(num_f)
            model.add_constraint(
                flow_vars[(u, v)] - cap * edge_vars[(u, v)] <= 0,
                name=f"cap_{u}_{v}",
            )
            model.add_constraint(
                flow_vars[(v, u)] - cap * edge_vars[(u, v)] <= 0,
                name=f"cap_{v}_{u}",
            )

    if connectivity == "multiflow" and facilities:
        # Constraint (6), disaggregated: one unit of commodity k flows
        # from the producer to facility k iff y_k = 1, and every arc a
        # used by any commodity needs z_e = 1 (f^k_a ≤ z_e).  The LP
        # relaxation forces z_e ≥ max_k f^k_a instead of ≥ Σ/|F|, which
        # is what makes this encoding branch so much less.
        for k in facilities:
            flow_k: Dict[Tuple[Node, Node], Variable] = {}
            for u, v in edge_list:
                flow_k[(u, v)] = model.continuous_var(f"f{k}_{u}_{v}")
                flow_k[(v, u)] = model.continuous_var(f"f{k}_{v}_{u}")

            def net_out_k(node: Node, flows=flow_k):
                out_arcs = incident.get(node, [])
                return lin_sum(flows[a] for a in out_arcs) - lin_sum(
                    flows[(b, a)] for a, b in out_arcs
                )

            model.add_constraint(
                net_out_k(producer) - open_vars[k] == 0,
                name=f"mf_src_{k}",
            )
            for node in instance.steiner_graph.nodes():
                if node == producer:
                    continue
                if node == k:
                    model.add_constraint(
                        net_out_k(node) + open_vars[k] == 0,
                        name=f"mf_sink_{k}",
                    )
                else:
                    model.add_constraint(
                        net_out_k(node) == 0, name=f"mf_{k}_{node}"
                    )
            for u, v in edge_list:
                model.add_constraint(
                    flow_k[(u, v)] - edge_vars[(u, v)] <= 0,
                    name=f"mfcap_{k}_{u}_{v}",
                )
                model.add_constraint(
                    flow_k[(v, u)] - edge_vars[(u, v)] <= 0,
                    name=f"mfcap_{k}_{v}_{u}",
                )

    if connectivity == "none" and facilities:
        # Preseed the singleton cut-set rows of Eq. 6: an open facility
        # needs at least one bought incident edge.  The cut loop adds the
        # rest lazily.
        for i in facilities:
            arcs = incident.get(i, [])
            edges_at_i = [
                (u, v) if (u, v) in edge_vars else (v, u) for u, v in arcs
            ]
            if edges_at_i:
                # dict.fromkeys dedupes while keeping first-seen order;
                # set() here would emit constraint terms in hash order.
                model.add_constraint(
                    lin_sum(edge_vars[e] for e in dict.fromkeys(edges_at_i))
                    - open_vars[i]
                    >= 0,
                    name=f"cut0_{i}",
                )

    # Objective (Eq. 8's inner problem): fairness + access + M·dissemination.
    # Per-facility micro-epsilons (see docstring): break the massive
    # symmetry of the f_i = 0 first chunk, and prevent the solver from
    # opening cost-free client-less facilities.
    objective = lin_sum(
        [
            (instance.open_cost[i] + 1e-4 + 1e-6 * rank) * open_vars[i]
            for rank, i in enumerate(facilities)
        ]
        + [
            instance.connect_cost[i][j] * assign_vars[(i, j)]
            for i in servers
            for j in clients
        ]
        + [
            instance.dissemination_scale
            * instance.steiner_graph.weight(u, v)
            * edge_vars[(u, v)]
            for u, v in edge_list
        ]
    )
    model.set_objective(objective)
    return ChunkModel(
        model=model,
        open_vars=open_vars,
        assign_vars=assign_vars,
        edge_vars=edge_vars,
    )
