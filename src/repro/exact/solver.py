"""The brute-force exact solver (``Brtf`` in the figures).

The paper obtains its optimum "by brute-force" with the PuLP modeler
(Sec. V-A), iterating the per-chunk problem of Eq. 8: solve one chunk's
ConFL ILP exactly with the current fairness/contention costs, commit, and
continue — exactly the iteration scheme Theorem 1 analyses, so the
empirical ratio ``Appx / Brtf`` is the quantity bounded by 6.55.

Solution methods (``method=``):

* ``"local"`` (default) — multi-start add/drop/swap local search with
  exact Dreyfus–Wagner Steiner pricing
  (:mod:`repro.exact.local_search`).  Matches the enumeration optimum on
  every instance small enough to enumerate (verified in the test suite)
  and is the only method fast enough for the paper's 4×4/6×6 figures in
  this offline environment, whose MILP backend is extremely slow (see
  EXPERIMENTS.md).
* ``"multiflow"`` / ``"flow"`` — provably exact MILP encodings of
  Eqs. 3–7 (disaggregated / single-commodity flow for Eq. 6).
* ``"cuts"`` — lazy cut generation adding violated Eq. 6 rows.

Two MILP backends (our branch-and-bound, scipy's HiGHS) solve identical
models; the test suite cross-checks them, the local search, and a
subset-enumeration brute force (:mod:`repro.exact.brute_force`) on tiny
instances.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import SolverError
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_order
from repro.ilp import lin_sum
from repro.core.commit import commit_chunk
from repro.core.confl import ConFLInstance, build_confl_instance
from repro.core.placement import CachePlacement, ChunkPlacement, edge_key
from repro.core.problem import CachingProblem, ProblemState
from repro.exact.ilp_formulation import ChunkModel, build_chunk_model

Node = Hashable

ALGORITHM_NAME = "bruteforce"

_MAX_CUT_ROUNDS = 200


def solve_chunk_with_cuts(
    instance: ConFLInstance,
    backend: str = "auto",
    time_limit: Optional[float] = None,
    name: str = "confl",
) -> Tuple[List[Node], Dict[Node, Node], List[Tuple[Node, Node]], float]:
    """Optimal (caches, assignment, tree_edges, objective) via lazy cuts."""
    chunk_model = build_chunk_model(instance, name=name, connectivity="none")
    model = chunk_model.model
    for _ in range(_MAX_CUT_ROUNDS):
        solution = model.solve(backend=backend, time_limit=time_limit)
        caches, assignment, tree_edges = chunk_model.extract(solution)
        violations = _disconnected_components(instance, caches, tree_edges)
        if not violations:
            return caches, assignment, tree_edges, solution.objective
        for component, open_nodes in violations:
            boundary = _boundary_edges(instance, component)
            for i in open_nodes:
                model.add_constraint(
                    lin_sum(chunk_model.edge_vars[e] for e in boundary)
                    - chunk_model.open_vars[i]
                    >= 0,
                    name=f"cut_{i}_{model.num_constraints}",
                )
    raise SolverError(
        f"cut generation did not converge in {_MAX_CUT_ROUNDS} rounds"
    )


def _disconnected_components(
    instance: ConFLInstance,
    caches: List[Node],
    tree_edges: List[Tuple[Node, Node]],
) -> List[Tuple[Set[Node], List[Node]]]:
    """Components of the z-edge subgraph that hold caches but no producer."""
    if not caches:
        return []
    z_graph = Graph()
    z_graph.add_nodes(instance.steiner_graph.nodes())
    for u, v in tree_edges:
        z_graph.add_edge(u, v)
    reachable = set(bfs_order(z_graph, instance.producer))
    stranded = [i for i in caches if i not in reachable]
    if not stranded:
        return []
    violations: List[Tuple[Set[Node], List[Node]]] = []
    seen: Set[Node] = set()
    for i in stranded:
        if i in seen:
            continue
        component = set(bfs_order(z_graph, i))
        seen |= component
        open_in_component = [c for c in caches if c in component]
        violations.append((component, open_in_component))
    return violations


def _boundary_edges(
    instance: ConFLInstance, component: Set[Node]
) -> List[Tuple[Node, Node]]:
    """δ(S): graph edges with exactly one endpoint in ``component``,
    keyed in the edge-variable orientation."""
    boundary = []
    for u, v, _ in instance.steiner_graph.edges():
        if (u in component) != (v in component):
            boundary.append((u, v))
    return boundary


def solve_exact_chunk(
    state: ProblemState,
    chunk: int,
    backend: str = "auto",
    time_limit: Optional[float] = None,
    method: str = "local",
) -> ChunkPlacement:
    """Optimally place one chunk under the current storage state."""
    instance = build_confl_instance(state)
    if method == "local":
        from repro.core.dual_ascent import dual_ascent
        from repro.exact.local_search import optimize_chunk_local

        warm_start = dual_ascent(instance).admins
        caches, assignment, tree_edges, _ = optimize_chunk_local(
            instance, starts=[warm_start]
        )
    elif method == "cuts":
        caches, assignment, tree_edges, _ = solve_chunk_with_cuts(
            instance, backend=backend, time_limit=time_limit,
            name=f"confl_chunk{chunk}",
        )
    elif method in ("flow", "multiflow"):
        chunk_model = build_chunk_model(
            instance, name=f"confl_chunk{chunk}", connectivity=method
        )
        solution = chunk_model.model.solve(backend=backend, time_limit=time_limit)
        caches, assignment, tree_edges = chunk_model.extract(solution)
    else:
        raise SolverError(f"unknown exact method {method!r}")
    return commit_chunk(
        state,
        chunk,
        caches,
        assignment=assignment,
        tree_edges=frozenset(edge_key(u, v) for u, v in tree_edges),
    )


def solve_exact(
    problem: CachingProblem,
    backend: str = "auto",
    time_limit_per_chunk: Optional[float] = None,
    method: str = "local",
) -> CachePlacement:
    """Run the iterated exact solver over all chunks of ``problem``.

    Parameters
    ----------
    backend:
        ``"auto"`` (HiGHS when available), ``"highs"``, or ``"bnb"`` for
        the in-repo branch-and-bound.
    time_limit_per_chunk:
        Optional wall-clock limit per chunk ILP (best effort; with
        ``method="cuts"`` it applies per cut round).
    method:
        ``"local"`` (default; enumeration-verified local search),
        ``"multiflow"`` / ``"flow"`` (exact MILP), or ``"cuts"``
        (lazy Eq. 6 rows).

    Warning: still exponential in the worst case — the paper notes brute
    force "fails to obtain results within meaningful time" beyond ~100
    nodes.
    """
    state = problem.new_state()
    placements: List[ChunkPlacement] = []
    for chunk in problem.chunks:
        placements.append(
            solve_exact_chunk(
                state,
                chunk,
                backend=backend,
                time_limit=time_limit_per_chunk,
                method=method,
            )
        )
    return CachePlacement(
        problem=problem, chunks=placements, algorithm=ALGORITHM_NAME
    )
