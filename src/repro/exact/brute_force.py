"""Subset-enumeration brute force for *tiny* instances.

Independent of the ILP machinery: enumerate every facility subset, price
it as ``Σ f_i + Σ_j min-connect + M · SteinerCost(A ∪ {producer})`` with
the exact Dreyfus–Wagner Steiner tree, and keep the cheapest.  Exponential
twice over (subsets × DW), so it is only for cross-checking the ILP
encoding on graphs of ≤ ~12 nodes — which is precisely its job in the
test suite.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.graphs.steiner import dreyfus_wagner
from repro.core.confl import ConFLInstance

Node = Hashable


@dataclass(frozen=True)
class EnumerationResult:
    """Optimal subset choice for one chunk."""

    caches: Tuple[Node, ...]
    assignment: Dict[Node, Node]
    objective: float
    subsets_evaluated: int


def enumerate_optimal(
    instance: ConFLInstance, max_facilities: int = 12
) -> EnumerationResult:
    """Exhaustively find the optimal cache set for one ConFL instance."""
    facilities = [
        f for f in instance.facilities if math.isfinite(instance.open_cost[f])
    ]
    if len(facilities) > max_facilities:
        raise ValueError(
            f"{len(facilities)} facilities is too many to enumerate "
            f"(max {max_facilities})"
        )
    clients = list(instance.clients)
    producer = instance.producer

    best_cost = math.inf
    best: Optional[Tuple[Tuple[Node, ...], Dict[Node, Node]]] = None
    evaluated = 0
    for r in range(len(facilities) + 1):
        for subset in itertools.combinations(facilities, r):
            evaluated += 1
            open_cost = sum(instance.open_cost[i] for i in subset)
            servers = [producer] + list(subset)
            assignment: Dict[Node, Node] = {}
            access = 0.0
            for j in clients:
                server = min(
                    servers, key=lambda s: instance.connect_cost[s][j]
                )
                assignment[j] = server
                access += instance.connect_cost[server][j]
            if subset:
                steiner, _ = dreyfus_wagner(
                    instance.steiner_graph, [producer] + list(subset)
                )
            else:
                steiner = 0.0
            total = open_cost + access + instance.dissemination_scale * steiner
            if total < best_cost - 1e-12:
                best_cost = total
                best = (subset, assignment)
    assert best is not None  # r = 0 always evaluated
    return EnumerationResult(
        caches=best[0],
        assignment=best[1],
        objective=best_cost,
        subsets_evaluated=evaluated,
    )
