"""Exact solvers: the per-chunk ConFL ILP (Eqs. 3–7) and brute forces."""

from repro.exact.brute_force import EnumerationResult, enumerate_optimal
from repro.exact.ilp_formulation import ChunkModel, build_chunk_model
from repro.exact.local_search import optimize_chunk_local
from repro.exact.solver import solve_chunk_with_cuts, solve_exact, solve_exact_chunk

__all__ = [
    "ChunkModel",
    "EnumerationResult",
    "build_chunk_model",
    "enumerate_optimal",
    "optimize_chunk_local",
    "solve_chunk_with_cuts",
    "solve_exact",
    "solve_exact_chunk",
]
