"""Core of the reproduction: cost model, problem types, Algorithm 1.

Public entry points:

* :class:`CachingProblem` — define an instance (graph, producer, chunks,
  capacities, objective weights).
* :func:`solve_approximation` — the paper's Algorithm 1.
* :class:`CachePlacement` — the result type shared by every algorithm.
"""

from repro.core.approximation import (
    ApproximationConfig,
    TimedPlacement,
    solve_approximation,
    solve_approximation_timed,
)
from repro.core.commit import commit_chunk, nearest_server_assignment
from repro.core.confl import ConFLInstance, build_confl_instance
from repro.core.costs import (
    CostModel,
    PATH_POLICY_CONTENTION,
    PATH_POLICY_HOPS,
    fairness_degree_cost,
    node_contention_cost,
    path_contention_cost,
)
from repro.core.dual_ascent import DualAscentConfig, DualAscentResult, dual_ascent
from repro.core.placement import (
    CachePlacement,
    ChunkPlacement,
    StageCost,
    assignment_from_nearest,
    edge_key,
)
from repro.core.problem import DEFAULT_CAPACITY, CachingProblem, ProblemState
from repro.core.storage import StorageState

__all__ = [
    "ApproximationConfig",
    "CachePlacement",
    "CachingProblem",
    "ChunkPlacement",
    "ConFLInstance",
    "CostModel",
    "DEFAULT_CAPACITY",
    "DualAscentConfig",
    "DualAscentResult",
    "PATH_POLICY_CONTENTION",
    "PATH_POLICY_HOPS",
    "ProblemState",
    "StageCost",
    "StorageState",
    "TimedPlacement",
    "assignment_from_nearest",
    "build_confl_instance",
    "commit_chunk",
    "dual_ascent",
    "nearest_server_assignment",
    "edge_key",
    "fairness_degree_cost",
    "node_contention_cost",
    "path_contention_cost",
    "solve_approximation",
    "solve_approximation_timed",
]
