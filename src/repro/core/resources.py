"""Battery-aware fairness (the paper's footnote 1, Sec. III-B).

    "For simplicity, we only consider storage fairness.  A Fairness Degree
    Cost on the battery can be defined similarly and considered together
    in weighted summation form of the two costs."

This module implements exactly that extension: a per-node battery budget
drained by caching work, a battery Fairness Degree Cost with the same
``used / remaining`` shape as Eq. 1, and a weighted combination consumed
by :class:`~repro.core.costs.CostModel` when a problem enables batteries.

Energy accounting is deliberately simple and documented: caching one
chunk costs ``energy_per_cache`` units (receiving the chunk and serving
it to neighbors dominates; cf. the transmission counting of Sec. III-C).
Finer-grained models can subclass :class:`BatteryState`.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Mapping, Optional, Union

from repro.errors import ProblemError

Node = Hashable

DEFAULT_ENERGY_PER_CACHE = 1.0


def battery_fairness_cost(consumed: float, capacity: float) -> float:
    """Battery analogue of Eq. 1: ``consumed / (capacity - consumed)``.

    0 on a full battery, ``inf`` on an empty one — draining a nearly-dead
    node must look prohibitively expensive to the placement.
    """
    if capacity < 0 or consumed < 0 or consumed > capacity + 1e-12:
        raise ProblemError(
            f"invalid battery state consumed={consumed}, capacity={capacity}"
        )
    remaining = capacity - consumed
    if remaining <= 0:
        return math.inf
    return consumed / remaining


class BatteryState:
    """Mutable per-node battery budgets.

    Parameters
    ----------
    nodes:
        All network nodes.
    capacity:
        Uniform float budget or a node → budget mapping (energy units).
    producer:
        The producer's battery is never drained by caching (it does not
        cache; Sec. V-A).
    """

    def __init__(
        self,
        nodes: Iterable[Node],
        capacity: Union[float, Mapping[Node, float]],
        producer: Optional[Node] = None,
    ) -> None:
        node_list = list(nodes)
        if isinstance(capacity, Mapping):
            budgets = {node: float(capacity[node]) for node in node_list}
        else:
            budgets = {node: float(capacity) for node in node_list}
        for node, budget in budgets.items():
            if budget < 0:
                raise ProblemError(
                    f"battery capacity of node {node!r} is negative"
                )
        self._capacity: Dict[Node, float] = budgets
        self._consumed: Dict[Node, float] = {node: 0.0 for node in node_list}
        self.producer = producer

    def __contains__(self, node: Node) -> bool:
        return node in self._capacity

    def capacity(self, node: Node) -> float:
        """Total battery budget of ``node``."""
        return self._capacity[node]

    def consumed(self, node: Node) -> float:
        """Energy spent so far at ``node``."""
        return self._consumed[node]

    def remaining(self, node: Node) -> float:
        """Energy still available at ``node``."""
        return self._capacity[node] - self._consumed[node]

    def can_spend(self, node: Node, amount: float) -> bool:
        """True if ``node`` has at least ``amount`` energy left."""
        return self.remaining(node) >= amount - 1e-12

    def drain(self, node: Node, amount: float) -> None:
        """Consume ``amount`` energy at ``node``.

        Raises :class:`ProblemError` when over-draining — callers must
        check :meth:`can_spend` first, exactly like storage capacity.
        """
        if amount < 0:
            raise ProblemError(f"cannot drain a negative amount ({amount})")
        if not self.can_spend(node, amount):
            raise ProblemError(
                f"node {node!r} has {self.remaining(node):.3f} energy left, "
                f"cannot spend {amount}"
            )
        self._consumed[node] += amount

    def recharge(self, node: Node, amount: float) -> None:
        """Return ``amount`` energy to ``node`` (rollbacks, tests)."""
        if amount < 0:
            raise ProblemError(f"cannot recharge a negative amount ({amount})")
        self._consumed[node] = max(0.0, self._consumed[node] - amount)

    def fairness_cost(self, node: Node) -> float:
        """Battery Fairness Degree Cost of ``node`` (footnote 1)."""
        if node == self.producer:
            return math.inf
        return battery_fairness_cost(
            self._consumed[node], self._capacity[node]
        )

    def copy(self) -> "BatteryState":
        clone = BatteryState(self._capacity.keys(), self._capacity, self.producer)
        clone._consumed = dict(self._consumed)
        return clone

    def levels(self) -> Dict[Node, float]:
        """Node → remaining-energy fraction (1.0 = full)."""
        return {
            node: (self.remaining(node) / cap if cap > 0 else 0.0)
            for node, cap in self._capacity.items()
        }


def combined_fairness_cost(
    storage_cost: float,
    battery_cost: Optional[float],
    storage_weight: float = 1.0,
    battery_weight: float = 1.0,
) -> float:
    """Footnote 1's "weighted summation form of the two costs"."""
    if battery_cost is None:
        return storage_weight * storage_cost
    return storage_weight * storage_cost + battery_weight * battery_cost
