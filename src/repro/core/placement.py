"""Placement results: which node caches which chunk, who fetches from whom.

Every algorithm in this library (approximation, distributed, exact,
baselines) produces a :class:`CachePlacement`: one
:class:`ChunkPlacement` per chunk holding

* the set of caching nodes (the ADMIN set ``A`` / the ``y_in = 1`` rows),
* the access assignment (the ``x_ijn = 1`` entries: client → serving node),
* the dissemination tree edges (the ``z_en = 1`` edges), and
* the *stage cost* — the fairness / access / dissemination cost this chunk
  incurred **at placement time** (with the storage state of the preceding
  chunks), i.e. its term of the iterative objective Eq. 8.

:meth:`CachePlacement.validate` checks the ILP constraints (4)–(7) hold:
each client is served exactly once, only by a node that caches the chunk
(or the producer), capacities are respected, and the dissemination edges
connect every cache to the producer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Set, Tuple

from repro.errors import ProblemError
from repro.graphs.graph import Graph
from repro.core.problem import CachingProblem
from repro.core.storage import StorageState

Node = Hashable
EdgeKey = FrozenSet[Node]


def edge_key(u: Node, v: Node) -> EdgeKey:
    """Canonical undirected-edge key (order-free)."""
    if u == v:
        raise ProblemError(f"self-loop edge ({u!r}, {v!r})")
    return frozenset((u, v))


@dataclass(frozen=True)
class StageCost:
    """Cost components a single chunk incurred at placement time."""

    fairness: float
    access: float
    dissemination: float

    @property
    def total(self) -> float:
        """Unweighted sum of the three components."""
        return self.fairness + self.access + self.dissemination

    def weighted_total(
        self,
        fairness_weight: float = 1.0,
        contention_weight: float = 1.0,
        dissemination_scale: float = 1.0,
    ) -> float:
        """Objective contribution under Eq. 8's weights."""
        return (
            fairness_weight * self.fairness
            + contention_weight * self.access
            + contention_weight * dissemination_scale * self.dissemination
        )

    def __add__(self, other: "StageCost") -> "StageCost":
        return StageCost(
            self.fairness + other.fairness,
            self.access + other.access,
            self.dissemination + other.dissemination,
        )

    @staticmethod
    def zero() -> "StageCost":
        return StageCost(0.0, 0.0, 0.0)


@dataclass(frozen=True)
class ChunkPlacement:
    """Placement decision for a single chunk."""

    chunk: int
    caches: FrozenSet[Node]
    assignment: Dict[Node, Node]
    tree_edges: FrozenSet[EdgeKey]
    stage_cost: StageCost = field(default_factory=StageCost.zero)

    def serving_nodes(self) -> Set[Node]:
        """Distinct nodes that serve at least one client."""
        return set(self.assignment.values())


@dataclass
class CachePlacement:
    """Full multi-chunk placement produced by one algorithm run."""

    problem: CachingProblem
    chunks: List[ChunkPlacement]
    algorithm: str = ""

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def holders(self, chunk: int) -> FrozenSet[Node]:
        """Nodes caching ``chunk``."""
        return self.chunks[chunk].caches

    def loads(self) -> Dict[Node, int]:
        """Node → number of chunks cached there (``t_i``); producer = 0."""
        counts: Dict[Node, int] = {node: 0 for node in self.problem.graph.nodes()}
        for chunk in self.chunks:
            for node in chunk.caches:
                counts[node] += 1
        return counts

    def final_storage(self) -> StorageState:
        """Storage state after all chunks are placed."""
        storage = self.problem.new_storage()
        for chunk in self.chunks:
            for node in chunk.caches:
                storage.add(node, chunk.chunk)
        return storage

    def total_copies(self) -> int:
        """Total cached chunk copies across the network."""
        return sum(len(chunk.caches) for chunk in self.chunks)

    def objective_value(self) -> float:
        """The iterative objective Eq. 8: sum of weighted stage costs."""
        p = self.problem
        return sum(
            chunk.stage_cost.weighted_total(
                p.fairness_weight, p.contention_weight, p.dissemination_scale
            )
            for chunk in self.chunks
        )

    def stage_cost_total(self) -> StageCost:
        """Component-wise sum of all per-chunk stage costs."""
        total = StageCost.zero()
        for chunk in self.chunks:
            total = total + chunk.stage_cost
        return total

    # ------------------------------------------------------------------
    # Validation (ILP constraints 4-7)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check this placement satisfies the ILP's feasibility constraints.

        Raises :class:`ProblemError` on the first violation found.
        """
        problem = self.problem
        graph = problem.graph
        if len(self.chunks) != problem.num_chunks:
            raise ProblemError(
                f"{len(self.chunks)} chunk placements for "
                f"{problem.num_chunks}-chunk problem"
            )
        storage = problem.new_storage()
        clients = set(problem.clients)
        for chunk in self.chunks:
            # Constraint (7) domain + capacity: caches fit in storage.
            for node in chunk.caches:
                if node not in graph:
                    raise ProblemError(f"cache node {node!r} not in graph")
                storage.add(node, chunk.chunk)  # raises CapacityError if full
            # Constraint (4): every client served exactly once.
            served = set(chunk.assignment)
            if served != clients:
                missing = clients - served
                extra = served - clients
                raise ProblemError(
                    f"chunk {chunk.chunk}: assignment mismatch "
                    f"(missing={sorted(map(repr, missing))[:5]}, "
                    f"extra={sorted(map(repr, extra))[:5]})"
                )
            # Constraint (5): server caches the chunk (or is the producer).
            for client, server in chunk.assignment.items():
                if server != problem.producer and server not in chunk.caches:
                    raise ProblemError(
                        f"chunk {chunk.chunk}: client {client!r} served by "
                        f"{server!r}, which does not cache it"
                    )
            # Constraint (6): dissemination edges connect caches to producer.
            self._validate_tree(chunk)

    def _validate_tree(self, chunk: ChunkPlacement) -> None:
        graph = self.problem.graph
        if not chunk.caches:
            return  # nothing disseminated; producer serves everyone
        tree = Graph()
        tree.add_node(self.problem.producer)
        for key in chunk.tree_edges:
            u, v = tuple(key)
            if not graph.has_edge(u, v):
                raise ProblemError(
                    f"chunk {chunk.chunk}: dissemination edge ({u!r}, {v!r}) "
                    "is not a network link"
                )
            tree.add_edge(u, v)
        from repro.graphs.traversal import bfs_order

        reachable = set(bfs_order(tree, self.problem.producer))
        unreachable = set(chunk.caches) - reachable
        if unreachable:
            raise ProblemError(
                f"chunk {chunk.chunk}: caches {sorted(map(repr, unreachable))[:5]} "
                "not connected to the producer by dissemination edges"
            )


def assignment_from_nearest(
    problem: CachingProblem,
    caches: Iterable[Node],
    cost_of: Dict[Node, Dict[Node, float]],
) -> Dict[Node, Node]:
    """Assign each client to its cheapest serving node.

    ``cost_of[i][j]`` is the cost for client ``j`` to fetch from server
    ``i``; candidate servers are ``caches`` plus the producer.  A client
    that itself caches the chunk serves itself at cost 0 (``c_ii = 0``).
    Ties break toward the earlier cache in iteration order, then the
    producer, deterministically.
    """
    servers = list(dict.fromkeys(caches))
    assignment: Dict[Node, Node] = {}
    for client in problem.clients:
        best_server = problem.producer
        best_cost = cost_of[problem.producer][client]
        for server in servers:
            cost = cost_of[server][client]
            if cost < best_cost:
                best_cost = cost
                best_server = server
        assignment[client] = best_server
    return assignment
