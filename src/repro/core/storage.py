"""Per-node cache storage state.

Tracks which chunks each node caches and how much capacity remains — the
``S(i)`` / ``S_tot(i)`` quantities of Sec. III-B.  All chunks are equal
size (Sec. III-A), so storage is measured in chunks.

The producer is special: the paper assumes "the producer node will not
store data on its caching storage, and therefore, the calculation of costs
will not include the producer node" (Sec. V-A).  :class:`StorageState`
enforces that by refusing to cache at the producer.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional, Set, Union

from repro.errors import CapacityError, ProblemError

Node = Hashable
ChunkId = int


class StorageState:
    """Mutable cache-occupancy state for all nodes.

    Parameters
    ----------
    nodes:
        All network nodes.
    capacity:
        Either a single int (uniform capacity, the paper uses 5) or a
        mapping node → capacity.
    producer:
        Optional producer node; it is never allowed to cache.
    """

    def __init__(
        self,
        nodes: Iterable[Node],
        capacity: Union[int, Mapping[Node, int]],
        producer: Optional[Node] = None,
    ) -> None:
        node_list = list(nodes)
        if isinstance(capacity, Mapping):
            caps = {node: int(capacity[node]) for node in node_list}
        else:
            caps = {node: int(capacity) for node in node_list}
        for node, cap in caps.items():
            if cap < 0:
                raise ProblemError(f"capacity of node {node!r} is negative ({cap})")
        if producer is not None and producer not in caps:
            raise ProblemError(f"producer {producer!r} is not among the nodes")
        self._capacity: Dict[Node, int] = caps
        self._chunks: Dict[Node, Set[ChunkId]] = {node: set() for node in node_list}
        self.producer = producer

    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._capacity

    def nodes(self) -> Iterable[Node]:
        """All nodes tracked by this state (including the producer)."""
        return iter(self._capacity)

    def capacity(self, node: Node) -> int:
        """Total caching storage ``S_tot(i)`` of ``node``, in chunks."""
        return self._capacity[node]

    def used(self, node: Node) -> int:
        """Chunks currently cached at ``node`` — ``S(i)``."""
        return len(self._chunks[node])

    def available(self, node: Node) -> int:
        """Remaining storage ``S_tot(i) - S(i)``."""
        return self._capacity[node] - len(self._chunks[node])

    def chunks_at(self, node: Node) -> Set[ChunkId]:
        """The set of chunk ids cached at ``node`` (a copy)."""
        return set(self._chunks[node])

    def holders(self, chunk: ChunkId) -> Set[Node]:
        """All nodes caching ``chunk``."""
        return {node for node, chunks in self._chunks.items() if chunk in chunks}

    def can_cache(self, node: Node) -> bool:
        """True if ``node`` may accept one more chunk.

        The producer never caches (Sec. V-A).
        """
        if node == self.producer:
            return False
        return self.available(node) > 0

    def add(self, node: Node, chunk: ChunkId) -> None:
        """Cache ``chunk`` at ``node``.

        Raises
        ------
        CapacityError
            If the node is full, is the producer, or already holds the chunk.
        """
        if node == self.producer:
            raise CapacityError(f"producer {node!r} does not cache data")
        if chunk in self._chunks[node]:
            raise CapacityError(f"node {node!r} already caches chunk {chunk}")
        if self.available(node) <= 0:
            raise CapacityError(
                f"node {node!r} is full ({self.used(node)}/{self.capacity(node)})"
            )
        self._chunks[node].add(chunk)

    def remove(self, node: Node, chunk: ChunkId) -> None:
        """Evict ``chunk`` from ``node`` (supports replacement extensions)."""
        if chunk not in self._chunks[node]:
            raise CapacityError(f"node {node!r} does not cache chunk {chunk}")
        self._chunks[node].remove(chunk)

    def loads(self) -> Dict[Node, int]:
        """Map node → number of cached chunks (the ``t_i`` of Eq. Gini)."""
        return {node: len(chunks) for node, chunks in self._chunks.items()}

    def total_cached(self) -> int:
        """Total cached chunk copies across the network."""
        return sum(len(chunks) for chunks in self._chunks.values())

    def copy(self) -> "StorageState":
        """Deep copy (used by what-if cost evaluations)."""
        clone = StorageState(self._capacity.keys(), self._capacity, self.producer)
        for node, chunks in self._chunks.items():
            clone._chunks[node] = set(chunks)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StorageState(nodes={len(self._capacity)}, "
            f"cached={self.total_cached()})"
        )
