"""The paper's cost model: Fairness Degree Cost and Contention Cost.

Implements Sec. III-B and III-C:

* **Fairness Degree Cost** (Eq. 1)::

      f_i = S(i) / (S_tot(i) - S(i))

  0 when empty, ∞ when full — a "penalty the network must pay" to cache on
  a loaded node.

* **Node Contention Cost** ``w_k`` — the node's degree (each cached chunk
  is sent to every neighbor, so transmissions through ``k`` scale with its
  degree).

* **Path Contention Cost** (Eq. 2)::

      c_ij = Σ_{k ∈ PATH(i,j)} w_k · (1 + S(k))

  summed over *every* node of the shortest path between ``i`` and ``j``
  (endpoints included), where already-cached chunks ``S(k)`` inflate the
  contention.  ``c_ii`` is defined as 0: a local cache hit transmits
  nothing.

:class:`CostModel` binds a graph + storage state and serves these costs
with caching keyed on a storage version counter, since Algorithm 1
recomputes all ``c_ij`` after every chunk placement (lines 5–16).

Incremental recomputation
-------------------------

Under the default ``"hops"`` policy PATH(i, j) depends only on the
topology, so the per-source BFS hop trees (and their child adjacency)
survive storage changes unconditionally.  A committed chunk changes
``S(k)`` only at the nodes that cached it, and each such change shifts a
cached cost row by a constant ``w_k · ΔS(k)`` on exactly the targets
whose tree path passes through ``k`` — the subtree below ``k`` (or every
target, when ``k`` is the row's source).  :meth:`invalidate` therefore
accepts the set of *dirty* nodes and patches the retained rows in place
instead of rebuilding the full ``c_ij`` matrix; the argument-free call
remains the full-recompute fallback, and ``REPRO_SANITIZE=1``
cross-checks every patch against a fresh rebuild
(:func:`repro.analysis.contracts.check_incremental_cost_rows`).

Because all node costs are integers (degree × occupancy), patched sums
are exact in float64: a patched row equals a freshly rebuilt one bit for
bit.  Under the ``"contention"`` policy storage changes can reroute
paths, so dirty invalidation falls back to the full drop there.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, TYPE_CHECKING, Tuple

from repro.errors import NodeNotFoundError, NoPathError, ProblemError
from repro.analysis import contracts
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import bfs_tree, dijkstra_node_costs, path_from_tree
from repro.core.storage import StorageState
from repro.obs import get_recorder, get_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.resources import BatteryState

Node = Hashable

PATH_POLICY_HOPS = "hops"
PATH_POLICY_CONTENTION = "contention"


def fairness_degree_cost(used: int, capacity: int) -> float:
    """Eq. 1: ``f = S / (S_tot - S)``; ``inf`` when full, 0 when empty.

    Raises :class:`ProblemError` on invalid occupancy.
    """
    if capacity < 0 or used < 0 or used > capacity:
        raise ProblemError(f"invalid occupancy used={used}, capacity={capacity}")
    remaining = capacity - used
    if remaining == 0:
        return math.inf
    return used / remaining


def node_contention_cost(graph: Graph, node: Node) -> int:
    """``w_k``: the degree of ``node`` (Sec. III-C's estimation)."""
    return graph.degree(node)


def path_contention_cost(
    graph: Graph, path: List[Node], storage: StorageState
) -> float:
    """Eq. 2 evaluated on an explicit node path (endpoints included)."""
    if len(path) <= 1:
        return 0.0
    return float(
        sum(graph.degree(k) * (1 + storage.used(k)) for k in path)
    )


class CostModel:
    """Serves fairness and contention costs for a (graph, storage) pair.

    Parameters
    ----------
    graph:
        Network topology.
    storage:
        Live storage state; the model reads it lazily, so callers mutate
        storage and then call :meth:`invalidate` (or use
        :class:`~repro.core.problem.ProblemState`, which does it for them
        — passing the mutated nodes through as ``dirty_nodes`` so cached
        cost rows are delta-patched instead of rebuilt).
    path_policy:
        How PATH(i, j) of Eq. 2 is chosen:

        * ``"hops"`` (default) — minimum-hop path (Sec. V-A: data goes
          "through the shortest hop path"), ties broken deterministically
          by BFS order;
        * ``"contention"`` — path minimizing the summed node contention
          itself (an ablation; see benchmarks).
    battery / battery_weight:
        Optional :class:`~repro.core.resources.BatteryState`; when given,
        :meth:`fairness_cost` returns the weighted sum of the storage and
        battery Fairness Degree Costs (footnote 1 of the paper).
    """

    def __init__(
        self,
        graph: Graph,
        storage: StorageState,
        path_policy: str = PATH_POLICY_HOPS,
        battery: Optional["BatteryState"] = None,
        battery_weight: float = 1.0,
    ) -> None:
        if path_policy not in (PATH_POLICY_HOPS, PATH_POLICY_CONTENTION):
            raise ProblemError(f"unknown path policy {path_policy!r}")
        if battery_weight < 0:
            raise ProblemError("battery_weight must be non-negative")
        self.graph = graph
        self.storage = storage
        self.path_policy = path_policy
        self.battery = battery
        self.battery_weight = battery_weight
        self._version = 0
        # Topology-only structures: BFS hop trees and their child lists.
        # They survive every storage invalidation (only
        # :meth:`invalidate_topology` drops them).
        self._path_cache: Dict[Node, Dict[Node, Node]] = {}
        self._children_cache: Dict[Node, Dict[Node, List[Node]]] = {}
        # Storage-dependent structures, dropped (or patched) on invalidate.
        self._tree_cache: Dict[
            Node, Tuple[Dict[Node, float], Dict[Node, Node]]
        ] = {}
        self._cost_cache: Dict[Node, Dict[Node, float]] = {}
        # The S(k) values the cached cost rows reflect; deltas against it
        # drive the incremental patches.
        self._used_snapshot: Dict[Node, int] = {
            node: storage.used(node) for node in graph.nodes()
        }

    # ------------------------------------------------------------------
    def invalidate(self, dirty_nodes: Optional[Iterable[Node]] = None) -> None:
        """Refresh cached costs after the storage state changed.

        Parameters
        ----------
        dirty_nodes:
            The nodes whose occupancy ``S(k)`` changed since the last
            call.  When given (and the policy is ``"hops"``), cached cost
            rows are patched in place by adding ``w_k · ΔS(k)`` to every
            target routed through ``k`` — the retained BFS trees tell us
            exactly which ones.  ``None`` is the full-recompute fallback:
            every cached row (and, under ``"contention"``, every Dijkstra
            tree) is dropped.  The hop trees themselves are topology-only
            and survive either way.
        """
        self._version += 1
        recorder = get_recorder()
        recorder.count("costs.invalidations")
        if dirty_nodes is None:
            self._full_invalidate()
            return
        dirty: List[Node] = []
        for node in dirty_nodes:
            if node not in self.graph:
                raise ProblemError(f"dirty node {node!r} is not in the graph")
            dirty.append(node)
        if self.path_policy != PATH_POLICY_HOPS:
            # A storage delta can reroute minimum-contention paths, so
            # every cached Dijkstra tree and cost row is suspect.
            self._full_invalidate()
            return
        patched = False
        for node in dirty:
            used = self.storage.used(node)
            delta_units = used - self._used_snapshot[node]
            if delta_units == 0:
                continue
            self._used_snapshot[node] = used
            delta = float(self.graph.degree(node) * delta_units)
            if delta:
                for source, row in self._cost_cache.items():
                    self._patch_row(source, row, node, delta)
            patched = True
            recorder.count("costs.incremental_patches")
        trace = get_tracer()
        if trace.enabled:
            trace.instant(
                "costs.invalidate",
                track="commit",
                args={
                    "mode": "incremental",
                    "dirty": sorted(str(node) for node in dirty),
                    "rows_patched": len(self._cost_cache) if patched else 0,
                },
            )
        if patched and self._cost_cache and contracts.sanitize_enabled():
            contracts.check_incremental_cost_rows(
                dirty_nodes=dirty,
                patched=self._cost_cache,
                fresh={
                    source: self._build_row(source)
                    for source in self._cost_cache
                },
            )

    def invalidate_topology(self) -> None:
        """Drop *every* cache, including the topology-only BFS hop trees.

        Call this after mutating the graph itself (adding/removing edges
        or nodes); plain storage changes only need :meth:`invalidate`.
        """
        self._path_cache.clear()
        self._children_cache.clear()
        self.invalidate()

    def _full_invalidate(self) -> None:
        """The blow-everything-away fallback (minus the hop trees)."""
        trace = get_tracer()
        if trace.enabled:
            trace.instant(
                "costs.invalidate",
                track="commit",
                args={
                    "mode": "full",
                    "rows_dropped": len(self._cost_cache),
                    "trees_dropped": len(self._tree_cache),
                },
            )
        self._cost_cache.clear()
        self._tree_cache.clear()
        used = self.storage.used
        self._used_snapshot = {node: used(node) for node in self.graph.nodes()}
        get_recorder().count("costs.full_rebuilds")

    def _patch_row(
        self, source: Node, row: Dict[Node, float], dirty: Node, delta: float
    ) -> None:
        """Add ``delta`` to every entry of ``row`` routed through ``dirty``.

        ``row`` is the cached cost row of ``source``; the affected targets
        are the subtree below ``dirty`` in the source's BFS tree (every
        target except the source itself when ``dirty == source`` — paths
        always include their source, but ``c_ii`` stays 0).
        """
        if dirty == source:
            for target in row:
                if target != source:
                    row[target] += delta
            return
        if dirty not in self._hop_tree(source):
            return  # unreachable from this source: no path uses it
        children = self._children_of(source)
        stack = [dirty]
        while stack:
            node = stack.pop()
            row[node] += delta
            stack.extend(children.get(node, ()))

    def affected_targets(self, source: Node, via: Node) -> frozenset:
        """Targets of ``source`` whose PATH passes through ``via``.

        The dirty region of a single-node occupancy change, as seen from
        one source: exactly the entries of ``source``'s cost row that a
        ``ΔS(via)`` shifts.  Under the ``"hops"`` policy this is the BFS
        subtree below ``via`` (every target but the source itself when
        ``via == source``, since ``c_ii`` stays 0); unreachable ``via``
        affects nothing.  Under ``"contention"`` a storage change can
        reroute paths, so the conservative answer is every reachable
        target.  The adaptive move evaluator uses this to re-price only
        the demand actually touched by a candidate move.
        """
        if via not in self.graph:
            raise ProblemError(f"node {via!r} is not in the graph")
        if self.path_policy != PATH_POLICY_HOPS:
            return frozenset(
                node for node in self._all_costs_from(source) if node != source
            )
        tree = self._hop_tree(source)
        if via == source:
            return frozenset(node for node in tree if node != source)
        if via not in tree:
            return frozenset()
        children = self._children_of(source)
        affected = []
        stack = [via]
        while stack:
            node = stack.pop()
            affected.append(node)
            stack.extend(children.get(node, ()))
        return frozenset(affected)

    def fairness_cost(self, node: Node) -> float:
        """Eq. 1 for ``node``, plus the weighted battery term (footnote 1)
        when a battery model is attached; ``inf`` for the producer."""
        if node == self.storage.producer:
            return math.inf
        storage_cost = fairness_degree_cost(
            self.storage.used(node), self.storage.capacity(node)
        )
        if self.battery is None:
            return storage_cost
        return storage_cost + self.battery_weight * self.battery.fairness_cost(node)

    def node_cost(self, node: Node) -> float:
        """Per-node term of Eq. 2: ``w_k (1 + S(k))``."""
        return self.graph.degree(node) * (1 + self.storage.used(node))

    # ------------------------------------------------------------------
    def path(self, source: Node, target: Node) -> List[Node]:
        """PATH(source, target) under the configured policy.

        Raises :class:`~repro.errors.NoPathError` when ``target`` is
        unreachable from ``source``.
        """
        if source == target:
            return [source]
        if self.path_policy == PATH_POLICY_HOPS:
            parents = self._hop_tree(source)
            return path_from_tree(parents, source, target)
        _, parents = self._contention_tree(source)
        return path_from_tree(parents, source, target)

    def contention_cost(self, source: Node, target: Node) -> float:
        """Eq. 2: ``c_ij`` between two nodes (0 when identical).

        Raises :class:`~repro.errors.NoPathError` when ``target`` is
        unreachable from ``source`` (disconnected or churned graphs), and
        :class:`~repro.errors.NodeNotFoundError` when ``target`` is not a
        node at all.
        """
        if source == target:
            return 0.0
        cached = self._cost_cache.get(source)
        if cached is not None and target in cached:
            get_recorder().count("costs.row_cache_hits")
            return cached[target]
        costs = self._all_costs_from(source)
        try:
            return costs[target]
        except KeyError:
            if target not in self.graph:
                raise NodeNotFoundError(target) from None
            raise NoPathError(source, target) from None

    def all_contention_costs(self, source: Node) -> Dict[Node, float]:
        """``c_ij`` from ``source`` to every reachable node (``c_ii = 0``)."""
        return dict(self._all_costs_from(source))

    def cost_matrix(self) -> Dict[Node, Dict[Node, float]]:
        """Full ``c_ij`` matrix (Algorithm 1, lines 8–13)."""
        return {node: self.all_contention_costs(node) for node in self.graph.nodes()}

    def edge_cost(self, u: Node, v: Node) -> float:
        """Dissemination edge cost ``c_e = c_ij`` for adjacent ``u, v``,
        priced under the configured path policy.

        Every node cost ``w_k (1 + S(k))`` is at least 1 on a connected
        graph, so any detour through an intermediate node costs strictly
        more than the direct edge: under *both* policies PATH(u, v) of two
        adjacent nodes is the edge itself and ``c_e`` equals
        ``w_u (1+S(u)) + w_v (1+S(v))``.  The ``"hops"`` branch uses that
        closed form (BFS from ``u`` discovers its neighbor ``v`` at depth
        1); the ``"contention"`` branch routes through
        :meth:`contention_cost` so Eq. 2 and the dissemination weights
        agree by construction even if a future cost extension voids the
        argument above.
        """
        if not self.graph.has_edge(u, v):
            raise ProblemError(f"({u!r}, {v!r}) is not an edge")
        if self.path_policy == PATH_POLICY_HOPS:
            return self.node_cost(u) + self.node_cost(v)
        return self.contention_cost(u, v)

    def contention_weighted_graph(self) -> Graph:
        """A copy of the topology with every edge weighted by ``c_e``.

        This is the graph the dissemination Steiner tree is built on
        (objective term 3 of Eq. 3 / the ``M Σ c_e z_en`` term of Eq. 8).
        """
        get_recorder().count("costs.weighted_graph_builds")
        weighted = Graph()
        weighted.add_nodes(self.graph.nodes())
        for u, v, _ in self.graph.edges():
            weighted.add_edge(u, v, self.edge_cost(u, v))
        return weighted

    # ------------------------------------------------------------------
    def _hop_tree(self, source: Node) -> Dict[Node, Node]:
        tree = self._path_cache.get(source)
        if tree is None:
            tree = bfs_tree(self.graph, source)
            self._path_cache[source] = tree
            get_recorder().count("costs.tree_rebuilds")
        return tree

    def _children_of(self, source: Node) -> Dict[Node, List[Node]]:
        """Child lists of the BFS tree rooted at ``source`` (cached)."""
        children = self._children_cache.get(source)
        if children is None:
            children = {}
            for node, parent in self._hop_tree(source).items():
                if node != source:
                    children.setdefault(parent, []).append(node)
            self._children_cache[source] = children
        return children

    def _contention_tree(
        self, source: Node
    ) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
        cached = self._tree_cache.get(source)
        if cached is None:
            cached = dijkstra_node_costs(
                self.graph, source, self.node_cost, include_source=True
            )
            self._tree_cache[source] = cached
            get_recorder().count("costs.tree_rebuilds")
        return cached

    def _build_row(self, source: Node) -> Dict[Node, float]:
        """A fresh cost row for ``source`` from the current storage."""
        if self.path_policy == PATH_POLICY_HOPS:
            children = self._children_of(source)
            # Walk the BFS tree accumulating node costs root-to-leaf.
            costs: Dict[Node, float] = {source: 0.0}
            stack = [(source, self.node_cost(source))]
            while stack:
                node, acc = stack.pop()
                for child in children.get(node, ()):
                    total = acc + self.node_cost(child)
                    costs[child] = total
                    stack.append((child, total))
            return costs
        dist, _ = self._contention_tree(source)
        return {
            node: (0.0 if node == source else value)
            for node, value in dist.items()
        }

    def _all_costs_from(self, source: Node) -> Dict[Node, float]:
        cached = self._cost_cache.get(source)
        if cached is not None:
            get_recorder().count("costs.row_cache_hits")
            return cached
        get_recorder().count("costs.row_builds")
        costs = self._build_row(source)
        self._cost_cache[source] = costs
        return costs
