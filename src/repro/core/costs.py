"""The paper's cost model: Fairness Degree Cost and Contention Cost.

Implements Sec. III-B and III-C:

* **Fairness Degree Cost** (Eq. 1)::

      f_i = S(i) / (S_tot(i) - S(i))

  0 when empty, ∞ when full — a "penalty the network must pay" to cache on
  a loaded node.

* **Node Contention Cost** ``w_k`` — the node's degree (each cached chunk
  is sent to every neighbor, so transmissions through ``k`` scale with its
  degree).

* **Path Contention Cost** (Eq. 2)::

      c_ij = Σ_{k ∈ PATH(i,j)} w_k · (1 + S(k))

  summed over *every* node of the shortest path between ``i`` and ``j``
  (endpoints included), where already-cached chunks ``S(k)`` inflate the
  contention.  ``c_ii`` is defined as 0: a local cache hit transmits
  nothing.

:class:`CostModel` binds a graph + storage state and serves these costs
with caching keyed on a storage version counter, since Algorithm 1
recomputes all ``c_ij`` after every chunk placement (lines 5–16).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, List, Optional, TYPE_CHECKING, Tuple

from repro.errors import ProblemError
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import bfs_tree, dijkstra_node_costs, path_from_tree
from repro.core.storage import StorageState
from repro.obs import get_recorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.resources import BatteryState

Node = Hashable

PATH_POLICY_HOPS = "hops"
PATH_POLICY_CONTENTION = "contention"


def fairness_degree_cost(used: int, capacity: int) -> float:
    """Eq. 1: ``f = S / (S_tot - S)``; ``inf`` when full, 0 when empty.

    Raises :class:`ProblemError` on invalid occupancy.
    """
    if capacity < 0 or used < 0 or used > capacity:
        raise ProblemError(f"invalid occupancy used={used}, capacity={capacity}")
    remaining = capacity - used
    if remaining == 0:
        return math.inf
    return used / remaining


def node_contention_cost(graph: Graph, node: Node) -> int:
    """``w_k``: the degree of ``node`` (Sec. III-C's estimation)."""
    return graph.degree(node)


def path_contention_cost(
    graph: Graph, path: List[Node], storage: StorageState
) -> float:
    """Eq. 2 evaluated on an explicit node path (endpoints included)."""
    if len(path) <= 1:
        return 0.0
    return float(
        sum(graph.degree(k) * (1 + storage.used(k)) for k in path)
    )


class CostModel:
    """Serves fairness and contention costs for a (graph, storage) pair.

    Parameters
    ----------
    graph:
        Network topology.
    storage:
        Live storage state; the model reads it lazily, so callers mutate
        storage and then call :meth:`invalidate` (or use
        :class:`~repro.core.problem.ProblemState`, which does it for them).
    path_policy:
        How PATH(i, j) of Eq. 2 is chosen:

        * ``"hops"`` (default) — minimum-hop path (Sec. V-A: data goes
          "through the shortest hop path"), ties broken deterministically
          by BFS order;
        * ``"contention"`` — path minimizing the summed node contention
          itself (an ablation; see benchmarks).
    battery / battery_weight:
        Optional :class:`~repro.core.resources.BatteryState`; when given,
        :meth:`fairness_cost` returns the weighted sum of the storage and
        battery Fairness Degree Costs (footnote 1 of the paper).
    """

    def __init__(
        self,
        graph: Graph,
        storage: StorageState,
        path_policy: str = PATH_POLICY_HOPS,
        battery: Optional["BatteryState"] = None,
        battery_weight: float = 1.0,
    ) -> None:
        if path_policy not in (PATH_POLICY_HOPS, PATH_POLICY_CONTENTION):
            raise ProblemError(f"unknown path policy {path_policy!r}")
        if battery_weight < 0:
            raise ProblemError("battery_weight must be non-negative")
        self.graph = graph
        self.storage = storage
        self.path_policy = path_policy
        self.battery = battery
        self.battery_weight = battery_weight
        self._version = 0
        self._path_cache: Dict[Node, Dict[Node, Node]] = {}
        self._cost_cache: Dict[Node, Dict[Node, float]] = {}

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop cached paths/costs after the storage state changed."""
        self._version += 1
        self._path_cache.clear()
        self._cost_cache.clear()
        get_recorder().count("costs.invalidations")

    def fairness_cost(self, node: Node) -> float:
        """Eq. 1 for ``node``, plus the weighted battery term (footnote 1)
        when a battery model is attached; ``inf`` for the producer."""
        if node == self.storage.producer:
            return math.inf
        storage_cost = fairness_degree_cost(
            self.storage.used(node), self.storage.capacity(node)
        )
        if self.battery is None:
            return storage_cost
        return storage_cost + self.battery_weight * self.battery.fairness_cost(node)

    def node_cost(self, node: Node) -> float:
        """Per-node term of Eq. 2: ``w_k (1 + S(k))``."""
        return self.graph.degree(node) * (1 + self.storage.used(node))

    # ------------------------------------------------------------------
    def path(self, source: Node, target: Node) -> List[Node]:
        """PATH(source, target) under the configured policy."""
        if source == target:
            return [source]
        if self.path_policy == PATH_POLICY_HOPS:
            parents = self._hop_tree(source)
            return path_from_tree(parents, source, target)
        _, parents = self._contention_tree(source)
        return path_from_tree(parents, source, target)

    def contention_cost(self, source: Node, target: Node) -> float:
        """Eq. 2: ``c_ij`` between two nodes (0 when identical)."""
        if source == target:
            return 0.0
        cached = self._cost_cache.get(source)
        if cached is not None and target in cached:
            get_recorder().count("costs.row_cache_hits")
            return cached[target]
        costs = self._all_costs_from(source)
        return costs[target]

    def all_contention_costs(self, source: Node) -> Dict[Node, float]:
        """``c_ij`` from ``source`` to every reachable node (``c_ii = 0``)."""
        return dict(self._all_costs_from(source))

    def cost_matrix(self) -> Dict[Node, Dict[Node, float]]:
        """Full ``c_ij`` matrix (Algorithm 1, lines 8–13)."""
        return {node: self.all_contention_costs(node) for node in self.graph.nodes()}

    def edge_cost(self, u: Node, v: Node) -> float:
        """Dissemination edge cost ``c_e = c_ij`` for adjacent ``u, v``.

        For adjacent nodes the shortest path is the edge itself, so this
        is ``w_u (1+S(u)) + w_v (1+S(v))`` regardless of path policy.
        """
        if not self.graph.has_edge(u, v):
            raise ProblemError(f"({u!r}, {v!r}) is not an edge")
        return self.node_cost(u) + self.node_cost(v)

    def contention_weighted_graph(self) -> Graph:
        """A copy of the topology with every edge weighted by ``c_e``.

        This is the graph the dissemination Steiner tree is built on
        (objective term 3 of Eq. 3 / the ``M Σ c_e z_en`` term of Eq. 8).
        """
        get_recorder().count("costs.weighted_graph_builds")
        weighted = Graph()
        weighted.add_nodes(self.graph.nodes())
        for u, v, _ in self.graph.edges():
            weighted.add_edge(u, v, self.edge_cost(u, v))
        return weighted

    # ------------------------------------------------------------------
    def _hop_tree(self, source: Node) -> Dict[Node, Node]:
        tree = self._path_cache.get(source)
        if tree is None:
            tree = bfs_tree(self.graph, source)
            self._path_cache[source] = tree
            get_recorder().count("costs.tree_rebuilds")
        return tree

    def _contention_tree(self, source: Node) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
        dist, parents = dijkstra_node_costs(
            self.graph, source, self.node_cost, include_source=True
        )
        return dist, parents

    def _all_costs_from(self, source: Node) -> Dict[Node, float]:
        cached = self._cost_cache.get(source)
        if cached is not None:
            get_recorder().count("costs.row_cache_hits")
            return cached
        get_recorder().count("costs.row_builds")
        if self.path_policy == PATH_POLICY_HOPS:
            parents = self._hop_tree(source)
            # Walk the BFS tree accumulating node costs root-to-leaf.
            costs: Dict[Node, float] = {source: 0.0}
            base = self.node_cost(source)
            # children lists from parent pointers
            children: Dict[Node, List[Node]] = {}
            for node, parent in parents.items():
                if node != source:
                    children.setdefault(parent, []).append(node)
            stack = [(source, base)]
            while stack:
                node, acc = stack.pop()
                for child in children.get(node, ()):
                    total = acc + self.node_cost(child)
                    costs[child] = total
                    stack.append((child, total))
        else:
            dist, _ = self._contention_tree(source)
            costs = {
                node: (0.0 if node == source else value)
                for node, value in dist.items()
            }
        self._cost_cache[source] = costs
        return costs
