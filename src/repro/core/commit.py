"""Shared chunk-commit accounting used by every placement algorithm.

Whatever picks the caching set for a chunk — dual ascent, a baseline
heuristic, the exact ILP, or the distributed protocol — the bookkeeping is
identical: compute the stage costs with the *current* storage state, build
the dissemination Steiner tree, assign clients to their cheapest server,
commit the chunk to storage and refresh the cost caches.  Each
``state.cache(node, chunk)`` call marks exactly one node dirty, so the
:class:`~repro.core.costs.CostModel` delta-patches its cached ``c_ij``
rows instead of rebuilding the matrix (Algorithm 1 lines 8–13) from
scratch.  Centralizing it here keeps all algorithms comparable down to
tie-breaking.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

from repro.errors import ProblemError
from repro.analysis import contracts
from repro.graphs.steiner import steiner_tree
from repro.core.placement import ChunkPlacement, StageCost, edge_key
from repro.core.problem import ProblemState
from repro.obs import get_recorder, get_tracer

Node = Hashable


def nearest_server_assignment(
    state: ProblemState, caches: List[Node]
) -> Dict[Node, Node]:
    """Assign every client its cheapest server among ``caches ∪ {producer}``.

    "A node will find the nearest copy of a chunk" (Sec. V-A); nearest is
    measured by the Path Contention Cost, with local hits free
    (``c_ii = 0``).  Ties break toward earlier caches, then the producer.
    """
    problem = state.problem
    rows = {
        server: state.costs.all_contention_costs(server)
        for server in [problem.producer] + caches
    }
    assignment: Dict[Node, Node] = {}
    for client in problem.clients:
        best = problem.producer
        best_cost = rows[problem.producer][client]
        for server in caches:
            cost = rows[server][client]
            if cost < best_cost:
                best = server
                best_cost = cost
        assignment[client] = best
    return assignment


def commit_chunk(
    state: ProblemState,
    chunk: int,
    caches: Iterable[Node],
    assignment: Optional[Dict[Node, Node]] = None,
    tree_edges: Optional[frozenset] = None,
) -> ChunkPlacement:
    """Record chunk placement, compute stage costs, and update storage.

    Parameters
    ----------
    caches:
        Nodes that will cache this chunk (order is the tie-break order for
        client assignment).  Must all have spare storage.
    assignment:
        Optional client → server map.  ``None`` (default) derives the
        nearest-server assignment.  If given, every server must be a cache
        or the producer, and every client must appear.
    tree_edges:
        Optional dissemination tree (set of edge keys).  ``None`` builds
        the KMB Steiner tree over ``caches ∪ {producer}``; the exact ILP
        passes its own optimal tree instead.

    Returns the :class:`ChunkPlacement`; ``state`` is mutated (storage
    update + per-dirty-node cost-cache patching).
    """
    trace = get_tracer()
    with get_recorder().timer("commit"), trace.span(
        "commit.chunk", track="commit"
    ) as span:
        placement = _commit_chunk(state, chunk, caches, assignment, tree_edges)
        if trace.enabled:
            # The cost-cache attribution (incremental patch vs full
            # rebuild) appears as costs.invalidate instants nested in
            # this span's time range — see CostModel.invalidate.
            span.add(
                chunk=chunk,
                caches=sorted(str(node) for node in placement.caches),
                copies=len(placement.caches),
                fairness=placement.stage_cost.fairness,
                access=placement.stage_cost.access,
                dissemination=placement.stage_cost.dissemination,
            )
        return placement


def _commit_chunk(
    state: ProblemState,
    chunk: int,
    caches: Iterable[Node],
    assignment: Optional[Dict[Node, Node]],
    tree_edges: Optional[frozenset],
) -> ChunkPlacement:
    obs = get_recorder()
    problem = state.problem
    cache_list = list(dict.fromkeys(caches))
    sanitize = contracts.sanitize_enabled()
    used_before = (
        {node: state.storage.used(node) for node in problem.graph.nodes()}
        if sanitize
        else None
    )
    for node in cache_list:
        if node not in problem.graph:
            raise ProblemError(f"cache node {node!r} is not in the graph")
        if not state.can_cache(node):
            raise ProblemError(
                f"node {node!r} cannot cache chunk {chunk} "
                "(full, battery-dead, or producer)"
            )

    # Stage fairness cost: f_i *before* this chunk lands (Eq. 1).
    fairness = sum(state.costs.fairness_cost(i) for i in cache_list)

    if assignment is None:
        with obs.timer("assignment"):
            assignment = nearest_server_assignment(state, cache_list)
    else:
        allowed = set(cache_list) | {problem.producer}
        for client, server in assignment.items():
            if server not in allowed:
                raise ProblemError(
                    f"client {client!r} assigned to {server!r}, which does "
                    f"not cache chunk {chunk}"
                )
        missing = set(problem.clients) - set(assignment)
        if missing:
            raise ProblemError(
                f"assignment misses clients {sorted(map(repr, missing))[:5]}"
            )

    access = sum(
        state.costs.contention_cost(server, client)
        for client, server in assignment.items()
    )

    dissemination = 0.0
    if tree_edges is None:
        tree_edges = frozenset()
        if cache_list:
            with obs.timer("steiner"):
                weighted = state.costs.contention_weighted_graph()
                tree = steiner_tree(weighted, [problem.producer] + cache_list)
                tree_edges = frozenset(
                    edge_key(u, v) for u, v, _ in tree.edges()
                )
    if cache_list:
        # Sort the edge set before summing: float addition is order-
        # dependent and frozenset iteration order is not byte-stable.
        ordered_edges = sorted(
            tree_edges, key=lambda key: tuple(sorted(map(repr, key)))
        )
        dissemination = sum(
            state.costs.edge_cost(*tuple(key)) for key in ordered_edges
        )

    placement = ChunkPlacement(
        chunk=chunk,
        caches=frozenset(cache_list),
        assignment=dict(assignment),
        tree_edges=tree_edges,
        stage_cost=StageCost(
            fairness=fairness, access=access, dissemination=dissemination
        ),
    )
    for node in cache_list:
        state.cache(node, chunk)
    if sanitize and used_before is not None:
        contracts.check_storage_monotonic(
            chunk=chunk,
            used_before=used_before,
            used_after={
                node: state.storage.used(node)
                for node in problem.graph.nodes()
            },
            cached_nodes=cache_list,
        )
        contracts.check_chunk_commit(
            chunk=chunk,
            producer=problem.producer,
            clients=problem.clients,
            caches=cache_list,
            assignment=placement.assignment,
            tree_edges=placement.tree_edges,
            has_edge=problem.graph.has_edge,
            stage_costs={
                "fairness": placement.stage_cost.fairness,
                "access": placement.stage_cost.access,
                "dissemination": placement.stage_cost.dissemination,
            },
        )
    obs.count("commit.chunks")
    obs.count("commit.copies", len(cache_list))
    return placement
