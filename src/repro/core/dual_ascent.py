"""Primal-dual dual ascent for one ConFL chunk (Algorithm 1, phase 1).

This is the centralized core of the paper's approximation algorithm.  It
follows the structure of Algorithm 1 lines 17–46, which re-states the
deterministic 6.55-approximation of Jung et al. [20] in primal-dual form:

* Every unserved (not FROZEN) client ``j`` raises its bid ``α_j`` by a
  unit step ``U_α`` per round — the price it is willing to pay to reach a
  cache (line 18).
* When ``α_j ≥ c_ij`` for an *already selected* cache ``i`` (the ADMIN set
  ``A``) or the producer, ``j`` connects there and freezes (lines 21–26,
  conditions 1–2).
* Otherwise ``j`` goes **tight** with still-closed facilities it can
  afford; the surplus ``β_ij = α_j − c_ij`` pays toward the opening cost
  ``f_i`` (line 19) and the client's relay bid ``γ`` turns into a SPAN
  request (line 20).
* A facility whose opening cost is fully paid **and** that has gathered at
  least ``M`` SPAN-tight clients becomes ADMIN: it is added to ``A``, and
  every client tight with it freezes onto it (lines 27–45, conditions
  3(a)–3(c)).  The ``M`` threshold is what couples facility opening to the
  connectivity (Steiner) part of ConFL — a cache must be worth wiring into
  the dissemination tree.

Frozen clients stop bidding but their accumulated payments stay on the
books (the FREEZE handler of Algorithm 2 only *stops increasing* α, β, γ),
which matches the dual feasibility argument of Theorem 1.

Determinism: clients and facilities are processed in their instance order
(graph insertion order), so runs are exactly reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set

from repro.errors import SolverError
from repro.analysis import contracts
from repro.core.confl import ConFLInstance
from repro.obs import get_recorder, get_tracer

Node = Hashable


@dataclass(frozen=True)
class DualAscentConfig:
    """Tuning knobs of the dual ascent.

    Attributes
    ----------
    step:
        The bid increment ``U_α`` per round.  Smaller steps track the dual
        trajectory more precisely but take more rounds (the paper bounds
        rounds by ``max{c_ij} / U_α``, Sec. IV-B).
    span_threshold:
        ``M`` — SPAN-tight clients required before a paid facility becomes
        ADMIN.  ``None`` defers to the instance's dissemination scale
        (minimum 1).
    max_rounds:
        Safety valve; the ascent provably ends within
        ``max c_ij / step + 1`` rounds, so hitting this raises.
    """

    step: float = 1.0
    span_threshold: Optional[int] = 3
    max_rounds: int = 1_000_000

    def resolved_threshold(self, instance: ConFLInstance) -> int:
        if self.span_threshold is not None:
            return max(1, int(self.span_threshold))
        return max(1, int(round(instance.dissemination_scale)))


@dataclass
class DualAscentResult:
    """Outcome of phase 1 for one chunk."""

    admins: List[Node]
    assignment: Dict[Node, Node]
    alpha: Dict[Node, float]
    rounds: int
    # Diagnostics useful for tests / the distributed twin:
    payments: Dict[Node, float] = field(default_factory=dict)
    span_counts: Dict[Node, int] = field(default_factory=dict)


def dual_ascent(
    instance: ConFLInstance, config: DualAscentConfig = DualAscentConfig()
) -> DualAscentResult:
    """Run the dual ascent; returns the ADMIN set and client assignment.

    Every client ends FROZEN: connected to an ADMIN facility or to the
    producer.  Facilities with infinite opening cost never open, so
    capacity is respected by construction.
    """
    if config.step <= 0:
        raise SolverError(f"dual-ascent step must be positive, got {config.step}")
    producer = instance.producer
    clients: List[Node] = list(instance.clients)
    facilities: List[Node] = [
        node
        for node in instance.facilities
        if math.isfinite(instance.open_cost[node])
    ]
    connect = instance.connect_cost
    open_cost = instance.open_cost
    threshold = config.resolved_threshold(instance)

    alpha: Dict[Node, float] = {j: 0.0 for j in clients}
    frozen: Set[Node] = set()
    target: Dict[Node, Node] = {}
    admins: List[Node] = []
    admin_set: Set[Node] = set()
    # T[i]: clients that went tight with facility i while still bidding.
    tight: Dict[Node, Set[Node]] = {i: set() for i in facilities}
    # Payments toward f_i, locked in place when a contributor freezes.
    locked_payment: Dict[Node, float] = {i: 0.0 for i in facilities}

    def facility_payment(i: Node) -> float:
        """Σ β_ij: live bids of unfrozen tight clients + locked payments."""
        live = sum(
            alpha[j] - connect[i][j] for j in tight[i] if j not in frozen
        )
        return locked_payment[i] + live

    def freeze(j: Node, server: Node) -> None:
        """FROZEN: stop j's bids, lock its β contributions, record target."""
        frozen.add(j)
        target[j] = server
        for i in facilities:
            if j in tight[i]:
                locked_payment[i] += max(0.0, alpha[j] - connect[i][j])

    def cheapest_open_server(j: Node) -> Optional[Node]:
        """Best already-open server j can afford (ADMIN or producer)."""
        best: Optional[Node] = None
        best_cost = math.inf
        candidates = [producer] + admins
        for i in candidates:
            cost = connect[i][j]
            if alpha[j] >= cost and cost < best_cost:
                best = i
                best_cost = cost
        return best

    def rounds_to_next_event() -> int:
        """Idle rounds that can be skipped in one jump.

        Between events (a client affording an open server, a client going
        tight with a new facility, a facility's payment reaching ``f_i``)
        every round just adds ``step`` to all active bids — so the
        trajectory is identical if those rounds are applied at once.
        This event-driven jump is what keeps Algorithm 1 fast in practice
        (cf. Fig. 5) without changing any outcome.
        """
        step = config.step
        best = math.inf
        open_servers = [producer] + admins
        for j in clients:
            if j in frozen:
                continue
            aj = alpha[j]
            nearest = math.inf
            for i in open_servers:
                gap = connect[i][j] - aj
                if gap < nearest:
                    nearest = gap
            for i in facilities:
                if i in admin_set or j in tight[i]:
                    continue
                gap = connect[i][j] - aj
                if gap < nearest:
                    nearest = gap
            if nearest <= 0:
                return 1
            rounds_needed = max(1, math.ceil(nearest / step - 1e-12))
            if rounds_needed < best:
                best = rounds_needed
        for i in facilities:
            if i in admin_set:
                continue
            active_count = sum(1 for j in tight[i] if j not in frozen)
            if active_count < threshold:
                continue
            deficit = open_cost[i] - facility_payment(i)
            if deficit <= 0:
                return 1
            rounds_needed = max(
                1, math.ceil(deficit / (active_count * step) - 1e-12)
            )
            if rounds_needed < best:
                best = rounds_needed
        if not math.isfinite(best):
            return 1
        return int(best)

    rounds = 0
    event_loops = 0
    direct_freezes = 0
    trace = get_tracer()
    obs = get_recorder()
    series_on = obs.series_enabled
    # The cumulative counters (bumped at the end of every earlier run)
    # offset this run's round numbers and freeze/opening tallies, so
    # the convergence series stay monotone across per-chunk solves.
    series_base = frozen_base = admins_base = 0.0
    if series_on:
        series_base = float(obs.counter("dual_ascent.rounds"))
        frozen_base = float(
            obs.counter("dual_ascent.freezes.direct")
            + obs.counter("dual_ascent.freezes.via_opening")
        )
        admins_base = float(obs.counter("dual_ascent.admins_opened"))
    tight_edges = 0
    while len(frozen) < len(clients):
        jump = rounds_to_next_event()
        rounds += jump
        event_loops += 1
        frozen_before = len(frozen)
        admins_before = len(admins)
        if rounds > config.max_rounds:
            raise SolverError(
                f"dual ascent did not converge in {config.max_rounds} rounds"
            )
        # Line 18: raise bids of every active client (jumped in one step).
        for j in clients:
            if j not in frozen:
                alpha[j] += config.step * jump

        # Conditions 1-2 (lines 21-26): connect to ADMIN / producer.
        for j in clients:
            if j in frozen:
                continue
            server = cheapest_open_server(j)
            if server is not None:
                freeze(j, server)
                direct_freezes += 1

        # Lines 19-20: refresh tight sets (β, γ bids) of active clients.
        for j in clients:
            if j in frozen:
                continue
            aj = alpha[j]
            for i in facilities:
                if i not in admin_set and aj >= connect[i][j]:
                    tight[i].add(j)

        # Condition 3 (lines 27-45): open fully paid, well-supported
        # facilities.  Deterministic facility order; openings within a
        # round see the freezes caused by earlier openings.
        for i in facilities:
            if i in admin_set:
                continue
            active_tight = [j for j in tight[i] if j not in frozen]
            if len(active_tight) < threshold:
                continue
            if facility_payment(i) + 1e-12 < open_cost[i]:
                continue
            admin_set.add(i)
            admins.append(i)
            if trace.enabled:
                trace.instant(
                    "dual_ascent.admin_open",
                    track="dual_ascent",
                    args={
                        "facility": str(i),
                        "round": rounds,
                        "payment": facility_payment(i),
                        "open_cost": open_cost[i],
                        "tight_clients": len(active_tight),
                    },
                )
            for j in active_tight:
                freeze(j, i)

        # Per-iteration trace: the dual trajectory (bid levels, tight
        # edges, freezes, openings) as one instant event per event-loop
        # round.  Payload construction is gated so the default
        # NullTracer costs one attribute read per iteration.
        if trace.enabled:
            total_tight = sum(len(t) for t in tight.values())
            active_alpha = [alpha[j] for j in clients if j not in frozen]
            trace.instant(
                "dual_ascent.round",
                track="dual_ascent",
                args={
                    "round": rounds,
                    "jump": jump,
                    "frozen": len(frozen),
                    "new_freezes": len(frozen) - frozen_before,
                    "admins": len(admins),
                    "new_admins": len(admins) - admins_before,
                    "tight_edges": total_tight,
                    "new_tight_edges": total_tight - tight_edges,
                    "alpha_active_max": max(active_alpha, default=0.0),
                },
            )
            tight_edges = total_tight

        # Per-round convergence series (virtual time = round number):
        # the dual objective Σα, the freeze/opening census, and the
        # residual infeasibility (clients still bidding).  One
        # attribute read per iteration when telemetry is off.
        if series_on:
            t = series_base + rounds
            obs.series_point(
                "dual_ascent.objective", t, sum(alpha.values())
            )
            obs.series_point(
                "dual_ascent.frozen",
                t,
                frozen_base + len(frozen),
                kind="counter",
            )
            obs.series_point(
                "dual_ascent.admins",
                t,
                admins_base + len(admins),
                kind="counter",
            )
            obs.series_point(
                "dual_ascent.unserved", t, len(clients) - len(frozen)
            )

    payments = {i: facility_payment(i) for i in facilities}
    span_counts = {i: len(tight[i]) for i in facilities}
    if contracts.sanitize_enabled():
        contracts.check_dual_solution(
            producer=producer,
            clients=clients,
            facilities=facilities,
            open_cost=open_cost,
            connect_cost=connect,
            admins=admins,
            assignment=target,
            alpha=alpha,
            payments=payments,
            span_counts=span_counts,
            step=config.step,
            threshold=threshold,
        )
    obs.count("dual_ascent.runs")
    obs.count("dual_ascent.rounds", rounds)
    obs.count("dual_ascent.event_loops", event_loops)
    obs.count("dual_ascent.tight_events", sum(span_counts.values()))
    obs.count("dual_ascent.span_supported_facilities",
              sum(1 for c in span_counts.values() if c >= threshold))
    obs.count("dual_ascent.freezes.direct", direct_freezes)
    obs.count("dual_ascent.freezes.via_opening", len(frozen) - direct_freezes)
    obs.count("dual_ascent.admins_opened", len(admins))
    return DualAscentResult(
        admins=admins,
        assignment=dict(target),
        alpha=alpha,
        rounds=rounds,
        payments=payments,
        span_counts=span_counts,
    )
