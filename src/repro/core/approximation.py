"""Algorithm 1 — the fair-caching approximation algorithm.

Iterates the dual-ascent ConFL solver once per chunk (Sec. IV-A):

1. Rebuild fairness costs ``f_i`` and contention costs ``c_ij`` from the
   *current* storage state (lines 5–16) — nodes that cached earlier chunks
   become more expensive to pick again, which is the fairness mechanism.
2. Run the primal-dual dual ascent (lines 17–46) to select the ADMIN set
   ``A`` of caching nodes and the client assignments.
3. Phase 2: connect ``A ∪ {producer}`` with a Steiner tree on the
   contention-weighted topology (line 47) and disseminate the chunk.
4. Commit the chunk to storage (``L(n) ← A``, line 48) and continue.

Theorem 1 shows this per-chunk iteration preserves the 6.55 approximation
ratio of the underlying ConFL algorithm; the benchmark
``benchmarks/test_approx_ratio.py`` checks the ratio empirically against
the exact solver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.core.commit import commit_chunk
from repro.core.confl import build_confl_instance
from repro.core.dual_ascent import DualAscentConfig, dual_ascent
from repro.core.placement import CachePlacement, ChunkPlacement
from repro.core.problem import CachingProblem, ProblemState
from repro.obs import get_recorder

ALGORITHM_NAME = "approximation"


@dataclass(frozen=True)
class ApproximationConfig:
    """Configuration of Algorithm 1.

    Attributes
    ----------
    dual:
        Dual-ascent knobs (bid step ``U_α``, SPAN threshold ``M``).
    reassign_clients:
        After the ADMIN set is fixed, reassign every client to its
        cheapest open server (nearest-copy semantics of Sec. V-A) instead
        of keeping the freeze-time target.  On by default; turning it off
        exposes the raw primal-dual assignment for analysis.
    """

    dual: DualAscentConfig = DualAscentConfig()
    reassign_clients: bool = True


def solve_approximation(
    problem: CachingProblem, config: Optional[ApproximationConfig] = None
) -> CachePlacement:
    """Run Algorithm 1 on ``problem`` and return the full placement."""
    config = config or ApproximationConfig()
    state = problem.new_state()
    placements: List[ChunkPlacement] = []
    with get_recorder().timer("solve_approximation"):
        for chunk in problem.chunks:
            placements.append(place_one_chunk(state, chunk, config))
    placement = CachePlacement(
        problem=problem, chunks=placements, algorithm=ALGORITHM_NAME
    )
    return placement


def place_one_chunk(
    state: ProblemState, chunk: int, config: ApproximationConfig
) -> ChunkPlacement:
    """Place a single chunk with the current state; commits to storage."""
    obs = get_recorder()
    with obs.timer("cost_rebuild"):
        instance = build_confl_instance(state)
    with obs.timer("dual_ascent"):
        result = dual_ascent(instance, config.dual)
    admins = list(result.admins)
    obs.count("appx.chunks_placed")
    # Freeze-time assignment, or nearest-copy reassignment (Sec. V-A).
    assignment = None if config.reassign_clients else result.assignment
    return commit_chunk(state, chunk, admins, assignment=assignment)


@dataclass
class TimedPlacement:
    """A placement plus per-chunk wall-clock timings (for Fig. 5)."""

    placement: CachePlacement
    per_chunk_seconds: List[float]

    @property
    def total_seconds(self) -> float:
        return sum(self.per_chunk_seconds)


def solve_approximation_timed(
    problem: CachingProblem, config: Optional[ApproximationConfig] = None
) -> TimedPlacement:
    """Like :func:`solve_approximation` but timing each chunk placement."""
    config = config or ApproximationConfig()
    state = problem.new_state()
    placements: List[ChunkPlacement] = []
    timings: List[float] = []
    with get_recorder().timer("solve_approximation"):
        for chunk in problem.chunks:
            start = time.perf_counter()
            placements.append(place_one_chunk(state, chunk, config))
            timings.append(time.perf_counter() - start)
    placement = CachePlacement(
        problem=problem, chunks=placements, algorithm=ALGORITHM_NAME
    )
    return TimedPlacement(placement=placement, per_chunk_seconds=timings)
