"""Problem definition and mutable solver state for fair caching.

:class:`CachingProblem` is the immutable description of an instance
(Sec. III-A): the network graph, the producer node, how many equal-size
chunks to place, per-node storage capacities and the objective weights.

:class:`ProblemState` couples a problem with a live
:class:`~repro.core.storage.StorageState` and
:class:`~repro.core.costs.CostModel` — the thing algorithms mutate as they
place chunk after chunk (Algorithm 1's update loop, lines 5–16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Optional, Union

from repro.errors import ProblemError
from repro.graphs.components import is_connected
from repro.graphs.graph import Graph
from repro.core.costs import PATH_POLICY_HOPS, CostModel
from repro.core.storage import StorageState
from repro.obs import get_tracer

Node = Hashable

DEFAULT_CAPACITY = 5  # chunks per node, Sec. V-A


@dataclass(frozen=True)
class CachingProblem:
    """An instance of the fair-caching problem.

    Parameters
    ----------
    graph:
        Connected undirected network topology ``G = (V, E)``.
    producer:
        The node that originally holds all data.  It never caches and is
        excluded from cost calculations (Sec. V-A); the paper's default is
        node 9.
    num_chunks:
        Number of equal-size data chunks ``|N|`` to disseminate.
    capacity:
        Uniform per-node capacity (int) or a node → capacity mapping.
        Paper default: 5.
    fairness_weight / contention_weight:
        Weights of the fairness and contention terms in the objective.
        The paper "consider[s] them of the same weight" (Sec. III-D), so
        both default to 1.
    dissemination_scale:
        The ``M`` multiplying the Steiner (dissemination) term in Eq. 8;
        also the SPAN-request threshold for a node to become ADMIN in the
        distributed algorithm.
    path_policy:
        Path selection for Eq. 2; see :class:`~repro.core.costs.CostModel`.
    battery_capacity:
        Optional per-node energy budget (uniform float or node → float).
        When set, the battery Fairness Degree Cost of footnote 1 is added
        to the storage one (weighted by ``battery_weight``), caching a
        chunk drains ``energy_per_cache`` units, and battery-dead nodes
        stop being facility candidates.
    battery_weight / energy_per_cache:
        Weight of the battery fairness term, and the energy one cached
        chunk costs its host.  Ignored without ``battery_capacity``.
    """

    graph: Graph
    producer: Node
    num_chunks: int
    capacity: Union[int, Mapping[Node, int]] = DEFAULT_CAPACITY
    fairness_weight: float = 1.0
    contention_weight: float = 1.0
    dissemination_scale: float = 1.0
    path_policy: str = PATH_POLICY_HOPS
    battery_capacity: Optional[Union[float, Mapping[Node, float]]] = None
    battery_weight: float = 1.0
    energy_per_cache: float = 1.0

    def __post_init__(self) -> None:
        if self.producer not in self.graph:
            raise ProblemError(f"producer {self.producer!r} is not in the graph")
        if self.num_chunks < 0:
            raise ProblemError(f"num_chunks must be >= 0, got {self.num_chunks}")
        if self.graph.num_nodes > 1 and not is_connected(self.graph):
            raise ProblemError("the network graph must be connected (Sec. III-A)")
        if self.fairness_weight < 0 or self.contention_weight < 0:
            raise ProblemError("objective weights must be non-negative")
        if self.dissemination_scale < 0:
            raise ProblemError("dissemination_scale (M) must be non-negative")
        if self.battery_weight < 0:
            raise ProblemError("battery_weight must be non-negative")
        if self.energy_per_cache < 0:
            raise ProblemError("energy_per_cache must be non-negative")

    @property
    def chunks(self) -> range:
        """Chunk ids ``0..num_chunks-1``."""
        return range(self.num_chunks)

    @property
    def clients(self) -> list:
        """All nodes that request data — every node except the producer."""
        return [node for node in self.graph.nodes() if node != self.producer]

    def total_capacity(self) -> int:
        """Aggregate non-producer storage, in chunks."""
        state = self.new_storage()
        return sum(
            state.capacity(node) for node in state.nodes() if node != self.producer
        )

    def new_storage(self) -> StorageState:
        """A fresh all-empty storage state for this problem."""
        return StorageState(self.graph.nodes(), self.capacity, self.producer)

    def new_battery(self) -> Optional["BatteryState"]:
        """A fresh full battery state, or ``None`` when batteries are off."""
        if self.battery_capacity is None:
            return None
        from repro.core.resources import BatteryState

        return BatteryState(
            self.graph.nodes(), self.battery_capacity, self.producer
        )

    def new_state(self) -> "ProblemState":
        """A fresh mutable solver state (empty caches, full batteries)."""
        return ProblemState(self)


@dataclass
class ProblemState:
    """Problem + live storage/battery + cost model, kept consistent."""

    problem: CachingProblem
    storage: StorageState = field(init=False)
    battery: Optional["BatteryState"] = field(init=False)
    costs: CostModel = field(init=False)

    def __post_init__(self) -> None:
        self.storage = self.problem.new_storage()
        self.battery = self.problem.new_battery()
        self.costs = CostModel(
            self.problem.graph,
            self.storage,
            self.problem.path_policy,
            battery=self.battery,
            battery_weight=self.problem.battery_weight,
        )
        # Dirty-region ledger: every node whose occupancy changed since
        # the last drain.  The adaptive control plane reads this to
        # bound re-evaluation to regions that actually moved; purely
        # observational — nothing in the solver core consults it.
        self._dirty_accum: set = set()

    def peek_dirty_nodes(self) -> frozenset:
        """Nodes whose occupancy changed since the last drain."""
        return frozenset(self._dirty_accum)

    def drain_dirty_nodes(self) -> frozenset:
        """Return accumulated dirty nodes and reset the ledger."""
        drained = frozenset(self._dirty_accum)
        self._dirty_accum.clear()
        return drained

    def can_cache(self, node: Node) -> bool:
        """Node has spare storage AND (if modelled) enough battery."""
        if not self.storage.can_cache(node):
            return False
        if self.battery is not None:
            return self.battery.can_spend(node, self.problem.energy_per_cache)
        return True

    def cache_budget(self, node: Node) -> int:
        """How many more chunks ``node`` can host right now."""
        slots = self.storage.available(node)
        if node == self.problem.producer:
            return 0
        if self.battery is not None and self.problem.energy_per_cache > 0:
            affordable = int(
                self.battery.remaining(node) // self.problem.energy_per_cache
            )
            return min(slots, affordable)
        return slots

    def cache(self, node: Node, chunk: int) -> None:
        """Cache ``chunk`` at ``node`` and refresh dependent costs.

        Only ``node``'s occupancy changed, so the cost model is told
        exactly which node is dirty and delta-patches its cached rows
        instead of rebuilding them (see
        :meth:`~repro.core.costs.CostModel.invalidate`).
        """
        self.storage.add(node, chunk)
        if self.battery is not None:
            self.battery.drain(node, self.problem.energy_per_cache)
        trace = get_tracer()
        if trace.enabled:
            trace.instant(
                "storage.cache",
                track="commit",
                args={
                    "node": str(node),
                    "chunk": chunk,
                    "used": self.storage.used(node),
                },
            )
        self._dirty_accum.add(node)
        self.costs.invalidate(dirty_nodes=(node,))

    def evict(self, node: Node, chunk: int) -> None:
        """Remove ``chunk`` from ``node`` and refresh dependent costs.

        Eviction frees storage but does *not* refund battery — the energy
        was spent receiving and serving the chunk.  Like :meth:`cache`,
        the cost model only patches for the single dirty node.
        """
        self.storage.remove(node, chunk)
        trace = get_tracer()
        if trace.enabled:
            trace.instant(
                "storage.evict",
                track="commit",
                args={
                    "node": str(node),
                    "chunk": chunk,
                    "used": self.storage.used(node),
                },
            )
        self._dirty_accum.add(node)
        self.costs.invalidate(dirty_nodes=(node,))
