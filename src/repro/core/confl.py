"""Connected Facility Location (ConFL) instances derived from caching state.

Sec. III-D shows the fair-caching ILP is a *sum of ConFL problems*, one per
chunk (Eq. 8):

* facilities  = nodes with spare storage; opening cost = Fairness Degree
  Cost ``f_i`` (what the network pays to cache there),
* clients     = every node except the producer; connection cost = Path
  Contention Cost ``c_ij``,
* core        = the producer, to which all open facilities must connect
  through a Steiner tree with edge costs ``c_e`` scaled by ``M``.

:func:`build_confl_instance` freezes the *current* storage state into such
an instance — Algorithm 1 rebuilds it before each chunk so fairness and
contention feed forward (lines 5–16).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

from repro.graphs.graph import Graph
from repro.core.problem import ProblemState

Node = Hashable


@dataclass(frozen=True)
class ConFLInstance:
    """A single-chunk ConFL snapshot (all costs already weighted).

    Attributes
    ----------
    producer:
        The core node; acts as an always-open, zero-cost facility.
    clients:
        Nodes that must be served (all nodes except the producer).
    facilities:
        Nodes eligible to cache the chunk (spare storage, not producer).
    open_cost:
        facility → weighted opening cost ``fairness_weight · f_i``.
    connect_cost:
        server → client → weighted connection cost
        ``contention_weight · c_ij`` (``c_ii = 0``); servers include the
        producer.
    steiner_graph:
        Topology re-weighted with dissemination edge costs
        ``contention_weight · c_e`` (the ``M`` scale is applied by the
        objective, not baked into edges, so trees stay comparable).
    raw_open_cost / raw_connect_cost:
        The unweighted ``f_i`` / ``c_ij`` for reporting stage costs.
    """

    producer: Node
    clients: Tuple[Node, ...]
    facilities: Tuple[Node, ...]
    open_cost: Dict[Node, float]
    connect_cost: Dict[Node, Dict[Node, float]]
    steiner_graph: Graph
    dissemination_scale: float
    raw_open_cost: Dict[Node, float] = field(default_factory=dict)
    raw_connect_cost: Dict[Node, Dict[Node, float]] = field(default_factory=dict)

    def max_connect_cost(self) -> float:
        """``max c_ij`` — bounds the dual-ascent round count (Sec. IV-B)."""
        best = 0.0
        for row in self.connect_cost.values():
            for value in row.values():
                if value > best and math.isfinite(value):
                    best = value
        return best


def build_confl_instance(state: ProblemState) -> ConFLInstance:
    """Snapshot the current caching state as a ConFL instance.

    Implements Algorithm 1 lines 5–16: refresh every ``f_i`` from storage
    (line 6), compute all shortest paths and ``c_ij`` (lines 8–13), and the
    dissemination edge costs ``c_e`` (lines 14–16).
    """
    problem = state.problem
    graph = problem.graph
    producer = problem.producer

    clients: List[Node] = list(problem.clients)
    facilities: List[Node] = [
        node for node in clients if state.can_cache(node)
    ]

    raw_open = {node: state.costs.fairness_cost(node) for node in facilities}
    open_cost = {
        node: problem.fairness_weight * cost for node, cost in raw_open.items()
    }

    servers = [producer] + facilities
    raw_connect: Dict[Node, Dict[Node, float]] = {}
    connect: Dict[Node, Dict[Node, float]] = {}
    for server in servers:
        row = state.costs.all_contention_costs(server)
        raw_connect[server] = row
        connect[server] = {
            client: problem.contention_weight * row[client] for client in clients
        }

    steiner_graph = Graph()
    steiner_graph.add_nodes(graph.nodes())
    for u, v, _ in graph.edges():
        steiner_graph.add_edge(
            u, v, problem.contention_weight * state.costs.edge_cost(u, v)
        )

    return ConFLInstance(
        producer=producer,
        clients=tuple(clients),
        facilities=tuple(facilities),
        open_cost=open_cost,
        connect_cost=connect,
        steiner_graph=steiner_graph,
        dissemination_scale=problem.dissemination_scale,
        raw_open_cost=raw_open,
        raw_connect_cost=raw_connect,
    )
