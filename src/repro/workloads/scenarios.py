"""Workload generators reproducing the paper's simulation scenarios.

Sec. V-A's defaults, bundled as ready-made :class:`CachingProblem`
factories with seeded randomness for the sweeps:

* capacity 5 chunks per node,
* 5 distinct chunks (unless the experiment sweeps chunk counts),
* producer node 9 ("Unless specified, node 9 is the data producer"),
* grid networks (4-neighbor) and connected random geometric networks,
* every node requests every chunk.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from repro.errors import ProblemError
from repro.graphs.generators import connected_random_network, grid_graph
from repro.graphs.graph import Graph
from repro.core.problem import DEFAULT_CAPACITY, CachingProblem

Node = Hashable

PAPER_PRODUCER = 9
PAPER_NUM_CHUNKS = 5


def grid_problem(
    side: int,
    num_chunks: int = PAPER_NUM_CHUNKS,
    capacity: int = DEFAULT_CAPACITY,
    producer: Optional[Node] = None,
    **kwargs,
) -> CachingProblem:
    """The paper's grid scenario: ``side × side`` grid, producer node 9.

    For grids too small to contain node 9 (side < 4) the producer defaults
    to the center node instead.
    """
    graph = grid_graph(side)
    if producer is None:
        producer = PAPER_PRODUCER if PAPER_PRODUCER in graph else _center(side)
    return CachingProblem(
        graph=graph,
        producer=producer,
        num_chunks=num_chunks,
        capacity=capacity,
        **kwargs,
    )


def random_problem(
    num_nodes: int,
    seed: int,
    num_chunks: int = PAPER_NUM_CHUNKS,
    capacity: int = DEFAULT_CAPACITY,
    producer: Optional[Node] = None,
    **kwargs,
) -> Tuple[CachingProblem, Dict[Node, Tuple[float, float]]]:
    """The paper's random scenario: connected random geometric network.

    Returns the problem and the node positions (for visualization).
    """
    graph, positions = connected_random_network(num_nodes, seed=seed)
    if producer is None:
        producer = PAPER_PRODUCER if PAPER_PRODUCER in graph else next(iter(graph.nodes()))
    problem = CachingProblem(
        graph=graph,
        producer=producer,
        num_chunks=num_chunks,
        capacity=capacity,
        **kwargs,
    )
    return problem, positions


def grid_sweep(
    sides: List[int], num_chunks: int = PAPER_NUM_CHUNKS, **kwargs
) -> Iterator[Tuple[int, CachingProblem]]:
    """Yield ``(side, problem)`` for each grid size (Figs. 2, 5, 7a)."""
    for side in sides:
        yield side, grid_problem(side, num_chunks=num_chunks, **kwargs)


def random_sweep(
    sizes: List[int],
    runs: int = 5,
    base_seed: int = 2017,
    num_chunks: int = PAPER_NUM_CHUNKS,
    **kwargs,
) -> Iterator[Tuple[int, int, CachingProblem]]:
    """Yield ``(num_nodes, run, problem)`` — the paper averages each random
    network size over 5 runs (Fig. 4)."""
    if runs < 1:
        raise ProblemError("runs must be >= 1")
    for size in sizes:
        for run in range(runs):
            problem, _ = random_problem(
                size, seed=base_seed + 7919 * run + size, num_chunks=num_chunks,
                **kwargs,
            )
            yield size, run, problem


def chunk_sweep(
    side: int, chunk_counts: List[int], **kwargs
) -> Iterator[Tuple[int, CachingProblem]]:
    """Yield ``(num_chunks, problem)`` on a fixed grid (Fig. 8's 1..10)."""
    for count in chunk_counts:
        yield count, grid_problem(side, num_chunks=count, **kwargs)


def _center(side: int) -> int:
    return (side // 2) * side + side // 2
