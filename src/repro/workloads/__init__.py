"""Scenario and sweep generators matching the paper's evaluation setup."""

from repro.workloads.scenarios import (
    PAPER_NUM_CHUNKS,
    PAPER_PRODUCER,
    chunk_sweep,
    grid_problem,
    grid_sweep,
    random_problem,
    random_sweep,
)

__all__ = [
    "PAPER_NUM_CHUNKS",
    "PAPER_PRODUCER",
    "chunk_sweep",
    "grid_problem",
    "grid_sweep",
    "random_problem",
    "random_sweep",
]
