"""The :class:`AdaptiveReport`: what a closed-loop run did and bought.

One JSON-safe, byte-deterministic document (schema ``repro-adaptive/1``)
per controller run: the per-epoch ledger (observed demand priced under
the adaptive placement vs the frozen one-shot static placement, the
adaptation spend, served-load fairness, drift and dirty-chunk census)
plus every accepted move.  The headline figures are the two accumulated
costs — the adaptive side **includes** its adaptation spend (replica
transfers and re-solve dissemination), so "adaptive beats static" is an
honest, all-in comparison.

Everything derives from simulation state and seeded RNGs; two runs of
one configuration serialize to identical bytes (asserted in the tests,
relied on by the sweep's worker-count-independence contract).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

ADAPTIVE_SCHEMA = "repro-adaptive/1"


@dataclass(frozen=True)
class MoveRecord:
    """One accepted local move."""

    epoch: int
    kind: str
    node: str
    chunk: int
    gain: float
    transfer_cost: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "kind": self.kind,
            "node": self.node,
            "chunk": self.chunk,
            "gain": self.gain,
            "transfer_cost": self.transfer_cost,
        }


@dataclass(frozen=True)
class EpochRecord:
    """Ledger line for one served epoch."""

    epoch: int
    requests: int
    adaptive_cost: float
    static_cost: float
    adaptation_cost: float
    served_gini: float
    drift_max: float
    dirty_chunks: int
    moves_considered: int
    moves_accepted: int
    resolves: int
    resolves_reverted: int
    churned_nodes: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "requests": self.requests,
            "adaptive_cost": self.adaptive_cost,
            "static_cost": self.static_cost,
            "adaptation_cost": self.adaptation_cost,
            "served_gini": self.served_gini,
            "drift_max": self.drift_max,
            "dirty_chunks": self.dirty_chunks,
            "moves_considered": self.moves_considered,
            "moves_accepted": self.moves_accepted,
            "resolves": self.resolves,
            "resolves_reverted": self.resolves_reverted,
            "churned_nodes": list(self.churned_nodes),
        }


@dataclass(frozen=True)
class AdaptiveReport:
    """Summary of one adaptive control-loop run."""

    workload: str
    adaptive_policy: str
    selection_policy: str
    algorithm: str
    epochs: int
    epoch_requests: int
    warmup_epochs: int
    accumulated_adaptive_cost: float
    accumulated_static_cost: float
    total_adaptation_cost: float
    total_moves: int
    total_resolves: int
    final_copies: int
    epoch_records: Tuple[EpochRecord, ...] = ()
    move_records: Tuple[MoveRecord, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (schema ``repro-adaptive/1``), stable order."""
        return {
            "schema": ADAPTIVE_SCHEMA,
            "workload": self.workload,
            "adaptive_policy": self.adaptive_policy,
            "selection_policy": self.selection_policy,
            "algorithm": self.algorithm,
            "epochs": self.epochs,
            "epoch_requests": self.epoch_requests,
            "warmup_epochs": self.warmup_epochs,
            "accumulated_adaptive_cost": self.accumulated_adaptive_cost,
            "accumulated_static_cost": self.accumulated_static_cost,
            "total_adaptation_cost": self.total_adaptation_cost,
            "total_moves": self.total_moves,
            "total_resolves": self.total_resolves,
            "final_copies": self.final_copies,
            "epoch_records": [r.to_dict() for r in self.epoch_records],
            "move_records": [m.to_dict() for m in self.move_records],
        }

    def to_json(self, indent: int = 2) -> str:
        """:meth:`to_dict` as JSON; byte-identical across same-seed runs."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "AdaptiveReport":
        """Inverse of :meth:`to_dict` (round-trip tested)."""
        fields = {
            k: v
            for k, v in data.items()
            if k not in ("schema", "epoch_records", "move_records")
        }
        fields["epoch_records"] = tuple(
            EpochRecord(
                **{
                    **r,
                    "churned_nodes": tuple(r.get("churned_nodes", ())),
                }
            )
            for r in data.get("epoch_records", ())
        )
        fields["move_records"] = tuple(
            MoveRecord(**m) for m in data.get("move_records", ())
        )
        return AdaptiveReport(**fields)

    @property
    def savings(self) -> float:
        """Static minus adaptive accumulated cost (positive = win)."""
        return self.accumulated_static_cost - self.accumulated_adaptive_cost

    def render(self) -> str:
        """Aligned per-epoch ledger plus the headline for the CLI."""
        headers = (
            "epoch", "requests", "adaptive", "static", "adapt-spend",
            "gini", "drift", "dirty", "moves", "resolves",
        )
        rows = [
            (
                str(r.epoch),
                str(r.requests),
                f"{r.adaptive_cost:.1f}",
                f"{r.static_cost:.1f}",
                f"{r.adaptation_cost:.1f}",
                f"{r.served_gini:.3f}",
                f"{r.drift_max:.3f}",
                str(r.dirty_chunks),
                f"{r.moves_accepted}/{r.moves_considered}",
                str(r.resolves),
            )
            for r in self.epoch_records
        ]
        widths = [len(h) for h in headers]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        lines.extend(
            "  ".join(c.rjust(w) for c, w in zip(row, widths))
            for row in rows
        )
        lines.append("")
        lines.append(
            f"policy {self.adaptive_policy} ({self.workload} workload, "
            f"{self.selection_policy} selection): "
            f"adaptive {self.accumulated_adaptive_cost:.1f} vs "
            f"static {self.accumulated_static_cost:.1f} "
            f"(savings {self.savings:.1f}; "
            f"{self.total_moves} moves, {self.total_resolves} re-solves, "
            f"adaptation spend {self.total_adaptation_cost:.1f})"
        )
        return "\n".join(lines)
