"""repro.adaptive — closed-loop placement control from observed traffic.

The one-shot pipeline (Algorithm 1 → serve) assumes the demand a
placement was optimized for never changes.  This package closes the
loop: the serve engines export per-``(client, chunk)`` demand, an EWMA
estimator tracks the live request distribution, and an epoch-based
controller re-optimizes the placement when the two diverge — bounded
never-worsen local moves for moderate drift, scoped Algorithm-1
re-solves for heavy drift.  Under stationary demand the controller is
provably quiescent: zero moves, and the final placement is bit-identical
to the one-shot output.

Layer 5 (above ``repro.serve`` and ``repro.online``); see
``docs/ADAPTIVE.md`` for the control-loop design and determinism
contract.
"""

from repro.adaptive.controller import (
    ALGORITHM_NAME,
    AdaptiveConfig,
    AdaptiveController,
    run_adaptive,
)
from repro.adaptive.moves import (
    DEFAULT_MIN_GAIN,
    MOVE_CACHE,
    MOVE_EVICT,
    Move,
    MoveEvaluator,
    fresh_weighted_access_cost,
    price_pair,
    rebuild_chunk_placement,
    replica_transfer_cost,
    weighted_access_cost,
)
from repro.adaptive.policy import (
    ACTION_MOVES,
    ACTION_NONE,
    ACTION_RESOLVE,
    ADAPTIVE_POLICIES,
    HYBRID,
    MOVES_ONLY,
    RESOLVE_ONLY,
    STATIC,
    AdaptivePolicy,
)
from repro.adaptive.report import (
    ADAPTIVE_SCHEMA,
    AdaptiveReport,
    EpochRecord,
    MoveRecord,
)
from repro.adaptive.signals import (
    DEFAULT_ALPHA,
    DemandEstimator,
    DemandSnapshot,
    chunk_drift,
)

__all__ = [
    "ACTION_MOVES",
    "ACTION_NONE",
    "ACTION_RESOLVE",
    "ADAPTIVE_POLICIES",
    "ADAPTIVE_SCHEMA",
    "ALGORITHM_NAME",
    "AdaptiveConfig",
    "AdaptiveController",
    "AdaptivePolicy",
    "AdaptiveReport",
    "DEFAULT_ALPHA",
    "DEFAULT_MIN_GAIN",
    "DemandEstimator",
    "DemandSnapshot",
    "EpochRecord",
    "HYBRID",
    "MOVES_ONLY",
    "MOVE_CACHE",
    "MOVE_EVICT",
    "Move",
    "MoveEvaluator",
    "MoveRecord",
    "RESOLVE_ONLY",
    "STATIC",
    "chunk_drift",
    "fresh_weighted_access_cost",
    "price_pair",
    "rebuild_chunk_placement",
    "replica_transfer_cost",
    "run_adaptive",
    "weighted_access_cost",
]
