"""Bounded local placement repair: cache/evict deltas that provably pay.

The cheap half of the adaptive control loop.  Where a re-solve runs a
full Algorithm-1 iteration, a *move* changes one ``(node, chunk)`` cell
of the placement — add a replica where demand appeared, drop one where
it vanished — and is accepted only when it **provably never worsens**
demand-weighted total cost:

    accept  ⇔  cost(before) − cost(after)  >  transfer + min_gain

where ``cost`` is the expected per-epoch access cost
(:func:`weighted_access_cost`: each observed ``(client, chunk)`` demand
weight times the cheapest Path Contention Cost among the chunk's
holders and the producer) and ``transfer`` is the one-time Eq. 2 cost of
shipping the new replica from its cheapest source.  Eviction can also
*reduce* access cost — Eq. 2 scales with occupancy ``S(k)``, so an
unused replica inflates every path through its host — which is why both
directions are evaluated, never assumed.

Candidate moves are applied tentatively against the live
:class:`~repro.core.problem.ProblemState` (the PR 3 incremental
:class:`~repro.core.costs.CostModel` delta-patches its rows), re-priced
only over the pairs the touched node can affect
(:meth:`~repro.core.costs.CostModel.affected_targets` bounds the dirty
region), and reverted if the gain test fails.  Under ``REPRO_SANITIZE=1``
the controller cross-checks every *accepted* move against a fresh cost
model (:func:`repro.analysis.contracts.check_adaptive_move`).

All candidate enumeration and float accumulation runs in sorted
``(chunk, str(client))`` order — two runs produce bit-identical
decisions and totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.core.commit import nearest_server_assignment
from repro.core.costs import CostModel
from repro.core.placement import ChunkPlacement, StageCost, edge_key
from repro.core.problem import ProblemState
from repro.errors import ProblemError
from repro.graphs.steiner import steiner_tree

Node = Hashable

#: Demand key: (client node, chunk id) — matches the signal layer.
PairKey = Tuple[Node, int]

MOVE_CACHE = "cache"
MOVE_EVICT = "evict"

#: Minimum strictly-positive gain a move must clear; filters float fuzz.
DEFAULT_MIN_GAIN = 1e-9


@dataclass(frozen=True)
class Move:
    """One accepted placement delta."""

    kind: str
    node: Node
    chunk: int
    gain: float
    transfer_cost: float


def price_pair(
    costs: CostModel, producer: Node, holders: Sequence[Node], client: Node
) -> float:
    """Cheapest access cost for ``client`` among ``holders ∪ {producer}``.

    A client that itself holds the chunk pays 0 (``c_ii = 0``).
    """
    best = costs.contention_cost(producer, client)
    for server in holders:
        cost = costs.contention_cost(server, client)
        if cost < best:
            best = cost
    return best


def weighted_access_cost(
    costs: CostModel,
    producer: Node,
    holders_by_chunk: Mapping[int, Sequence[Node]],
    weights: Mapping[PairKey, float],
) -> float:
    """Expected access cost: ``Σ w(client, chunk) · cheapest c_ij``.

    Summed in sorted ``(chunk, str(client))`` order so the float result
    is bit-stable for a given demand/placement pair.
    """
    total = 0.0
    for key in sorted(weights, key=lambda k: (k[1], str(k[0]))):
        weight = weights[key]
        if weight <= 0.0:
            continue
        client, chunk = key
        total += weight * price_pair(
            costs, producer, holders_by_chunk.get(chunk, ()), client
        )
    return total


def fresh_weighted_access_cost(
    state: ProblemState,
    holders_by_chunk: Mapping[int, Sequence[Node]],
    weights: Mapping[PairKey, float],
) -> float:
    """:func:`weighted_access_cost` from a *fresh* cost model.

    The sanitizer's reference value: rebuilt from the current storage
    with no incremental patches, summed in the same order.
    """
    fresh = CostModel(
        state.problem.graph, state.storage, state.problem.path_policy
    )
    return weighted_access_cost(
        fresh, state.problem.producer, holders_by_chunk, weights
    )


def replica_transfer_cost(
    state: ProblemState, holders: Sequence[Node], node: Node
) -> float:
    """One-time cost of shipping a new replica to ``node``.

    The cheapest Path Contention Cost from any current holder or the
    producer — priced *before* the move lands (the transfer happens on
    the pre-move network).
    """
    return price_pair(state.costs, state.problem.producer, holders, node)


def rebuild_chunk_placement(state: ProblemState, chunk: int) -> ChunkPlacement:
    """A :class:`ChunkPlacement` reflecting the live storage for ``chunk``.

    Used after moves/re-solves mutate holders outside the commit path:
    nearest-server assignment and the dissemination Steiner tree are
    rebuilt from the current state.  The stage ``fairness`` is recorded
    as 0 — fairness cost is a placement-*time* price (Eq. 1 before the
    chunk lands) and has no meaningful post-hoc value; ``access`` and
    ``dissemination`` are priced on the current costs.
    """
    problem = state.problem
    holders = sorted(state.storage.holders(chunk), key=str)
    assignment = nearest_server_assignment(state, holders)
    tree_edges: frozenset = frozenset()
    dissemination = 0.0
    if holders:
        weighted = state.costs.contention_weighted_graph()
        tree = steiner_tree(weighted, [problem.producer] + holders)
        tree_edges = frozenset(edge_key(u, v) for u, v, _ in tree.edges())
        ordered = sorted(
            tree_edges, key=lambda key: tuple(sorted(map(repr, key)))
        )
        dissemination = sum(
            state.costs.edge_cost(*tuple(key)) for key in ordered
        )
    access = sum(
        state.costs.contention_cost(assignment[client], client)
        for client in sorted(assignment, key=str)
    )
    return ChunkPlacement(
        chunk=chunk,
        caches=frozenset(holders),
        assignment=assignment,
        tree_edges=tree_edges,
        stage_cost=StageCost(
            fairness=0.0, access=access, dissemination=dissemination
        ),
    )


class MoveEvaluator:
    """Prices a placement against demand weights and trials moves on it.

    Owns the canonical per-chunk holder lists (sorted by ``str``) and an
    incrementally-maintained price per weighted ``(client, chunk)``
    pair.  :meth:`try_move` tentatively applies a move to the live
    ``state`` — mutating storage and letting the incremental cost model
    patch itself — re-prices only the affected pairs, and either keeps
    the move or reverts it.  The caller reads accepted holder lists
    back from :attr:`holders`.
    """

    def __init__(
        self,
        state: ProblemState,
        holders_by_chunk: Mapping[int, Sequence[Node]],
        weights: Mapping[PairKey, float],
        min_gain: float = DEFAULT_MIN_GAIN,
    ) -> None:
        if min_gain < 0:
            raise ProblemError(f"min_gain must be >= 0, got {min_gain}")
        self.state = state
        self.producer = state.problem.producer
        self.min_gain = min_gain
        self.holders: Dict[int, List[Node]] = {
            chunk: sorted(holders_by_chunk[chunk], key=str)
            for chunk in sorted(holders_by_chunk)
        }
        self.weights: Dict[PairKey, float] = {
            key: float(value)
            for key, value in weights.items()
            if value > 0.0
        }
        self._clients_by_chunk: Dict[int, List[Node]] = {}
        for client, chunk in sorted(
            self.weights, key=lambda k: (k[1], str(k[0]))
        ):
            self._clients_by_chunk.setdefault(chunk, []).append(client)
        # (server, via) → affected targets; under "hops" this is pure
        # topology, so it is safe to memoize across moves.
        self._affected_memo: Dict[Tuple[Node, Node], frozenset] = {}
        self._prices: Dict[PairKey, float] = {}
        self.total = 0.0
        for chunk in sorted(self._clients_by_chunk):
            for client in self._clients_by_chunk[chunk]:
                price = price_pair(
                    state.costs,
                    self.producer,
                    self.holders.get(chunk, ()),
                    client,
                )
                self._prices[(client, chunk)] = price
                self.total += self.weights[(client, chunk)] * price

    # ------------------------------------------------------------------
    def _affected(self, server: Node, via: Node) -> frozenset:
        key = (server, via)
        hit = self._affected_memo.get(key)
        if hit is None:
            hit = self.state.costs.affected_targets(server, via)
            self._affected_memo[key] = hit
        return hit

    def _affected_pairs(self, node: Node, chunk: int) -> List[PairKey]:
        """Weighted pairs whose price a move at ``(node, chunk)`` can touch.

        The moved chunk re-prices for every weighted client (its server
        set changed).  Any other chunk re-prices only for clients whose
        path from some current server passes through ``node`` — the
        dirty region :meth:`CostModel.affected_targets` bounds.
        """
        pairs: List[PairKey] = []
        for other in sorted(self._clients_by_chunk):
            clients = self._clients_by_chunk[other]
            if other == chunk:
                pairs.extend((client, other) for client in clients)
                continue
            touched: set = set()
            for server in [self.producer] + self.holders.get(other, []):
                touched |= self._affected(server, node)
            pairs.extend(
                (client, other) for client in clients if client in touched
            )
        return pairs

    def try_move(
        self, kind: str, node: Node, chunk: int, transfer_cost: float
    ) -> Optional[Move]:
        """Trial one move; keep it only if it clears the gain test.

        Returns the accepted :class:`Move` (state and holder lists
        updated), or ``None`` — in which case the tentative mutation has
        been fully reverted and the tracked prices are untouched.
        """
        state = self.state
        holders = self.holders.get(chunk, [])
        if kind == MOVE_CACHE:
            if (
                node in holders
                or node == self.producer
                or not state.can_cache(node)
            ):
                return None
        elif kind == MOVE_EVICT:
            if node not in holders:
                return None
        else:
            raise ProblemError(f"unknown move kind {kind!r}")

        affected = self._affected_pairs(node, chunk)
        # Tentative apply: storage mutates, the incremental cost model
        # patches its rows for the single dirty node.
        if kind == MOVE_CACHE:
            state.cache(node, chunk)
            self.holders[chunk] = sorted(holders + [node], key=str)
        else:
            state.evict(node, chunk)
            self.holders[chunk] = [h for h in holders if h != node]

        delta = 0.0
        new_prices: List[Tuple[PairKey, float]] = []
        for pair in affected:
            client, pair_chunk = pair
            price = price_pair(
                state.costs,
                self.producer,
                self.holders.get(pair_chunk, ()),
                client,
            )
            new_prices.append((pair, price))
            delta += self.weights[pair] * (price - self._prices[pair])

        gain = -delta - transfer_cost
        if gain > self.min_gain:
            for pair, price in new_prices:
                self._prices[pair] = price
            self.total += delta
            return Move(
                kind=kind,
                node=node,
                chunk=chunk,
                gain=gain,
                transfer_cost=transfer_cost,
            )

        # Revert: undo the storage mutation (the cost model re-patches
        # back) and restore the holder list.
        if kind == MOVE_CACHE:
            state.evict(node, chunk)
        else:
            state.cache(node, chunk)
        self.holders[chunk] = holders
        return None
