"""Adaptive control policies: what to do about a dirty chunk.

The controller measures per-chunk demand drift each epoch
(:func:`repro.adaptive.signals.chunk_drift`) and classifies chunks
against two thresholds:

* drift < ``dirty_threshold`` — clean: the placement still matches
  demand; never touched (the quiescence invariant rides on this).
* ``dirty_threshold`` ≤ drift < ``resolve_threshold`` — *moderately*
  dirty: worth bounded local repair (cache/evict moves that provably
  never worsen cost, :mod:`repro.adaptive.moves`).
* drift ≥ ``resolve_threshold`` — *heavily* dirty: local repair is
  unlikely to catch up, so the chunk is re-solved from scratch with one
  Algorithm-1 iteration (:func:`repro.online.reoptimize_chunk`).

An :class:`AdaptivePolicy` decides which of the two mechanisms are
armed; the four registered policies are the full ablation grid.
``static`` observes but never acts — the experimental control arm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Classification outcomes for one chunk in one epoch.
ACTION_NONE = "none"
ACTION_MOVES = "moves"
ACTION_RESOLVE = "resolve"


@dataclass(frozen=True)
class AdaptivePolicy:
    """Arms the local-move and/or re-solve mechanisms."""

    name: str
    use_moves: bool
    use_resolve: bool

    def classify(
        self,
        drift: float,
        dirty_threshold: float,
        resolve_threshold: float,
    ) -> str:
        """Map one chunk's drift to the action this policy takes."""
        if self.use_resolve and drift >= resolve_threshold:
            return ACTION_RESOLVE
        if self.use_moves and drift >= dirty_threshold:
            return ACTION_MOVES
        return ACTION_NONE


STATIC = AdaptivePolicy(name="static", use_moves=False, use_resolve=False)
MOVES_ONLY = AdaptivePolicy(name="moves-only", use_moves=True, use_resolve=False)
RESOLVE_ONLY = AdaptivePolicy(
    name="resolve-only", use_moves=False, use_resolve=True
)
HYBRID = AdaptivePolicy(name="hybrid", use_moves=True, use_resolve=True)

#: CLI name → policy (``repro adapt --policy`` / ``repro list``).
ADAPTIVE_POLICIES: Dict[str, AdaptivePolicy] = {
    policy.name: policy
    for policy in (STATIC, MOVES_ONLY, RESOLVE_ONLY, HYBRID)
}
