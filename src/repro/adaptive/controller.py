"""The closed control loop: serve → demand signal → re-optimize → serve.

:class:`AdaptiveController` runs epoch-based control over one continuous
workload stream:

1. **Bootstrap** — one-shot Algorithm 1 places every chunk; the result
   is both the live starting placement and the frozen *static* baseline
   the run is scored against.
2. **Serve an epoch** — requests ``[k·R, (k+1)·R)`` of the stream replay
   against the current placement (:class:`~repro.serve.engine.ServeEngine`
   with the epoch ``skip_requests`` hook); the engine exports raw
   per-``(client, chunk)`` demand counts.
3. **Estimate & compare** — counts fold into an EWMA of the joint
   request distribution (:mod:`repro.adaptive.signals`).  After
   ``warmup_epochs`` of observation the estimate is frozen as the
   *reference* — the demand the current placement is considered
   optimized for.  Each later epoch the per-chunk drift between the
   live estimate and the reference classifies chunks clean / moderately
   dirty / heavily dirty (:mod:`repro.adaptive.policy`).
4. **Re-optimize** — moderately dirty chunks get bounded local moves
   that provably never worsen demand-weighted cost
   (:mod:`repro.adaptive.moves`, sanitizer-checked); heavily dirty
   chunks get a scoped Algorithm-1 re-solve through
   :func:`repro.online.reoptimize_chunk` (reverted wholesale if it
   fails to improve the demand-weighted cost).  Acting on a chunk
   re-anchors its reference row — the placement is now optimized for
   *current* demand.

**Quiescence invariant**: under a stationary workload every drift stays
below ``dirty_threshold``, no chunk is ever touched, and the final
placement is the bit-identical one-shot Algorithm 1 output (the original
:class:`~repro.core.placement.ChunkPlacement` objects, zero moves).

**Accounting** is all-in: each epoch's observed demand is priced under
the adaptive and the frozen static placement (same counts, same Eq. 2
costs), and the adaptive side additionally pays every replica transfer
and re-solve dissemination (scaled by the paper's ``M``).  Node churn —
``churn_schedule`` wipes a node's cache at an epoch boundary, modelling
a device leaving and rejoining empty — hits both sides equally; only the
adaptive side may re-optimize afterwards.

Determinism: the workload stream, the serve engine, the EWMA, candidate
enumeration, and every float accumulation are seeded/sorted, so one
configuration always produces byte-identical
:class:`~repro.adaptive.report.AdaptiveReport` JSON.  Batteries are not
supported (move revert cannot refund drained energy).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Hashable, List, Optional, Tuple, Union

from repro.analysis import contracts
from repro.core.approximation import ApproximationConfig, solve_approximation
from repro.core.costs import CostModel
from repro.core.placement import CachePlacement, ChunkPlacement
from repro.core.problem import CachingProblem, ProblemState
from repro.errors import InvariantError, ProblemError
from repro.obs import get_recorder, get_tracer
from repro.online.controller import reoptimize_chunk
from repro.online.replacement import REPLACEMENT_POLICIES
from repro.serve.engine import (
    ServeConfig,
    ServeEngine,
    _sanitize_serve_equivalence,
)
from repro.serve.stats import ServeReport
from repro.serve.workloads import Workload
from repro.adaptive.moves import (
    DEFAULT_MIN_GAIN,
    MOVE_CACHE,
    MOVE_EVICT,
    MoveEvaluator,
    fresh_weighted_access_cost,
    rebuild_chunk_placement,
    replica_transfer_cost,
    weighted_access_cost,
)
from repro.adaptive.policy import (
    ACTION_MOVES,
    ACTION_NONE,
    ACTION_RESOLVE,
    ADAPTIVE_POLICIES,
    AdaptivePolicy,
)
from repro.adaptive.report import AdaptiveReport, EpochRecord, MoveRecord
from repro.adaptive.signals import (
    DemandEstimator,
    DemandSnapshot,
    chunk_drift,
)

Node = Hashable

ALGORITHM_NAME = "adaptive"


@dataclass(frozen=True)
class AdaptiveConfig:
    """Control-loop knobs (all deterministic; see ``docs/ADAPTIVE.md``).

    Parameters
    ----------
    epochs / epoch_requests:
        The loop serves ``epochs`` consecutive windows of
        ``epoch_requests`` requests from one continuous workload stream.
    policy:
        Which re-optimization mechanisms are armed: a name from
        :data:`~repro.adaptive.policy.ADAPTIVE_POLICIES` or an
        :class:`~repro.adaptive.policy.AdaptivePolicy`.
    warmup_epochs:
        Observation-only epochs before the demand reference is frozen.
        At least 1 — the reference *is* the quiescence anchor.
    ewma_alpha:
        Smoothing of the demand estimator (1 = trust only the last
        epoch).
    dirty_threshold / resolve_threshold:
        Per-chunk drift levels (see :func:`~repro.adaptive.signals.chunk_drift`)
        at which a chunk becomes move-eligible / re-solve-eligible.
    max_moves_per_epoch / max_cache_candidates:
        Bounds on the local-move phase: accepted moves per epoch, and
        replica-add candidates tried per dirty chunk.
    min_gain:
        Strictly-positive demand-weighted saving a move must clear.
    selection_policy:
        Replica-selection policy the serve engine replays under.
    serve:
        Base engine knobs; the controller overrides ``skip_requests``
        (epoch windowing) and ``record_demand`` per epoch.
    approx:
        Algorithm 1 configuration for the bootstrap solve and every
        scoped re-solve.
    replacement:
        Replacement policy name (``repro.online``) used when a re-solve
        needs room.
    churn_schedule:
        ``(epoch, node)`` pairs: at that epoch's start the node's cache
        is wiped on both the adaptive and the static side.
    """

    epochs: int = 6
    epoch_requests: int = 1000
    policy: Union[str, AdaptivePolicy] = "hybrid"
    warmup_epochs: int = 1
    ewma_alpha: float = 0.5
    dirty_threshold: float = 0.1
    resolve_threshold: float = 0.3
    max_moves_per_epoch: int = 4
    max_cache_candidates: int = 3
    min_gain: float = DEFAULT_MIN_GAIN
    selection_policy: str = "cheapest"
    serve: ServeConfig = ServeConfig()
    approx: ApproximationConfig = ApproximationConfig()
    replacement: str = "oldest-first"
    churn_schedule: Tuple[Tuple[int, Node], ...] = ()

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ProblemError(f"epochs must be >= 1, got {self.epochs}")
        if self.epoch_requests < 0:
            raise ProblemError(
                f"epoch_requests must be >= 0, got {self.epoch_requests}"
            )
        if not 1 <= self.warmup_epochs <= self.epochs:
            raise ProblemError(
                f"warmup_epochs must be in [1, epochs], got "
                f"{self.warmup_epochs}"
            )
        if isinstance(self.policy, str) and self.policy not in ADAPTIVE_POLICIES:
            raise ProblemError(
                f"unknown adaptive policy {self.policy!r} "
                f"(choose from {sorted(ADAPTIVE_POLICIES)})"
            )
        if not 0.0 <= self.dirty_threshold <= self.resolve_threshold:
            raise ProblemError(
                "thresholds must satisfy 0 <= dirty_threshold <= "
                f"resolve_threshold, got {self.dirty_threshold} / "
                f"{self.resolve_threshold}"
            )
        if self.max_moves_per_epoch < 0:
            raise ProblemError("max_moves_per_epoch must be >= 0")
        if self.max_cache_candidates < 1:
            raise ProblemError("max_cache_candidates must be >= 1")
        if self.min_gain < 0:
            raise ProblemError("min_gain must be >= 0")
        if self.replacement not in REPLACEMENT_POLICIES:
            raise ProblemError(
                f"unknown replacement policy {self.replacement!r} "
                f"(choose from {sorted(REPLACEMENT_POLICIES)})"
            )
        for entry in self.churn_schedule:
            if len(entry) != 2 or entry[0] < 0:
                raise ProblemError(
                    f"churn_schedule entries are (epoch >= 0, node), "
                    f"got {entry!r}"
                )

    def resolved_policy(self) -> AdaptivePolicy:
        if isinstance(self.policy, AdaptivePolicy):
            return self.policy
        return ADAPTIVE_POLICIES[self.policy]


class AdaptiveController:
    """One closed-loop run over a problem and a workload stream.

    Build it, call :meth:`run`, read the
    :class:`~repro.adaptive.report.AdaptiveReport`; the final placement
    stays on :attr:`final_placement` for inspection.
    """

    def __init__(
        self,
        problem: CachingProblem,
        workload: Workload,
        config: Optional[AdaptiveConfig] = None,
    ) -> None:
        if problem.battery_capacity is not None:
            raise ProblemError(
                "the adaptive controller does not support battery-"
                "constrained problems (move reverts cannot refund "
                "drained energy)"
            )
        self.problem = problem
        self.workload = workload
        self.config = config or AdaptiveConfig()
        self.policy = self.config.resolved_policy()
        self.replacement = REPLACEMENT_POLICIES[self.config.replacement]()
        for epoch, node in self.config.churn_schedule:
            if node not in problem.graph:
                raise ProblemError(f"churn node {node!r} is not in the graph")
            if node == problem.producer:
                raise ProblemError("cannot churn the producer")
        self.final_placement: Optional[CachePlacement] = None
        self.baseline_placement: Optional[CachePlacement] = None
        #: The last epoch's ServeReport (the steady state after
        #: adaptation; what sweep adaptive cells aggregate).
        self.last_serve_report: Optional[ServeReport] = None

    # ------------------------------------------------------------------
    def run(self) -> AdaptiveReport:
        """Run the full loop; returns the accumulated report."""
        obs = get_recorder()
        trace = get_tracer()
        config = self.config
        problem = self.problem
        with trace.span(
            "adaptive.session",
            track="adaptive",
            args=(
                {
                    "workload": self.workload.name,
                    "policy": self.policy.name,
                    "epochs": config.epochs,
                    "epoch_requests": config.epoch_requests,
                }
                if trace.enabled
                else None
            ),
        ), obs.timer("adaptive.session"):
            return self._run(obs, trace)

    def _run(self, obs, trace) -> AdaptiveReport:
        config = self.config
        problem = self.problem
        producer = problem.producer

        # 1. Bootstrap: one-shot Algorithm 1 is both the starting
        # placement and the frozen static baseline.
        baseline = solve_approximation(problem, config.approx)
        self.baseline_placement = baseline
        chunks: List[ChunkPlacement] = list(baseline.chunks)

        # Live state mirrors the placement; replay in sorted order so
        # the storage (and hence the incremental cost model) is
        # reproducible node by node.
        state = problem.new_state()
        for placement in chunks:
            for node in sorted(placement.caches, key=str):
                state.cache(node, placement.chunk)
        state.drain_dirty_nodes()

        # Static baseline: frozen holders + its own cost model.  Only
        # churn ever mutates it.
        static_storage = baseline.final_storage()
        static_costs = CostModel(
            problem.graph, static_storage, problem.path_policy
        )
        static_holders: Dict[int, List[Node]] = {
            placement.chunk: sorted(placement.caches, key=str)
            for placement in chunks
        }

        estimator = DemandEstimator(config.ewma_alpha)
        reference: Optional[DemandSnapshot] = None

        epoch_records: List[EpochRecord] = []
        move_records: List[MoveRecord] = []
        accumulated_adaptive = 0.0
        accumulated_static = 0.0
        total_adaptation = 0.0
        total_moves = 0
        total_resolves = 0
        series_on = obs.series_enabled
        forced_dirty: set = set()

        for epoch in range(config.epochs):
            with trace.span(
                "adaptive.epoch",
                track="adaptive",
                args={"epoch": epoch} if trace.enabled else None,
            ):
                obs.count("adaptive.epochs")
                churned, damaged = self._apply_churn(
                    epoch, state, chunks, static_storage, static_costs,
                    static_holders, obs,
                )
                # Churn is placement damage, not demand drift: force the
                # wiped chunks into the next control step regardless of
                # their drift so the adaptive side can repair them.
                forced_dirty |= damaged

                report, counts = self._serve_epoch(epoch, chunks)
                self.last_serve_report = report

                # Price this epoch's actual demand under both placements.
                holders_map = {
                    placement.chunk: sorted(placement.caches, key=str)
                    for placement in chunks
                }
                adaptive_cost = weighted_access_cost(
                    state.costs, producer, holders_map, counts
                )
                static_cost = weighted_access_cost(
                    static_costs, producer, static_holders, counts
                )

                estimator.update(counts)
                if (
                    reference is None
                    and estimator.epochs_observed >= config.warmup_epochs
                ):
                    reference = estimator.snapshot()

                stats = _AdaptStats()
                if (
                    reference is not None
                    and epoch < config.epochs - 1
                    and (self.policy.use_moves or self.policy.use_resolve)
                ):
                    reference = self._adapt(
                        epoch, state, chunks, estimator, reference,
                        move_records, stats, forced_dirty, obs, trace,
                    )
                    forced_dirty = set()

                dirty_nodes = state.drain_dirty_nodes()
                obs.gauge("adaptive.dirty_nodes", len(dirty_nodes))
                if contracts.sanitize_enabled():
                    self._check_holders(state, chunks)

                accumulated_adaptive += adaptive_cost + stats.adaptation_cost
                accumulated_static += static_cost
                total_adaptation += stats.adaptation_cost
                total_moves += stats.moves_accepted
                total_resolves += stats.resolves
                if series_on:
                    t = float(epoch)
                    obs.series_point("adaptive.cost.adaptive", t, adaptive_cost)
                    obs.series_point("adaptive.cost.static", t, static_cost)
                    obs.series_point("adaptive.drift_max", t, stats.drift_max)

                epoch_records.append(
                    EpochRecord(
                        epoch=epoch,
                        requests=report.completed,
                        adaptive_cost=adaptive_cost,
                        static_cost=static_cost,
                        adaptation_cost=stats.adaptation_cost,
                        served_gini=report.served_gini,
                        drift_max=stats.drift_max,
                        dirty_chunks=stats.dirty_chunks,
                        moves_considered=stats.moves_considered,
                        moves_accepted=stats.moves_accepted,
                        resolves=stats.resolves,
                        resolves_reverted=stats.resolves_reverted,
                        churned_nodes=churned,
                    )
                )

        self.final_placement = CachePlacement(
            problem=problem, chunks=list(chunks), algorithm=ALGORITHM_NAME
        )
        return AdaptiveReport(
            workload=self.workload.name,
            adaptive_policy=self.policy.name,
            selection_policy=config.selection_policy,
            algorithm=ALGORITHM_NAME,
            epochs=config.epochs,
            epoch_requests=config.epoch_requests,
            warmup_epochs=config.warmup_epochs,
            accumulated_adaptive_cost=accumulated_adaptive,
            accumulated_static_cost=accumulated_static,
            total_adaptation_cost=total_adaptation,
            total_moves=total_moves,
            total_resolves=total_resolves,
            final_copies=self.final_placement.total_copies(),
            epoch_records=tuple(epoch_records),
            move_records=tuple(move_records),
        )

    # ------------------------------------------------------------------
    def _serve_epoch(
        self, epoch: int, chunks: List[ChunkPlacement]
    ) -> Tuple[ServeReport, Dict[Tuple[Node, int], int]]:
        """Replay epoch ``epoch``'s request window; export its demand."""
        config = self.config
        placement = CachePlacement(
            problem=self.problem, chunks=list(chunks),
            algorithm=ALGORITHM_NAME,
        )
        serve_config = replace(
            config.serve,
            skip_requests=(
                config.serve.skip_requests + epoch * config.epoch_requests
            ),
            record_demand=True,
        )
        engine = ServeEngine(
            placement,
            self.workload,
            config.epoch_requests,
            policy=config.selection_policy,
            config=serve_config,
        )
        report = engine.run()
        # Same REPRO_SANITIZE cross-check serve_placement() runs: the
        # batched epoch replay must match the per-request reference.
        _sanitize_serve_equivalence(
            report, placement, self.workload, config.epoch_requests,
            config.selection_policy, serve_config,
        )
        return report, engine.demand_counts()

    def _apply_churn(
        self,
        epoch: int,
        state: ProblemState,
        chunks: List[ChunkPlacement],
        static_storage,
        static_costs: CostModel,
        static_holders: Dict[int, List[Node]],
        obs,
    ) -> Tuple[Tuple[str, ...], set]:
        """Wipe scheduled nodes' caches on both sides, fairly.

        Returns the churned node labels and the set of chunks that lost
        a replica on the adaptive side (the placement damage the next
        control step must consider regardless of demand drift).
        """
        nodes = [
            node for when, node in self.config.churn_schedule if when == epoch
        ]
        if not nodes:
            return (), set()
        churned: List[str] = []
        affected: set = set()
        evictions = 0
        for node in nodes:
            for chunk in sorted(state.storage.chunks_at(node)):
                state.evict(node, chunk)
                affected.add(chunk)
                evictions += 1
            static_lost = sorted(static_storage.chunks_at(node))
            for chunk in static_lost:
                static_storage.remove(node, chunk)
                static_holders[chunk] = [
                    h for h in static_holders[chunk] if h != node
                ]
            if static_lost:
                static_costs.invalidate(dirty_nodes=(node,))
            churned.append(str(node))
        for chunk in sorted(affected):
            chunks[chunk] = rebuild_chunk_placement(state, chunk)
        obs.count("adaptive.churn_evictions", evictions)
        return tuple(churned), affected

    # ------------------------------------------------------------------
    def _adapt(
        self,
        epoch: int,
        state: ProblemState,
        chunks: List[ChunkPlacement],
        estimator: DemandEstimator,
        reference: DemandSnapshot,
        move_records: List[MoveRecord],
        stats: "_AdaptStats",
        forced_dirty: set,
        obs,
        trace,
    ) -> DemandSnapshot:
        """One control step: classify drift, re-solve, then local moves.

        ``forced_dirty`` chunks (churn-damaged placements) are escalated
        to the strongest armed action even when their demand drift is
        below threshold.
        """
        config = self.config
        problem = self.problem
        snapshot = estimator.snapshot()
        drift = chunk_drift(snapshot, reference, problem.num_chunks)
        stats.drift_max = max(drift.values(), default=0.0)

        actions = {
            chunk: self.policy.classify(
                drift[chunk], config.dirty_threshold, config.resolve_threshold
            )
            for chunk in range(problem.num_chunks)
        }
        for chunk in sorted(forced_dirty):
            if actions.get(chunk) == ACTION_NONE:
                if self.policy.use_resolve:
                    actions[chunk] = ACTION_RESOLVE
                elif self.policy.use_moves:
                    actions[chunk] = ACTION_MOVES
        # Heaviest drift first; chunk id breaks ties deterministically.
        resolve_chunks = sorted(
            (c for c, a in actions.items() if a == ACTION_RESOLVE),
            key=lambda c: (-drift[c], c),
        )
        move_chunks = sorted(
            (c for c, a in actions.items() if a == ACTION_MOVES),
            key=lambda c: (-drift[c], c),
        )
        stats.dirty_chunks = len(resolve_chunks) + len(move_chunks)
        obs.count("adaptive.dirty_chunks", stats.dirty_chunks)

        weights = snapshot.weights(float(config.epoch_requests))

        for chunk in resolve_chunks:
            reference = self._resolve_chunk(
                epoch, state, chunks, chunk, weights, snapshot, reference,
                stats, obs, trace,
            )
        if move_chunks and config.max_moves_per_epoch > 0:
            reference = self._move_phase(
                epoch, state, chunks, move_chunks, weights, snapshot,
                reference, move_records, stats, obs, trace,
            )
        return reference

    def _resolve_chunk(
        self,
        epoch: int,
        state: ProblemState,
        chunks: List[ChunkPlacement],
        chunk: int,
        weights,
        snapshot: DemandSnapshot,
        reference: DemandSnapshot,
        stats: "_AdaptStats",
        obs,
        trace,
    ) -> DemandSnapshot:
        """Scoped Algorithm-1 re-solve of one heavily-drifted chunk.

        Reverted wholesale (including any replacement-policy victims)
        when the fresh placement fails to improve the demand-weighted
        access cost — the dual ascent optimizes the fairness objective,
        not observed demand, so the guard keeps re-solves monotonic too.
        """
        problem = self.problem
        producer = problem.producer
        num_chunks = problem.num_chunks
        before_holders = {
            c: sorted(state.storage.holders(c), key=str)
            for c in range(num_chunks)
        }
        before = weighted_access_cost(
            state.costs, producer, before_holders, weights
        )
        for node in before_holders[chunk]:
            state.evict(node, chunk)
        result = reoptimize_chunk(
            state,
            chunk,
            self.config.approx,
            policy=self.replacement,
            publish_order={c: c for c in range(num_chunks)},
        )
        after_holders = {
            c: sorted(state.storage.holders(c), key=str)
            for c in range(num_chunks)
        }
        after = weighted_access_cost(
            state.costs, producer, after_holders, weights
        )
        stats.resolves += 1
        obs.count("adaptive.resolves")
        improved = after < before - self.config.min_gain
        if improved:
            dissemination = (
                result.placement.stage_cost.dissemination
                * problem.dissemination_scale
            )
            stats.adaptation_cost += dissemination
            chunks[chunk] = result.placement
            for other in range(num_chunks):
                if other != chunk and (
                    after_holders[other] != before_holders[other]
                ):
                    # A replacement victim changed this chunk too.
                    chunks[other] = rebuild_chunk_placement(state, other)
        else:
            # Restore every chunk's holders exactly (replacement victims
            # included); the placement objects were never swapped.
            for c in range(num_chunks):
                current = set(state.storage.holders(c))
                wanted = set(before_holders[c])
                for node in sorted(current - wanted, key=str):
                    state.evict(node, c)
                for node in sorted(wanted - current, key=str):
                    state.cache(node, c)
            stats.resolves_reverted += 1
            obs.count("adaptive.resolves_reverted")
        if trace.enabled:
            trace.instant(
                "adaptive.resolve",
                track="adaptive",
                args={
                    "epoch": epoch,
                    "chunk": chunk,
                    "accepted": improved,
                    "cost_before": before,
                    "cost_after": after,
                },
            )
        # Either way the optimizer had its shot at current demand:
        # re-anchor the reference so the chunk does not thrash.
        return _rebase_reference(reference, snapshot, chunk)

    def _move_phase(
        self,
        epoch: int,
        state: ProblemState,
        chunks: List[ChunkPlacement],
        move_chunks: List[int],
        weights,
        snapshot: DemandSnapshot,
        reference: DemandSnapshot,
        move_records: List[MoveRecord],
        stats: "_AdaptStats",
        obs,
        trace,
    ) -> DemandSnapshot:
        """Bounded never-worsen local moves on moderately-drifted chunks."""
        config = self.config
        problem = self.problem
        holders_map = {
            placement.chunk: list(placement.caches) for placement in chunks
        }
        evaluator = MoveEvaluator(
            state, holders_map, weights, min_gain=config.min_gain
        )
        sanitize = contracts.sanitize_enabled()
        fresh_prev = (
            fresh_weighted_access_cost(state, evaluator.holders, weights)
            if sanitize
            else 0.0
        )
        changed: set = set()
        for chunk in move_chunks:
            if stats.moves_accepted >= config.max_moves_per_epoch:
                break
            for kind, node, transfer in self._candidates(
                state, evaluator, snapshot, chunk
            ):
                if stats.moves_accepted >= config.max_moves_per_epoch:
                    break
                stats.moves_considered += 1
                obs.count("adaptive.moves_considered")
                tracked_before = evaluator.total
                move = evaluator.try_move(kind, node, chunk, transfer)
                if move is None:
                    continue
                stats.moves_accepted += 1
                stats.adaptation_cost += move.transfer_cost
                changed.add(chunk)
                obs.count("adaptive.moves_accepted")
                move_records.append(
                    MoveRecord(
                        epoch=epoch,
                        kind=move.kind,
                        node=str(move.node),
                        chunk=move.chunk,
                        gain=move.gain,
                        transfer_cost=move.transfer_cost,
                    )
                )
                if trace.enabled:
                    trace.instant(
                        "adaptive.move",
                        track="adaptive",
                        args={
                            "epoch": epoch,
                            "kind": move.kind,
                            "node": str(move.node),
                            "chunk": move.chunk,
                            "gain": move.gain,
                        },
                    )
                if sanitize:
                    fresh_after = fresh_weighted_access_cost(
                        state, evaluator.holders, weights
                    )
                    contracts.check_adaptive_move(
                        move=move.kind,
                        node=str(move.node),
                        chunk=move.chunk,
                        tracked_before=tracked_before,
                        tracked_after=evaluator.total,
                        fresh_before=fresh_prev,
                        fresh_after=fresh_after,
                        transfer_cost=move.transfer_cost,
                        context=f"adaptive epoch {epoch}",
                    )
                    fresh_prev = fresh_after
        for chunk in sorted(changed):
            chunks[chunk] = rebuild_chunk_placement(state, chunk)
            reference = _rebase_reference(reference, snapshot, chunk)
        return reference

    def _candidates(
        self,
        state: ProblemState,
        evaluator: MoveEvaluator,
        snapshot: DemandSnapshot,
        chunk: int,
    ) -> List[Tuple[str, Node, float]]:
        """Deterministic candidate moves for one dirty chunk.

        Replica adds first (top estimated-demand clients that can still
        cache), then evicts (current holders, least-demanded first).
        Transfer costs are priced on the pre-move network, scaled by the
        paper's ``M`` (a replica shipment is a chunk transfer).
        """
        config = self.config
        scale = self.problem.dissemination_scale
        holders = evaluator.holders.get(chunk, [])
        holder_set = set(holders)
        demand = snapshot.chunk_clients(chunk)
        adds = [
            (client, share)
            for client, share in demand
            if client not in holder_set
            and client != self.problem.producer
            and state.can_cache(client)
        ]
        adds.sort(key=lambda item: (-item[1], str(item[0])))
        candidates: List[Tuple[str, Node, float]] = []
        for client, _ in adds[: config.max_cache_candidates]:
            transfer = replica_transfer_cost(state, holders, client) * scale
            candidates.append((MOVE_CACHE, client, transfer))
        evicts = sorted(
            holders,
            key=lambda node: (snapshot.share(node, chunk), str(node)),
        )
        candidates.extend((MOVE_EVICT, node, 0.0) for node in evicts)
        return candidates

    # ------------------------------------------------------------------
    @staticmethod
    def _check_holders(
        state: ProblemState, chunks: List[ChunkPlacement]
    ) -> None:
        """REPRO_SANITIZE: placement objects agree with live storage."""
        for placement in chunks:
            stored = set(state.storage.holders(placement.chunk))
            if stored != set(placement.caches):
                raise InvariantError(
                    "adaptive.holders",
                    f"chunk {placement.chunk}: placement caches "
                    f"{sorted(map(str, placement.caches))} diverge from "
                    f"live storage {sorted(map(str, stored))}",
                )


class _AdaptStats:
    """Mutable per-epoch adaptation tallies (not user-facing)."""

    def __init__(self) -> None:
        self.drift_max = 0.0
        self.dirty_chunks = 0
        self.moves_considered = 0
        self.moves_accepted = 0
        self.resolves = 0
        self.resolves_reverted = 0
        self.adaptation_cost = 0.0


def _rebase_reference(
    reference: DemandSnapshot, snapshot: DemandSnapshot, chunk: int
) -> DemandSnapshot:
    """Replace one chunk's reference demand row with the current estimate."""
    pairs = {
        key: value
        for key, value in reference.pairs().items()
        if key[1] != chunk
    }
    for key, value in snapshot.pairs().items():
        if key[1] == chunk:
            pairs[key] = value
    return DemandSnapshot(pairs)


def run_adaptive(
    problem: CachingProblem,
    workload: Workload,
    config: Optional[AdaptiveConfig] = None,
) -> AdaptiveReport:
    """One-call entry point: build the controller, run the loop."""
    controller = AdaptiveController(problem, workload, config)
    return controller.run()
