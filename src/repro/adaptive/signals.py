"""Demand signals: turn served-request tallies into drift estimates.

The serve engines export raw per-``(client, chunk)`` request counts
(:meth:`repro.serve.engine.ServeEngine.demand_counts` — identical from
both replay paths, the signal layer's determinism contract).  This
module smooths those counts into an estimate of the *joint request
distribution* and measures how far it has drifted from the distribution
a placement was optimized for:

* :class:`DemandEstimator` — an exponentially-weighted moving average
  over per-epoch request *shares*.  Normalizing each epoch to a
  probability distribution first makes the estimate insensitive to
  epoch-to-epoch load swings (a diurnal trough is not popularity
  drift), while the EWMA suppresses single-epoch sampling noise.
* :class:`DemandSnapshot` — a frozen view of the estimate: the joint
  ``P(client, chunk)`` distribution plus per-chunk marginals and
  per-chunk demand-weight vectors for the move evaluator.
* :func:`chunk_drift` — per-chunk L1 distance between two snapshots'
  joint rows: ``drift(n) = Σ_clients |p(c, n) − p_ref(c, n)|``.  The
  controller marks a chunk dirty when its drift exceeds a threshold;
  a stationary workload keeps every drift near zero (quiescence).

Everything iterates in sorted ``(str(client), chunk)`` order, so two
runs over the same counts produce bit-identical floats.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Tuple

from repro.errors import ProblemError

Node = Hashable

#: Demand key: (client node, chunk id).
PairKey = Tuple[Node, int]

DEFAULT_ALPHA = 0.5


def _sorted_keys(mapping: Mapping[PairKey, float]):
    return sorted(mapping, key=lambda key: (str(key[0]), key[1]))


class DemandSnapshot:
    """A frozen joint demand distribution ``P(client, chunk)``."""

    def __init__(self, shares: Mapping[PairKey, float]) -> None:
        self._shares: Dict[PairKey, float] = {
            key: float(shares[key]) for key in _sorted_keys(shares)
        }

    def share(self, client: Node, chunk: int) -> float:
        """``P(client, chunk)``; 0 for pairs never observed."""
        return self._shares.get((client, chunk), 0.0)

    def pairs(self) -> Dict[PairKey, float]:
        """The joint distribution, sorted-key insertion order."""
        return dict(self._shares)

    def chunk_share(self, chunk: int) -> float:
        """Marginal ``P(chunk)`` — summed in sorted client order."""
        return sum(
            value for key, value in self._shares.items() if key[1] == chunk
        )

    def chunk_clients(self, chunk: int):
        """``(client, share)`` rows of one chunk, sorted by ``str(client)``."""
        return [
            (key[0], value)
            for key, value in self._shares.items()
            if key[1] == chunk and value > 0.0
        ]

    def weights(self, scale: float) -> Dict[PairKey, float]:
        """Expected request counts at ``scale`` total requests per epoch.

        The move evaluator prices candidate moves against these: a move
        is worth taking when its per-epoch weighted-cost saving covers
        its one-time transfer cost (``docs/ADAPTIVE.md``).
        """
        if scale < 0:
            raise ProblemError(f"scale must be >= 0, got {scale}")
        return {key: value * scale for key, value in self._shares.items()}

    def __len__(self) -> int:
        return len(self._shares)


class DemandEstimator:
    """EWMA over per-epoch request shares.

    ``update`` folds one epoch's raw counts in:
    ``est ← (1 − α)·est + α·epoch_share`` over the union of observed
    pairs.  ``α = 1`` trusts only the latest epoch; small ``α`` adapts
    slowly but smooths sampling noise.  A zero-request epoch leaves the
    estimate untouched (no signal, no update).
    """

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ProblemError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._estimate: Dict[PairKey, float] = {}
        self._epochs_observed = 0

    @property
    def epochs_observed(self) -> int:
        return self._epochs_observed

    def update(self, counts: Mapping[PairKey, int]) -> None:
        """Fold one epoch of raw served-request counts into the EWMA."""
        total = sum(counts.values())
        if total < 0:
            raise ProblemError("demand counts must be non-negative")
        if total == 0:
            return
        epoch_share = {
            key: counts[key] / total for key in _sorted_keys(counts)
        }
        if not self._estimate:
            self._estimate = dict(epoch_share)
            self._epochs_observed = 1
            return
        alpha = self.alpha
        merged: Dict[PairKey, float] = {}
        union = set(self._estimate) | set(epoch_share)
        for key in sorted(union, key=lambda k: (str(k[0]), k[1])):
            old = self._estimate.get(key, 0.0)
            new = epoch_share.get(key, 0.0)
            merged[key] = (1.0 - alpha) * old + alpha * new
        self._estimate = merged
        self._epochs_observed += 1

    def snapshot(self) -> DemandSnapshot:
        """The current estimate as a frozen :class:`DemandSnapshot`."""
        return DemandSnapshot(self._estimate)


def chunk_drift(
    current: DemandSnapshot,
    reference: DemandSnapshot,
    num_chunks: int,
) -> Dict[int, float]:
    """Per-chunk L1 drift between two joint demand snapshots.

    ``drift[n] = Σ_clients |P_cur(c, n) − P_ref(c, n)|`` — 0 when the
    chunk's demand row is unchanged, up to ``2·P(chunk)``-ish when the
    chunk's popularity appeared or vanished entirely.  Computed over the
    union of observed clients per chunk, in sorted order.
    """
    if num_chunks < 0:
        raise ProblemError(f"num_chunks must be >= 0, got {num_chunks}")
    drift = {chunk: 0.0 for chunk in range(num_chunks)}
    union = set(current.pairs()) | set(reference.pairs())
    for key in sorted(union, key=lambda k: (str(k[0]), k[1])):
        client, chunk = key
        if chunk not in drift:
            raise ProblemError(
                f"observed demand for unknown chunk {chunk} "
                f"(num_chunks={num_chunks})"
            )
        drift[chunk] += abs(
            current.share(client, chunk) - reference.share(client, chunk)
        )
    return drift
