"""Final-state contention accounting (the y-axis of Figs. 2–4, 8, 9).

The figures report the **total Contention Cost**, "the summation of the
cost from Accessing and Dissemination phases":

* *Accessing*: every node fetches every chunk from its serving node along
  the shortest hop path; the path is priced by Eq. 2 with the **final**
  storage state ("after all the dissemination is done, we calculated the
  contention by putting all the chunks to the original connected graph",
  Sec. V-B) — so heavily loaded caches inflate every path through them.
* *Dissemination*: each chunk's dissemination tree edges priced the same
  way.

This module evaluates any :class:`~repro.core.placement.CachePlacement`
under that *uniform* final-state accounting, so algorithms are compared on
identical terms regardless of what internal costs they optimized.  (The
per-placement ``stage_cost`` fields instead record the costs at placement
time, i.e. the iterative objective of Eq. 8 — both views are useful and
tests pin down their relationship.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.core.costs import CostModel
from repro.core.placement import CachePlacement
from repro.core.problem import CachingProblem

Node = Hashable


@dataclass(frozen=True)
class ContentionReport:
    """Final-state contention breakdown of one placement."""

    access: float
    dissemination: float
    per_chunk_access: Dict[int, float]
    per_chunk_dissemination: Dict[int, float]

    @property
    def total(self) -> float:
        """Access + dissemination — the headline metric of Figs. 2-4, 8."""
        return self.access + self.dissemination

    def per_chunk_total(self) -> Dict[int, float]:
        """Per-chunk access + dissemination (the bars of Fig. 9)."""
        return {
            chunk: self.per_chunk_access[chunk]
            + self.per_chunk_dissemination[chunk]
            for chunk in self.per_chunk_access
        }


def evaluate_contention(
    placement: CachePlacement,
    reassign: bool = True,
) -> ContentionReport:
    """Price a placement with final-state contention costs.

    Parameters
    ----------
    reassign:
        True (default): every client fetches from its *nearest* final copy
        (Sec. V-A semantics).  False: keep the placement's recorded
        assignment, pricing it at final state — useful to study how much
        an algorithm's own assignment deviates from nearest-copy.
    """
    problem = placement.problem
    storage = placement.final_storage()
    costs = CostModel(problem.graph, storage, problem.path_policy)

    per_chunk_access: Dict[int, float] = {}
    per_chunk_diss: Dict[int, float] = {}
    for chunk in placement.chunks:
        caches = list(chunk.caches)
        if reassign:
            assignment = _nearest_assignment(problem, costs, caches)
        else:
            assignment = chunk.assignment
        access = sum(
            costs.contention_cost(server, client)
            for client, server in assignment.items()
        )
        dissemination = sum(
            costs.edge_cost(*tuple(key)) for key in chunk.tree_edges
        )
        per_chunk_access[chunk.chunk] = access
        per_chunk_diss[chunk.chunk] = dissemination

    return ContentionReport(
        access=sum(per_chunk_access.values()),
        dissemination=sum(per_chunk_diss.values()),
        per_chunk_access=per_chunk_access,
        per_chunk_dissemination=per_chunk_diss,
    )


def total_contention_cost(placement: CachePlacement) -> float:
    """Shorthand: final-state access + dissemination cost."""
    return evaluate_contention(placement).total


def _nearest_assignment(
    problem: CachingProblem, costs: CostModel, caches: List[Node]
) -> Dict[Node, Node]:
    rows = {
        server: costs.all_contention_costs(server)
        for server in [problem.producer] + caches
    }
    assignment: Dict[Node, Node] = {}
    for client in problem.clients:
        best = problem.producer
        best_cost = rows[problem.producer][client]
        for server in caches:
            cost = rows[server][client]
            if cost < best_cost:
                best = server
                best_cost = cost
        assignment[client] = best
    return assignment
