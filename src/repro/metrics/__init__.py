"""Evaluation metrics: contention accounting and fairness measures."""

from repro.metrics.contention import (
    ContentionReport,
    evaluate_contention,
    total_contention_cost,
)
from repro.metrics.fairness import (
    gini_coefficient,
    jains_index,
    load_concentration_curve,
    percentile_fairness,
    placement_gini,
    placement_loads,
    placement_percentile_fairness,
)

__all__ = [
    "ContentionReport",
    "evaluate_contention",
    "gini_coefficient",
    "jains_index",
    "load_concentration_curve",
    "percentile_fairness",
    "placement_gini",
    "placement_loads",
    "placement_percentile_fairness",
    "total_contention_cost",
]
