"""Fairness metrics of Sec. V-B: Gini coefficient and p-percentile fairness.

* **Gini coefficient** — the paper's Eq. (Sec. V-B)::

      G = Σ_i Σ_j |t_i - t_j| / (2 n Σ_j t_j)

  over the per-node cached-chunk counts ``t_i`` (producer excluded, since
  it never caches and is excluded from all cost computations).  0 = all
  nodes carry equal load; →1 = one node carries everything.

* **p-percentile fairness** — "the fraction of nodes needed to cache p% of
  the total data.  Ideally, when all nodes have the same caching load,
  p-percentile fairness is strictly p%.  The smaller it is, the more
  uneven the load."  Computed by greedily counting the most-loaded nodes
  (fractionally, so a half-consumed node counts as half a node — this is
  how the paper's 4.28% for a 2-node Hopc set arises).

* **Jain's fairness index** — a standard complement (not in the paper)
  useful for cross-checking trends: 1 = perfectly even.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence

from repro.core.placement import CachePlacement

Node = Hashable


def gini_coefficient(loads: Sequence[float]) -> float:
    """Gini coefficient of a load vector (0 when empty or all-zero)."""
    values = [float(v) for v in loads]
    if not values:
        return 0.0
    total = sum(values)
    if total <= 0:
        return 0.0
    values.sort()
    n = len(values)
    # Equivalent O(n log n) form of Σ_i Σ_j |t_i - t_j| / (2 n Σ t).
    cumulative = 0.0
    weighted = 0.0
    for rank, value in enumerate(values, start=1):
        weighted += rank * value
        cumulative += value
    return (2.0 * weighted - (n + 1) * cumulative) / (n * cumulative)


def percentile_fairness(loads: Sequence[float], p: float) -> float:
    """Fraction of nodes needed to hold ``p`` (0..1) of the total load.

    Nodes are consumed most-loaded first, fractionally: if the threshold
    falls inside a node, only the needed fraction of that node counts.
    Returns 0 when there is no load.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    values = sorted((float(v) for v in loads), reverse=True)
    total = sum(values)
    if total <= 0 or not values:
        return 0.0
    target = p * total
    consumed = 0.0
    nodes_used = 0.0
    for value in values:
        if consumed >= target:
            break
        need = target - consumed
        if value >= need and value > 0:
            nodes_used += need / value
            consumed = target
        else:
            nodes_used += 1.0
            consumed += value
    return nodes_used / len(values)


def load_concentration_curve(loads: Sequence[float]) -> List[float]:
    """Cumulative data fraction held by the top-k nodes, for k = 1..n.

    This is the curve of Fig. 6 ("number of nodes needed to store a
    certain ratio of all data"), most-loaded nodes first.
    """
    values = sorted((float(v) for v in loads), reverse=True)
    total = sum(values)
    if total <= 0:
        return [0.0 for _ in values]
    curve: List[float] = []
    running = 0.0
    for value in values:
        running += value
        curve.append(running / total)
    return curve


def jains_index(loads: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n Σx²)``; 1 when perfectly even."""
    values = [float(v) for v in loads]
    if not values:
        return 1.0
    square_sum = sum(v * v for v in values)
    if square_sum == 0:
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


def placement_loads(
    placement: CachePlacement, include_producer: bool = False
) -> List[int]:
    """Per-node chunk counts ``t_i`` of a placement, producer excluded by
    default (it never caches; Sec. V-A)."""
    loads = placement.loads()
    producer = placement.problem.producer
    return [
        count
        for node, count in loads.items()
        if include_producer or node != producer
    ]


def placement_gini(placement: CachePlacement) -> float:
    """Gini coefficient of a placement's caching loads."""
    return gini_coefficient(placement_loads(placement))


def placement_percentile_fairness(placement: CachePlacement, p: float = 0.75) -> float:
    """p-percentile fairness of a placement (default p = 75%, as in the
    paper's headline 71.4% / 68.6% / 4.28% / 22.8% comparison)."""
    return percentile_fairness(placement_loads(placement), p)
