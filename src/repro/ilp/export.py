"""Export models in CPLEX LP text format.

Debugging aid for the exact formulations (and a PuLP-parity feature:
``LpProblem.writeLP`` is how the paper's authors would have inspected
their models).  The output is accepted by standard solvers (CPLEX,
Gurobi, HiGHS, CBC), so a model built here can be solved elsewhere.
"""

from __future__ import annotations

import re
from typing import List

from repro.ilp.expression import BINARY, EQUAL, GREATER_EQUAL, INTEGER, LESS_EQUAL
from repro.ilp.model import MAXIMIZE, Model

_SENSE_TOKENS = {LESS_EQUAL: "<=", GREATER_EQUAL: ">=", EQUAL: "="}
_NAME_SAFE = re.compile(r"[^A-Za-z0-9_.]")


def _safe(name: str) -> str:
    """LP-format-safe identifier (no spaces/operators, not starting with a
    digit or 'e')."""
    cleaned = _NAME_SAFE.sub("_", name)
    if not cleaned or cleaned[0].isdigit() or cleaned[0] in "eE.":
        cleaned = "v_" + cleaned
    return cleaned


def _terms(expr) -> str:
    parts: List[str] = []
    for var, coeff in expr.terms.items():
        if coeff == 0:
            continue
        sign = "-" if coeff < 0 else "+"
        magnitude = abs(coeff)
        if parts or sign == "-":
            parts.append(f"{sign} {magnitude:g} {_safe(var.name)}")
        else:
            parts.append(f"{magnitude:g} {_safe(var.name)}")
    return " ".join(parts) if parts else "0"


def to_lp_string(model: Model) -> str:
    """Serialize ``model`` to CPLEX LP format."""
    lines: List[str] = []
    lines.append("\\ " + f"model: {model.name}")
    lines.append("Maximize" if model.sense == MAXIMIZE else "Minimize")
    objective = _terms(model.objective)
    if model.objective.constant:
        sign = "+" if model.objective.constant > 0 else "-"
        objective += f" {sign} {abs(model.objective.constant):g} __const"
    lines.append(f" obj: {objective}")
    lines.append("Subject To")
    for constraint in model.constraints:
        sense = _SENSE_TOKENS[constraint.sense]
        lines.append(
            f" {_safe(constraint.name)}: {_terms(constraint.expr)} "
            f"{sense} {constraint.rhs:g}"
        )
    bounds: List[str] = []
    generals: List[str] = []
    binaries: List[str] = []
    for var in model.variables:
        name = _safe(var.name)
        if var.domain == BINARY:
            binaries.append(name)
            continue
        if var.domain == INTEGER:
            generals.append(name)
        lower = "-inf" if var.lower is None else f"{var.lower:g}"
        upper = "+inf" if var.upper is None else f"{var.upper:g}"
        if var.lower == 0.0 and var.upper is None:
            continue  # LP default bound
        bounds.append(f" {lower} <= {name} <= {upper}")
    if model.objective.constant:
        bounds.append(" __const = 1")
    if bounds:
        lines.append("Bounds")
        lines.extend(bounds)
    if generals:
        lines.append("Generals")
        lines.append(" " + " ".join(generals))
    if binaries:
        lines.append("Binaries")
        lines.append(" " + " ".join(binaries))
    lines.append("End")
    return "\n".join(lines) + "\n"


def write_lp(model: Model, path: str) -> None:
    """Write the LP serialization of ``model`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_lp_string(model))
