"""A dense two-phase primal simplex LP solver (pure numpy).

This is the self-contained LP engine behind the branch-and-bound MILP
solver (:mod:`repro.ilp.branch_and_bound`), replacing the external solver
PuLP would normally shell out to.  It targets the small/medium instances
the brute-force experiments need (tens to low hundreds of variables), not
industrial scale — :mod:`scipy.optimize.linprog` remains available as a
faster backend and the two are cross-checked in the test suite.

Form solved by :func:`solve_lp` (general) / :func:`solve_standard_lp`
(equational):

    minimize    c^T x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                lb <= x <= ub

Implementation notes
--------------------
* Two-phase method: phase 1 drives artificial variables to zero to find a
  basic feasible solution, phase 2 optimizes the real objective.
* Bland's anti-cycling rule is used throughout; slower per pivot but
  guarantees termination.
* General bounds are reduced to the standard form ``x >= 0`` by variable
  shifting, negation and free-variable splitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"

_TOL = 1e-9


@dataclass
class LPResult:
    """Outcome of an LP solve."""

    status: str
    x: Optional[np.ndarray]
    objective: Optional[float]

    @property
    def is_optimal(self) -> bool:
        return self.status == OPTIMAL


def solve_standard_lp(
    c: np.ndarray, A: np.ndarray, b: np.ndarray, max_iterations: int = 100_000
) -> LPResult:
    """Solve ``min c^T x  s.t.  A x = b, x >= 0`` by two-phase simplex."""
    c = np.asarray(c, dtype=float)
    A = np.atleast_2d(np.asarray(A, dtype=float))
    b = np.asarray(b, dtype=float).copy()
    m, n = A.shape
    if c.shape != (n,):
        raise ValueError(f"c has shape {c.shape}, expected ({n},)")
    if b.shape != (m,):
        raise ValueError(f"b has shape {b.shape}, expected ({m},)")

    # Make every RHS non-negative so artificials start feasible.
    A = A.copy()
    neg = b < 0
    A[neg] *= -1
    b[neg] *= -1

    # Phase 1: minimize the sum of artificial variables.
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = A
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b
    basis = list(range(n, n + m))
    # Phase-1 objective row: sum of artificial rows (reduced costs).
    tableau[m, :] = -tableau[:m, :].sum(axis=0)
    tableau[m, n : n + m] = 0.0

    status = _simplex_iterate(tableau, basis, num_real=n + m, max_iterations=max_iterations)
    if status == UNBOUNDED:  # pragma: no cover - phase 1 is bounded below by 0
        return LPResult(INFEASIBLE, None, None)
    if -tableau[m, -1] > 1e-7:
        return LPResult(INFEASIBLE, None, None)

    # Drive any artificial variables still in the basis out of it.
    for row, var in enumerate(basis):
        if var < n:
            continue
        pivot_col = -1
        for j in range(n):
            if abs(tableau[row, j]) > _TOL:
                pivot_col = j
                break
        if pivot_col >= 0:
            _pivot(tableau, row, pivot_col)
            basis[row] = pivot_col
        # else: the row is all-zero over real variables (redundant
        # constraint); the artificial stays basic at value 0 harmlessly.

    # Phase 2: swap in the real objective, zero out artificial columns.
    tableau[:, n : n + m] = 0.0
    tableau[m, :] = 0.0
    tableau[m, :n] = c
    for row, var in enumerate(basis):
        if var < n and abs(tableau[m, var]) > 0:
            tableau[m, :] -= tableau[m, var] * tableau[row, :]

    status = _simplex_iterate(tableau, basis, num_real=n, max_iterations=max_iterations)
    if status == UNBOUNDED:
        return LPResult(UNBOUNDED, None, None)

    x = np.zeros(n)
    for row, var in enumerate(basis):
        if var < n:
            x[var] = tableau[row, -1]
    return LPResult(OPTIMAL, x, float(c @ x))


def _simplex_iterate(
    tableau: np.ndarray, basis: List[int], num_real: int, max_iterations: int
) -> str:
    """Run simplex pivots in place using Bland's rule.

    ``num_real`` limits the columns eligible to enter the basis (phase 1
    lets artificials pivot; phase 2 must not).
    """
    m = len(basis)
    for _ in range(max_iterations):
        # Bland: entering variable = smallest index with negative reduced cost.
        entering = -1
        for j in range(num_real):
            if tableau[m, j] < -_TOL:
                entering = j
                break
        if entering < 0:
            return OPTIMAL
        # Ratio test with Bland tie-break on basis variable index.
        best_ratio = np.inf
        pivot_row = -1
        for i in range(m):
            coeff = tableau[i, entering]
            if coeff > _TOL:
                ratio = tableau[i, -1] / coeff
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (pivot_row < 0 or basis[i] < basis[pivot_row])
                ):
                    best_ratio = ratio
                    pivot_row = i
        if pivot_row < 0:
            return UNBOUNDED
        _pivot(tableau, pivot_row, entering)
        basis[pivot_row] = entering
    raise RuntimeError("simplex did not terminate within the iteration limit")


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    tableau[row, :] /= tableau[row, col]
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, col]) > 0:
            tableau[i, :] -= tableau[i, col] * tableau[row, :]


def solve_lp(
    c: Sequence[float],
    A_ub: Optional[np.ndarray] = None,
    b_ub: Optional[Sequence[float]] = None,
    A_eq: Optional[np.ndarray] = None,
    b_eq: Optional[Sequence[float]] = None,
    bounds: Optional[Sequence[Tuple[Optional[float], Optional[float]]]] = None,
) -> LPResult:
    """Solve a general-form LP by reduction to standard form.

    Mirrors :func:`scipy.optimize.linprog`'s calling convention so the two
    engines are interchangeable inside branch-and-bound.  ``bounds`` default
    to ``(0, None)`` per variable.
    """
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    if bounds is None:
        bounds = [(0.0, None)] * n
    if len(bounds) != n:
        raise ValueError(f"expected {n} bounds, got {len(bounds)}")

    rows_ub = 0 if A_ub is None else np.atleast_2d(A_ub).shape[0]
    rows_eq = 0 if A_eq is None else np.atleast_2d(A_eq).shape[0]
    A_ub_m = np.atleast_2d(np.asarray(A_ub, dtype=float)) if rows_ub else np.zeros((0, n))
    b_ub_v = np.asarray(b_ub, dtype=float) if rows_ub else np.zeros(0)
    A_eq_m = np.atleast_2d(np.asarray(A_eq, dtype=float)) if rows_eq else np.zeros((0, n))
    b_eq_v = np.asarray(b_eq, dtype=float) if rows_eq else np.zeros(0)

    # --- substitute variables so every standard-form variable is >= 0 ---
    # Each original variable maps to (plus_col, minus_col, shift):
    #   x = shift + x_plus - x_minus, with x_minus only for free variables.
    col_plus: List[int] = []
    col_minus: List[Optional[int]] = []
    shift = np.zeros(n)
    negate = np.zeros(n, dtype=bool)
    extra_ub_rows: List[Tuple[int, float]] = []  # (var index, upper bound on shifted var)
    next_col = 0
    for i, (lb, ub) in enumerate(bounds):
        if lb is not None and ub is not None and ub < lb:
            return LPResult(INFEASIBLE, None, None)
        if lb is not None:
            shift[i] = lb
            col_plus.append(next_col)
            col_minus.append(None)
            next_col += 1
            if ub is not None:
                extra_ub_rows.append((i, ub - lb))
        elif ub is not None:
            # Only an upper bound: substitute x = ub - x', x' >= 0.
            shift[i] = ub
            negate[i] = True
            col_plus.append(next_col)
            col_minus.append(None)
            next_col += 1
        else:
            # Free variable: x = x+ - x-.
            col_plus.append(next_col)
            col_minus.append(next_col + 1)
            next_col += 2
    total_cols = next_col

    def expand(matrix: np.ndarray) -> np.ndarray:
        out = np.zeros((matrix.shape[0], total_cols))
        for i in range(n):
            column = matrix[:, i]
            sign = -1.0 if negate[i] else 1.0
            out[:, col_plus[i]] += sign * column
            if col_minus[i] is not None:
                out[:, col_minus[i]] -= column
        return out

    # Bounded-above shifted variables become explicit <= rows.
    if extra_ub_rows:
        bound_A = np.zeros((len(extra_ub_rows), n))
        bound_b = np.zeros(len(extra_ub_rows))
        for r, (i, cap) in enumerate(extra_ub_rows):
            bound_A[r, i] = 1.0
            bound_b[r] = cap + shift[i]  # original-space constraint x_i <= lb + cap
        A_ub_m = np.vstack([A_ub_m, bound_A]) if A_ub_m.size else bound_A
        b_ub_v = np.concatenate([b_ub_v, bound_b]) if b_ub_v.size else bound_b

    # Shift the RHS by the contribution of the constant parts.
    b_ub_shifted = b_ub_v - (A_ub_m @ shift if A_ub_m.size else 0.0)
    b_eq_shifted = b_eq_v - (A_eq_m @ shift if A_eq_m.size else 0.0)

    A_ub_std = expand(A_ub_m) if A_ub_m.size else np.zeros((0, total_cols))
    A_eq_std = expand(A_eq_m) if A_eq_m.size else np.zeros((0, total_cols))

    # Slack variables turn <= rows into equalities.
    num_slacks = A_ub_std.shape[0]
    A_full = np.zeros((num_slacks + A_eq_std.shape[0], total_cols + num_slacks))
    b_full = np.zeros(A_full.shape[0])
    if num_slacks:
        A_full[:num_slacks, :total_cols] = A_ub_std
        A_full[:num_slacks, total_cols:] = np.eye(num_slacks)
        b_full[:num_slacks] = b_ub_shifted
    if A_eq_std.shape[0]:
        A_full[num_slacks:, :total_cols] = A_eq_std
        b_full[num_slacks:] = b_eq_shifted

    c_std = np.zeros(total_cols + num_slacks)
    for i in range(n):
        sign = -1.0 if negate[i] else 1.0
        c_std[col_plus[i]] += sign * c[i]
        if col_minus[i] is not None:
            c_std[col_minus[i]] -= c[i]

    if A_full.shape[0] == 0:
        # Unconstrained: optimum at the bound implied by each cost sign.
        x = shift.copy()
        if np.any((c_std[:total_cols] < -_TOL)):
            return LPResult(UNBOUNDED, None, None)
        return LPResult(OPTIMAL, x, float(c @ x))

    result = solve_standard_lp(c_std, A_full, b_full)
    if not result.is_optimal:
        return result

    x = np.empty(n)
    for i in range(n):
        value = result.x[col_plus[i]]
        if col_minus[i] is not None:
            value -= result.x[col_minus[i]]
        if negate[i]:
            value = -value
        x[i] = shift[i] + value
    return LPResult(OPTIMAL, x, float(c @ x))
