"""Branch-and-bound MILP solver over LP relaxations.

A classic best-first branch-and-bound:

* The LP relaxation of each node is solved with scipy's HiGHS-backed
  ``linprog`` or with our own simplex (:mod:`repro.ilp.simplex`).
* Branching variable: most fractional integral variable.
* Node order: best (lowest) relaxation bound first, so the incumbent gap
  shrinks monotonically.
* Pruning: nodes whose bound exceeds ``incumbent - gap`` are cut.

This deliberately favors clarity over speed — it exists so the repository
carries its *own* exact solver (the paper used PuLP; see DESIGN.md §5) and
so the HiGHS backend has an independent implementation to agree with.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

_INT_TOL = 1e-6


@dataclass(frozen=True)
class BnBResult:
    """Raw branch-and-bound outcome (status, solution, objective, nodes)."""

    status: str
    x: Optional[np.ndarray]
    objective: Optional[float]
    nodes_explored: int


def _solve_relaxation_scipy(c, A_ub, b_ub, A_eq, b_eq, bounds):
    from scipy.optimize import linprog

    res = linprog(
        c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq, bounds=bounds,
        method="highs",
    )
    if res.status == 0:
        return "optimal", res.x, res.fun
    if res.status == 2:
        return "infeasible", None, None
    if res.status == 3:
        return "unbounded", None, None
    return "error", None, None


def _solve_relaxation_simplex(c, A_ub, b_ub, A_eq, b_eq, bounds):
    from repro.ilp.simplex import solve_lp

    res = solve_lp(c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq, bounds=bounds)
    return res.status, res.x, res.objective


def branch_and_bound(
    c: np.ndarray,
    A_ub: Optional[np.ndarray],
    b_ub: Optional[np.ndarray],
    A_eq: Optional[np.ndarray],
    b_eq: Optional[np.ndarray],
    bounds: List[Tuple[Optional[float], Optional[float]]],
    integrality: np.ndarray,
    gap: float = 1e-9,
    time_limit: Optional[float] = None,
    lp_engine: str = "scipy",
    max_nodes: int = 200_000,
) -> BnBResult:
    """Minimize ``c @ x`` subject to the given constraints and integrality.

    Parameters
    ----------
    integrality:
        Array of 0/1 flags; 1 marks a variable that must be integer.
    gap:
        Absolute gap: a node is pruned when its LP bound is within ``gap``
        of the incumbent.
    lp_engine:
        ``"scipy"`` (default) or ``"simplex"`` for the pure-numpy engine.

    Returns
    -------
    BnBResult with status ``"optimal"``, ``"infeasible"`` or ``"unbounded"``.
    """
    if lp_engine == "scipy":
        solve_relaxation = _solve_relaxation_scipy
    elif lp_engine == "simplex":
        solve_relaxation = _solve_relaxation_simplex
    else:
        raise ValueError(f"unknown lp_engine {lp_engine!r}")

    deadline = None if time_limit is None else time.monotonic() + time_limit
    integral_indices = np.flatnonzero(np.asarray(integrality) != 0)

    status, x0, bound0 = solve_relaxation(c, A_ub, b_ub, A_eq, b_eq, bounds)
    if status != "optimal":
        return BnBResult(status, None, None, 1)

    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj = math.inf
    nodes_explored = 1
    stopped_early = False

    # Heap entries: (lp_bound, tiebreak, bounds_list, lp_solution)
    counter = 0
    heap: List[Tuple[float, int, list, np.ndarray]] = []
    heapq.heappush(heap, (bound0, counter, list(bounds), x0))

    while heap:
        lp_bound, _, node_bounds, x = heapq.heappop(heap)
        if lp_bound >= incumbent_obj - gap:
            break  # best-first: every remaining node is at least as bad
        if deadline is not None and time.monotonic() > deadline:
            stopped_early = True
            break
        if nodes_explored >= max_nodes:
            stopped_early = True
            break

        frac_index = _most_fractional(x, integral_indices)
        if frac_index < 0:
            # Integral solution: candidate incumbent.
            if lp_bound < incumbent_obj:
                incumbent_obj = lp_bound
                incumbent_x = x
            continue

        value = x[frac_index]
        floor_v, ceil_v = math.floor(value), math.ceil(value)
        for new_lb, new_ub, side in (
            (None, float(floor_v), "down"),
            (float(ceil_v), None, "up"),
        ):
            child = list(node_bounds)
            lb, ub = child[frac_index]
            if side == "down":
                ub = new_ub if ub is None else min(ub, new_ub)
            else:
                lb = new_lb if lb is None else max(lb, new_lb)
            if lb is not None and ub is not None and lb > ub:
                continue
            child[frac_index] = (lb, ub)
            status, cx, cbound = solve_relaxation(c, A_ub, b_ub, A_eq, b_eq, child)
            nodes_explored += 1
            if status != "optimal":
                continue
            if cbound >= incumbent_obj - gap:
                continue
            if _most_fractional(cx, integral_indices) < 0 and cbound < incumbent_obj:
                incumbent_obj = cbound
                incumbent_x = cx
                continue
            counter += 1
            heapq.heappush(heap, (cbound, counter, child, cx))

    if incumbent_x is None:
        if stopped_early:
            raise RuntimeError(
                "branch-and-bound hit its time/node limit before finding "
                "any integral solution; raise the limit or use the HiGHS "
                "backend"
            )
        return BnBResult("infeasible", None, None, nodes_explored)
    snapped = incumbent_x.copy()
    snapped[integral_indices] = np.round(snapped[integral_indices])
    return BnBResult(
        "optimal", snapped, float(c @ snapped), nodes_explored
    )


def _most_fractional(x: np.ndarray, integral_indices: np.ndarray) -> int:
    """Index of the integral variable farthest from its nearest integer.

    Returns -1 when all integral variables are (tolerance-)integral.
    """
    best_index = -1
    best_frac = _INT_TOL
    for i in integral_indices:
        frac = abs(x[i] - round(x[i]))
        if frac > best_frac:
            best_frac = frac
            best_index = int(i)
    return best_index
