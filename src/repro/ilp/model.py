"""The ILP/LP model container and its solver front-end.

A drop-in, from-scratch replacement for the subset of PuLP the paper's
brute-force evaluation needs (DESIGN.md §5): declare variables, add linear
constraints, set an objective, call :meth:`Model.solve`.

Two interchangeable MILP backends are provided:

* ``"bnb"`` — our own branch-and-bound over LP relaxations
  (:mod:`repro.ilp.branch_and_bound`), with the LP solved either by
  :mod:`scipy.optimize.linprog` (default) or the pure-numpy simplex in
  :mod:`repro.ilp.simplex`.
* ``"highs"`` — :func:`scipy.optimize.milp` (the HiGHS solver bundled with
  scipy), used as an independent cross-check.

``backend="auto"`` prefers HiGHS and falls back to branch-and-bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import InfeasibleError, ModelError, UnboundedError
from repro.ilp.expression import (
    BINARY,
    CONTINUOUS,
    EQUAL,
    GREATER_EQUAL,
    INTEGER,
    LESS_EQUAL,
    Constraint,
    LinExpr,
    Variable,
)

MINIMIZE = "minimize"
MAXIMIZE = "maximize"


@dataclass
class Solution:
    """Result of a successful solve."""

    status: str
    objective: float
    values: Dict[Variable, float]
    backend: str
    nodes_explored: int = 0

    def value(self, item: Union[Variable, LinExpr]) -> float:
        """Value of a variable or expression under this solution."""
        if isinstance(item, Variable):
            return self.values.get(item, 0.0)
        return item.value(self.values)

    def __getitem__(self, var: Variable) -> float:
        return self.values.get(var, 0.0)


@dataclass
class _MatrixForm:
    """Model flattened to matrices, in *minimization* orientation."""

    c: np.ndarray
    offset: float
    A_ub: Optional[np.ndarray]
    b_ub: Optional[np.ndarray]
    A_eq: Optional[np.ndarray]
    b_eq: Optional[np.ndarray]
    bounds: List[Tuple[Optional[float], Optional[float]]]
    integrality: np.ndarray
    variables: List[Variable] = field(default_factory=list)


class Model:
    """A mixed-integer linear program under construction.

    Examples
    --------
    >>> m = Model("knapsack", sense=MAXIMIZE)
    >>> x = [m.binary_var(f"x{i}") for i in range(3)]
    >>> _ = m.add_constraint(2*x[0] + 3*x[1] + 4*x[2] <= 6, "cap")
    >>> m.set_objective(3*x[0] + 4*x[1] + 5*x[2])
    >>> sol = m.solve()
    >>> round(sol.objective)
    7
    """

    def __init__(self, name: str = "model", sense: str = MINIMIZE) -> None:
        if sense not in (MINIMIZE, MAXIMIZE):
            raise ModelError(f"unknown objective sense {sense!r}")
        self.name = name
        self.sense = sense
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self._names: Dict[str, Variable] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add_var(
        self,
        name: str,
        lower: Optional[float],
        upper: Optional[float],
        domain: str,
    ) -> Variable:
        if not name:
            name = f"v{len(self.variables)}"
        if name in self._names:
            raise ModelError(f"duplicate variable name {name!r}")
        if lower is not None and upper is not None and upper < lower:
            raise ModelError(f"variable {name!r} has upper {upper} < lower {lower}")
        var = Variable(name, lower, upper, domain, index=len(self.variables))
        self.variables.append(var)
        self._names[name] = var
        return var

    def continuous_var(
        self,
        name: str = "",
        lower: Optional[float] = 0.0,
        upper: Optional[float] = None,
    ) -> Variable:
        """Add a continuous variable (default domain ``x >= 0``)."""
        return self._add_var(name, lower, upper, CONTINUOUS)

    def integer_var(
        self,
        name: str = "",
        lower: Optional[float] = 0.0,
        upper: Optional[float] = None,
    ) -> Variable:
        """Add a general integer variable."""
        return self._add_var(name, lower, upper, INTEGER)

    def binary_var(self, name: str = "") -> Variable:
        """Add a 0/1 variable — the workhorse of the caching ILP."""
        return self._add_var(name, 0.0, 1.0, BINARY)

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built via expression comparison."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add_constraint expects an expression comparison such as "
                "`x + y <= 1`; did you pass a bool?"
            )
        if name:
            constraint.name = name
        elif not constraint.name:
            constraint.name = f"c{len(self.constraints)}"
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, expr: Union[LinExpr, Variable, float]) -> None:
        """Set the objective expression (sense fixed at construction)."""
        if isinstance(expr, Variable):
            expr = expr + 0.0
        elif isinstance(expr, (int, float)):
            expr = LinExpr(constant=float(expr))
        self.objective = expr

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def variable_by_name(self, name: str) -> Variable:
        """Look up a variable by name; raise ``KeyError`` if absent."""
        return self._names[name]

    # ------------------------------------------------------------------
    # Flattening
    # ------------------------------------------------------------------
    def to_matrix_form(self) -> _MatrixForm:
        """Flatten to minimization-oriented matrices for the backends."""
        n = len(self.variables)
        sign = 1.0 if self.sense == MINIMIZE else -1.0
        c = np.zeros(n)
        for var, coeff in self.objective.terms.items():
            self._check_owned(var)
            c[var.index] += sign * coeff
        offset = sign * self.objective.constant

        rows_ub: List[np.ndarray] = []
        rhs_ub: List[float] = []
        rows_eq: List[np.ndarray] = []
        rhs_eq: List[float] = []
        for constraint in self.constraints:
            row = np.zeros(n)
            for var, coeff in constraint.expr.terms.items():
                self._check_owned(var)
                row[var.index] += coeff
            rhs = constraint.rhs
            if constraint.sense == LESS_EQUAL:
                rows_ub.append(row)
                rhs_ub.append(rhs)
            elif constraint.sense == GREATER_EQUAL:
                rows_ub.append(-row)
                rhs_ub.append(-rhs)
            elif constraint.sense == EQUAL:
                rows_eq.append(row)
                rhs_eq.append(rhs)

        bounds = [(v.lower, v.upper) for v in self.variables]
        integrality = np.array(
            [1 if v.is_integral else 0 for v in self.variables], dtype=int
        )
        return _MatrixForm(
            c=c,
            offset=offset,
            A_ub=np.vstack(rows_ub) if rows_ub else None,
            b_ub=np.asarray(rhs_ub) if rhs_ub else None,
            A_eq=np.vstack(rows_eq) if rows_eq else None,
            b_eq=np.asarray(rhs_eq) if rhs_eq else None,
            bounds=bounds,
            integrality=integrality,
            variables=list(self.variables),
        )

    def _check_owned(self, var: Variable) -> None:
        if (
            var.index >= len(self.variables)
            or self.variables[var.index] is not var
        ):
            raise ModelError(f"variable {var.name!r} does not belong to model {self.name!r}")

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        backend: str = "auto",
        time_limit: Optional[float] = None,
        gap: float = 1e-9,
        lp_engine: str = "scipy",
    ) -> Solution:
        """Solve the model and return a :class:`Solution`.

        Parameters
        ----------
        backend:
            ``"highs"``, ``"bnb"``, or ``"auto"`` (HiGHS when importable,
            otherwise branch-and-bound).
        time_limit:
            Optional wall-clock limit in seconds (best effort).
        gap:
            Absolute optimality gap tolerated by branch-and-bound.
        lp_engine:
            LP relaxation engine for ``"bnb"``: ``"scipy"`` or ``"simplex"``
            (our pure-numpy implementation).

        Raises
        ------
        InfeasibleError / UnboundedError
            When the model is proven infeasible or unbounded.
        """
        from repro.ilp import backends

        form = self.to_matrix_form()
        if backend == "auto":
            backend = "highs" if backends.highs_available() else "bnb"
        if backend == "highs":
            raw = backends.solve_with_highs(form, time_limit=time_limit)
        elif backend == "bnb":
            raw = backends.solve_with_branch_and_bound(
                form, time_limit=time_limit, gap=gap, lp_engine=lp_engine
            )
        else:
            raise ModelError(f"unknown backend {backend!r}")

        status, x, objective, nodes = raw
        if status == "infeasible":
            raise InfeasibleError(f"model {self.name!r} is infeasible")
        if status == "unbounded":
            raise UnboundedError(f"model {self.name!r} is unbounded")
        if status != "optimal":
            raise ModelError(f"solver returned unexpected status {status!r}")

        sign = 1.0 if self.sense == MINIMIZE else -1.0
        values = {var: float(x[var.index]) for var in self.variables}
        # Snap integral variables onto the lattice for clean downstream use.
        for var in self.variables:
            if var.is_integral:
                values[var] = float(round(values[var]))
        true_objective = sign * (objective + form.offset)
        return Solution(
            status="optimal",
            objective=true_objective,
            values=values,
            backend=backend,
            nodes_explored=nodes,
        )
