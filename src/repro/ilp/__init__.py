"""ILP substrate: a from-scratch PuLP-style modeler and MILP solvers.

The paper's brute-force optimum uses the PuLP modeler (Sec. V-A); this
package replaces it offline with an equivalent modeling layer plus two
interchangeable solver backends (own branch-and-bound, scipy HiGHS).
"""

from repro.ilp.branch_and_bound import BnBResult, branch_and_bound
from repro.ilp.export import to_lp_string, write_lp
from repro.ilp.expression import (
    BINARY,
    CONTINUOUS,
    INTEGER,
    Constraint,
    LinExpr,
    Variable,
    lin_sum,
)
from repro.ilp.model import MAXIMIZE, MINIMIZE, Model, Solution
from repro.ilp.simplex import INFEASIBLE, OPTIMAL, UNBOUNDED, LPResult, solve_lp

__all__ = [
    "BINARY",
    "BnBResult",
    "CONTINUOUS",
    "Constraint",
    "INFEASIBLE",
    "INTEGER",
    "LPResult",
    "LinExpr",
    "MAXIMIZE",
    "MINIMIZE",
    "Model",
    "OPTIMAL",
    "Solution",
    "UNBOUNDED",
    "Variable",
    "branch_and_bound",
    "lin_sum",
    "solve_lp",
    "to_lp_string",
    "write_lp",
]
