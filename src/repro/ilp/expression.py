"""Linear expressions, variables and constraints for the ILP modeling layer.

The paper obtains its brute-force optimum with the PuLP modeler (Sec. V-A).
PuLP is not available offline, so :mod:`repro.ilp` provides an equivalent
modeling API built from scratch (DESIGN.md §5).  This module is the
expression algebra: :class:`Variable` and :class:`LinExpr` overload ``+``,
``-``, ``*`` and the comparison operators so models read like the math:

>>> from repro.ilp import Model
>>> m = Model("demo")
>>> x, y = m.binary_var("x"), m.binary_var("y")
>>> c = x + 2 * y <= 2
>>> c.sense
'<='
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

Number = Union[int, float]

CONTINUOUS = "continuous"
INTEGER = "integer"
BINARY = "binary"

LESS_EQUAL = "<="
GREATER_EQUAL = ">="
EQUAL = "=="


class Variable:
    """A decision variable owned by a :class:`~repro.ilp.model.Model`.

    Do not instantiate directly — use ``Model.continuous_var`` /
    ``integer_var`` / ``binary_var`` so the model can track it.
    """

    __slots__ = ("name", "lower", "upper", "domain", "index")

    def __init__(
        self,
        name: str,
        lower: Optional[Number],
        upper: Optional[Number],
        domain: str,
        index: int,
    ) -> None:
        if domain not in (CONTINUOUS, INTEGER, BINARY):
            raise ValueError(f"unknown variable domain {domain!r}")
        self.name = name
        self.lower = lower
        self.upper = upper
        self.domain = domain
        self.index = index

    @property
    def is_integral(self) -> bool:
        """True for integer and binary variables."""
        return self.domain in (INTEGER, BINARY)

    # -- algebra -------------------------------------------------------
    def _expr(self) -> "LinExpr":
        return LinExpr({self: 1.0})

    def __add__(self, other: object) -> "LinExpr":
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other: object) -> "LinExpr":
        return self._expr() - other

    def __rsub__(self, other: object) -> "LinExpr":
        return (-self._expr()) + other

    def __mul__(self, other: object) -> "LinExpr":
        return self._expr() * other

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self._expr() * -1.0

    def __le__(self, other: object) -> "Constraint":
        return self._expr() <= other

    def __ge__(self, other: object) -> "Constraint":
        return self._expr() >= other

    def __eq__(self, other: object) -> "Constraint":  # type: ignore[override]
        return self._expr() == other

    # Identity hash: Variables live in insertion-ordered dicts inside one
    # solve; the hash value never reaches an ordering or emitted result.
    def __hash__(self) -> int:
        return id(self)  # repro: noqa=hash-ordering

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


class LinExpr:
    """An affine expression ``Σ coeff_i · var_i + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(
        self,
        terms: Optional[Mapping[Variable, float]] = None,
        constant: float = 0.0,
    ) -> None:
        self.terms: Dict[Variable, float] = dict(terms or {})
        self.constant = float(constant)

    # -- construction helpers ------------------------------------------
    @staticmethod
    def from_terms(pairs: Iterable[Tuple[Number, Variable]]) -> "LinExpr":
        """Build ``Σ coeff · var`` from ``(coeff, var)`` pairs efficiently.

        Useful for big objectives where repeated ``+`` would be quadratic.
        """
        expr = LinExpr()
        for coeff, var in pairs:
            expr.terms[var] = expr.terms.get(var, 0.0) + float(coeff)
        return expr

    def copy(self) -> "LinExpr":
        return LinExpr(self.terms, self.constant)

    # -- algebra -------------------------------------------------------
    def _coerce(self, other: object) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return other._expr()
        if isinstance(other, (int, float)):
            return LinExpr(constant=float(other))
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: object) -> "LinExpr":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        out = self.copy()
        out.constant += rhs.constant
        for var, coeff in rhs.terms.items():
            out.terms[var] = out.terms.get(var, 0.0) + coeff
        return out

    __radd__ = __add__

    def __sub__(self, other: object) -> "LinExpr":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self + (rhs * -1.0)

    def __rsub__(self, other: object) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, other: object) -> "LinExpr":
        if not isinstance(other, (int, float)):
            return NotImplemented
        scale = float(other)
        return LinExpr(
            {var: coeff * scale for var, coeff in self.terms.items()},
            self.constant * scale,
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- comparisons build constraints ----------------------------------
    def __le__(self, other: object) -> "Constraint":
        return Constraint(self - other, LESS_EQUAL)

    def __ge__(self, other: object) -> "Constraint":
        return Constraint(self - other, GREATER_EQUAL)

    def __eq__(self, other: object) -> "Constraint":  # type: ignore[override]
        return Constraint(self - other, EQUAL)

    # Identity hash, same contract as Variable.__hash__ above: never used
    # to order anything that lands in a result.
    def __hash__(self) -> int:
        return id(self)  # repro: noqa=hash-ordering

    # -- evaluation ------------------------------------------------------
    def value(self, assignment: Mapping[Variable, float]) -> float:
        """Evaluate under a variable assignment (missing vars count as 0)."""
        total = self.constant
        for var, coeff in self.terms.items():
            total += coeff * assignment.get(var, 0.0)
        return total

    def __repr__(self) -> str:
        parts = [f"{coeff:+g}*{var.name}" for var, coeff in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` in normalized form.

    Built by comparing expressions; the right-hand side is folded into the
    expression's constant, so the stored form is always ``lhs - rhs`` with
    a zero right side.
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: str, name: str = "") -> None:
        if sense not in (LESS_EQUAL, GREATER_EQUAL, EQUAL):
            raise ValueError(f"unknown constraint sense {sense!r}")
        self.expr = expr
        self.sense = sense
        self.name = name

    @property
    def rhs(self) -> float:
        """Right-hand side after moving the constant over: ``-constant``."""
        return -self.expr.constant

    def violation(self, assignment: Mapping[Variable, float]) -> float:
        """How much the assignment violates this constraint (0 if satisfied)."""
        lhs = self.expr.value(assignment)
        if self.sense == LESS_EQUAL:
            return max(0.0, lhs)
        if self.sense == GREATER_EQUAL:
            return max(0.0, -lhs)
        return abs(lhs)

    def __repr__(self) -> str:
        return f"Constraint({self.name or '<anon>'}: {self.expr!r} {self.sense} 0)"


def lin_sum(items: Iterable[Union[LinExpr, Variable, Number]]) -> LinExpr:
    """Sum expressions/variables/numbers in linear time.

    Equivalent to ``sum(items)`` but avoids building O(n) intermediate
    expressions — use it for objectives with thousands of terms.
    """
    out = LinExpr()
    for item in items:
        if isinstance(item, Variable):
            out.terms[item] = out.terms.get(item, 0.0) + 1.0
        elif isinstance(item, LinExpr):
            out.constant += item.constant
            for var, coeff in item.terms.items():
                out.terms[var] = out.terms.get(var, 0.0) + coeff
        elif isinstance(item, (int, float)):
            out.constant += float(item)
        else:
            raise TypeError(f"cannot sum {type(item).__name__} into a LinExpr")
    return out
