"""Solver backends translating :class:`~repro.ilp.model._MatrixForm` models.

Each backend returns a raw tuple ``(status, x, objective, nodes_explored)``
with status in ``{"optimal", "infeasible", "unbounded"}``; the model layer
turns that into exceptions / :class:`~repro.ilp.model.Solution`.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator, Optional, Tuple

import numpy as np

RawResult = Tuple[str, Optional[np.ndarray], Optional[float], int]


@contextlib.contextmanager
def _silence_native_stdout() -> Iterator[None]:
    """Redirect C-level stdout to /dev/null for the duration.

    HiGHS (inside scipy) prints debug lines directly to the process's
    stdout, bypassing Python's ``sys.stdout``; an fd-level redirect is the
    only way to keep solver runs quiet.
    """
    try:
        stdout_fd = os.dup(1)
    except OSError:  # pragma: no cover - no real stdout (embedded etc.)
        yield
        return
    try:
        with open(os.devnull, "wb") as devnull:
            os.dup2(devnull.fileno(), 1)
            try:
                yield
            finally:
                os.dup2(stdout_fd, 1)
    finally:
        os.close(stdout_fd)


def highs_available() -> bool:
    """True if scipy's MILP interface (HiGHS) can be imported."""
    try:
        from scipy.optimize import milp  # noqa: F401
    except ImportError:  # pragma: no cover - scipy is a hard dependency here
        return False
    return True


def solve_with_highs(form, time_limit: Optional[float] = None) -> RawResult:
    """Solve via :func:`scipy.optimize.milp` (HiGHS)."""
    from scipy.optimize import Bounds, LinearConstraint, milp

    n = form.c.shape[0]
    constraints = []
    if form.A_ub is not None:
        constraints.append(
            LinearConstraint(form.A_ub, -np.inf * np.ones(form.b_ub.shape), form.b_ub)
        )
    if form.A_eq is not None:
        constraints.append(LinearConstraint(form.A_eq, form.b_eq, form.b_eq))

    lower = np.array(
        [(-np.inf if lb is None else lb) for lb, _ in form.bounds], dtype=float
    )
    upper = np.array(
        [(np.inf if ub is None else ub) for _, ub in form.bounds], dtype=float
    )
    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit

    with _silence_native_stdout():
        result = milp(
            c=form.c,
            constraints=constraints or None,
            integrality=form.integrality,
            bounds=Bounds(lower, upper),
            options=options,
        )
    if result.status == 0:
        return "optimal", np.asarray(result.x), float(result.fun), int(
            getattr(result, "mip_node_count", 0) or 0
        )
    if result.status == 2:
        return "infeasible", None, None, 0
    if result.status == 3:
        return "unbounded", None, None, 0
    # Timeouts / iteration limits: surface the best message we have.
    raise RuntimeError(f"HiGHS failed: {result.message}")


def solve_with_branch_and_bound(
    form,
    time_limit: Optional[float] = None,
    gap: float = 1e-9,
    lp_engine: str = "scipy",
) -> RawResult:
    """Solve via our own branch-and-bound (:mod:`repro.ilp.branch_and_bound`)."""
    from repro.ilp.branch_and_bound import branch_and_bound

    result = branch_and_bound(
        c=form.c,
        A_ub=form.A_ub,
        b_ub=form.b_ub,
        A_eq=form.A_eq,
        b_eq=form.b_eq,
        bounds=form.bounds,
        integrality=form.integrality,
        gap=gap,
        time_limit=time_limit,
        lp_engine=lp_engine,
    )
    return result.status, result.x, result.objective, result.nodes_explored
