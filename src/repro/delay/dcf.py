"""802.11 DCF contention-delay model (Sec. III-C).

The paper justifies the Contention Cost as "roughly a linear
transformation of the Contention Delay model" of Yang et al. [24]::

    d(k, c) = DIFS + m_k·c + w_k·T_d + m_k²·T_c

with, for node ``k``: DIFS the DCF inter-frame space, ``m_k`` the number
of back-off slots (≈ S(k), chunks stored at contending neighbors), ``c``
the back-off slot length, ``w_k`` the number of chunks transmitted by
neighboring nodes, ``T_d`` the data-chunk transmission duration and
``T_c`` the collision duration.  Under ``T_d ≈ T_c ≈ c`` the paper
simplifies to::

    d(k) ≈ DIFS + T_d · (w_k + w_k · S(k))   =   DIFS + T_d · w_k (1 + S(k))

— the per-node Contention Cost times ``T_d`` plus a constant, which is why
contention cost stands in for latency throughout the evaluation.  This
module provides both the full model and the linearized translation so
benchmark output can be read in milliseconds.

Default timing constants follow classic 802.11b DSSS parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, List

from repro.graphs.graph import Graph
from repro.core.storage import StorageState

Node = Hashable


@dataclass(frozen=True)
class DcfParameters:
    """Timing constants (seconds).  Defaults: 802.11b DSSS, 1 MB chunks at
    11 Mb/s (the paper's "few MBs" of shared data split into chunks)."""

    difs: float = 50e-6
    slot_time: float = 20e-6
    chunk_transmission: float = 0.73  # 1 MB at 11 Mb/s
    collision_duration: float = 0.73  # T_c ≈ T_d

    def __post_init__(self) -> None:
        for name in ("difs", "slot_time", "chunk_transmission", "collision_duration"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


def hop_delay(
    contending_chunks: int,
    backoff_slots: int,
    params: DcfParameters = DcfParameters(),
) -> float:
    """Full Yang et al. hop delay ``d(k, c)`` in seconds.

    Parameters
    ----------
    contending_chunks:
        ``w_k`` — chunks transmitted in the contention domain of the hop.
    backoff_slots:
        ``m_k`` — back-off slots (the paper takes ``m_k = S(k)``).
    """
    if contending_chunks < 0 or backoff_slots < 0:
        raise ValueError("model inputs must be non-negative")
    return (
        params.difs
        + backoff_slots * params.slot_time
        + contending_chunks * params.chunk_transmission
        + backoff_slots * backoff_slots * params.collision_duration
    )


def linearized_hop_delay(
    node_contention_cost: float, params: DcfParameters = DcfParameters()
) -> float:
    """The paper's linearization: ``DIFS + T_d · w_k (1 + S(k))``.

    ``node_contention_cost`` is exactly the ``w_k (1 + S(k))`` term of
    Eq. 2, so any path/total contention cost converts to an estimated
    delay by summing this per hop.
    """
    if node_contention_cost < 0:
        raise ValueError("contention cost must be non-negative")
    return params.difs + params.chunk_transmission * node_contention_cost


def contention_cost_to_delay(
    total_contention_cost: float,
    num_hops: int,
    params: DcfParameters = DcfParameters(),
) -> float:
    """Convert an aggregate contention cost over ``num_hops`` hops to an
    estimated delay in seconds (one DIFS per hop + T_d per cost unit)."""
    if num_hops < 0:
        raise ValueError("num_hops must be non-negative")
    return num_hops * params.difs + params.chunk_transmission * total_contention_cost


def path_delay(
    graph: Graph,
    path: List[Node],
    storage: StorageState,
    params: DcfParameters = DcfParameters(),
) -> float:
    """End-to-end DCF delay along an explicit node path, full model.

    Sums ``d(k, c)`` with ``w_k`` = degree × (1 + S(k)) transmissions and
    ``m_k = S(k)`` back-off slots, per the paper's reading of [24].
    """
    if len(path) <= 1:
        return 0.0
    total = 0.0
    for k in path:
        stored = storage.used(k)
        w_k = graph.degree(k) * (1 + stored)
        total += hop_delay(w_k, stored, params)
    return total
