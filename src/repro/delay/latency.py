"""Request-level latency evaluation of a placement (DCF model end-to-end).

Sec. III-C argues that the Contention Cost is a linear proxy for 802.11
contention-induced delay.  This module closes the loop: every
(client, chunk) fetch in a placement is walked along its actual shortest
hop path and priced with the *full* Yang et al. hop-delay model
``d(k, c)`` — not the linearization — on the final storage state,
producing a latency distribution in seconds.

The headline use: verify that ranking algorithms by contention cost and
by modelled latency agrees (the paper's justification for optimizing the
former), and give the examples something in milliseconds to print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Tuple

from repro.core.costs import CostModel
from repro.core.placement import CachePlacement
from repro.delay.dcf import DcfParameters, path_delay

Node = Hashable


def percentile(values: Iterable[float], p: float) -> float:
    """p-th percentile (0..100) of ``values``, linearly interpolated.

    The single shared implementation behind
    :meth:`LatencyReport.percentile` and the request-level
    :class:`~repro.serve.stats.ServeReport` quantiles.  ``p=0`` is the
    minimum, ``p=100`` the maximum; an empty input yields 0.0 and a
    single sample is returned unchanged for every ``p``.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


@dataclass(frozen=True)
class LatencyReport:
    """Distribution of per-fetch latencies (seconds)."""

    fetch_latencies: Tuple[float, ...]
    per_chunk_completion: Dict[int, float]

    @property
    def count(self) -> int:
        return len(self.fetch_latencies)

    @property
    def mean(self) -> float:
        if not self.fetch_latencies:
            return 0.0
        return sum(self.fetch_latencies) / len(self.fetch_latencies)

    @property
    def maximum(self) -> float:
        return max(self.fetch_latencies, default=0.0)

    def percentile(self, p: float) -> float:
        """p-th percentile (0..100) of per-fetch latency, interpolated."""
        return percentile(self.fetch_latencies, p)

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    def worst_chunk_completion(self) -> float:
        """Completion time of the slowest chunk (Fig. 9's motivation: a
        data item finishes only when its slowest chunk arrives)."""
        return max(self.per_chunk_completion.values(), default=0.0)


def latency_report(
    placement: CachePlacement,
    params: DcfParameters = DcfParameters(),
    reassign: bool = True,
) -> LatencyReport:
    """Price every fetch of ``placement`` with the full DCF hop model.

    Paths and storage loads come from the final network state; with
    ``reassign`` (default) every client fetches from its nearest final
    copy, mirroring :func:`repro.metrics.evaluate_contention`.
    """
    problem = placement.problem
    storage = placement.final_storage()
    costs = CostModel(problem.graph, storage, problem.path_policy)

    latencies: List[float] = []
    per_chunk_completion: Dict[int, float] = {}
    for chunk in placement.chunks:
        caches = list(chunk.caches)
        if reassign:
            assignment = _nearest(problem, costs, caches)
        else:
            assignment = chunk.assignment
        worst = 0.0
        for client, server in assignment.items():
            if server == client:
                delay = 0.0
            else:
                path = costs.path(server, client)
                delay = path_delay(problem.graph, path, storage, params)
            latencies.append(delay)
            worst = max(worst, delay)
        per_chunk_completion[chunk.chunk] = worst
    return LatencyReport(
        fetch_latencies=tuple(latencies),
        per_chunk_completion=per_chunk_completion,
    )


def _nearest(problem, costs: CostModel, caches: List[Node]) -> Dict[Node, Node]:
    rows = {
        server: costs.all_contention_costs(server)
        for server in [problem.producer] + caches
    }
    assignment: Dict[Node, Node] = {}
    for client in problem.clients:
        best = problem.producer
        best_cost = rows[problem.producer][client]
        for server in caches:
            if rows[server][client] < best_cost:
                best = server
                best_cost = rows[server][client]
        assignment[client] = best
    return assignment
