"""802.11 DCF contention-delay model (Sec. III-C's latency translation)."""

from repro.delay.dcf import (
    DcfParameters,
    contention_cost_to_delay,
    hop_delay,
    linearized_hop_delay,
    path_delay,
)
from repro.delay.latency import LatencyReport, latency_report, percentile

__all__ = [
    "DcfParameters",
    "LatencyReport",
    "latency_report",
    "contention_cost_to_delay",
    "hop_delay",
    "linearized_hop_delay",
    "path_delay",
    "percentile",
]
