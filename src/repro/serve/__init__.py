"""Request-plane serving engine for the accessing phase (layer 4).

The paper prices the accessing phase as a one-shot cost sum; this
package *serves* it: seeded workload generators
(:mod:`repro.serve.workloads`) replayed on the discrete-event simulator
against any placement (:mod:`repro.serve.engine`), with pluggable
replica selection (:mod:`repro.serve.selection`) and a deterministic
:class:`~repro.serve.stats.ServeReport` of throughput, tail latency, and
served-load fairness (:mod:`repro.serve.stats`).

Quickstart::

    from repro.workloads import grid_problem
    from repro.core.approximation import solve_approximation
    from repro.serve import ZipfWorkload, serve_placement

    placement = solve_approximation(grid_problem(6))
    report = serve_placement(placement, ZipfWorkload(seed=2017), 10_000)
    print(report.render())
"""

from repro.serve.engine import (
    DEFAULT_ENGINE_SEED,
    ENGINE_BATCHED,
    ENGINE_PER_REQUEST,
    ENGINES,
    ServeConfig,
    ServeEngine,
    serve_placement,
)
from repro.serve.selection import (
    SELECTION_POLICIES,
    CheapestCost,
    LeastLoaded,
    PowerOfTwoChoices,
    ReplicaSelector,
    ServeView,
    make_selector,
)
from repro.serve.stats import SERVE_SCHEMA, ServeReport, build_report
from repro.serve.workloads import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_RATE,
    DEFAULT_SEED,
    WORKLOADS,
    FlashCrowdWorkload,
    HotspotWorkload,
    Request,
    RequestBatch,
    UniformWorkload,
    Workload,
    ZipfWorkload,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_ENGINE_SEED",
    "DEFAULT_RATE",
    "DEFAULT_SEED",
    "ENGINE_BATCHED",
    "ENGINE_PER_REQUEST",
    "ENGINES",
    "SELECTION_POLICIES",
    "SERVE_SCHEMA",
    "WORKLOADS",
    "CheapestCost",
    "FlashCrowdWorkload",
    "HotspotWorkload",
    "LeastLoaded",
    "PowerOfTwoChoices",
    "ReplicaSelector",
    "Request",
    "RequestBatch",
    "ServeConfig",
    "ServeEngine",
    "ServeReport",
    "ServeView",
    "UniformWorkload",
    "Workload",
    "ZipfWorkload",
    "build_report",
    "make_selector",
    "serve_placement",
]
