"""Deterministic request-stream generators for the accessing phase.

The paper prices the accessing phase once per (client, chunk) pair; real
edge caches instead see a *request process* — skewed chunk popularity,
uneven per-node demand, and occasional flash crowds (cf. FairCache's
served-load evaluation and the Zipf request processes of Ioannidis &
Yeh's adaptive caching networks).  This module turns those processes
into streams the :mod:`repro.serve.engine` can replay against any
placement.

Every generator is

* **seeded** — a fresh ``random.Random(seed)`` per :meth:`Workload.stream`
  call, so the same workload object yields a bit-identical stream every
  time it is iterated (the engine's determinism guarantee starts here);
* **iterator-based** — requests are produced one at a time from O(1)
  generator state, so a million-request replay never materializes a
  request list;
* **Poisson in time** — exponential interarrivals at ``rate`` requests
  per simulated second across the whole network (flash crowds add a
  burst window on top).

Two stream shapes share one RNG schedule.  :meth:`Workload.stream`
yields :class:`Request` objects (the per-request engine path);
:meth:`Workload.stream_batches` yields struct-of-arrays batches —
parallel ``times`` / ``clients`` / ``chunks`` list columns — for the
batched engine hot path (see ``docs/SCALING.md``).  Both draw
interarrival, client, chunk per request in that exact order from the
same seeded RNG, so the value sequences are identical; the equivalence
tests assert it for every generator.

A ``rate`` of exactly 0 is a valid degenerate workload: the stream is
empty (no request ever arrives) and the engine returns a zero-request
report instead of tripping over ``expovariate(0)``.

The :data:`WORKLOADS` registry maps CLI names to generator classes;
``repro list`` enumerates it.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterator, List, Sequence, Tuple, Type

from repro.errors import ProblemError

Node = Hashable

DEFAULT_SEED = 2017

#: Requests per struct-of-arrays batch from :meth:`Workload.stream_batches`.
#: Large enough to amortize the per-batch Python overhead, small enough
#: that a partially-consumed final batch wastes little generation work.
DEFAULT_BATCH_SIZE = 8192

#: One struct-of-arrays event batch: parallel ``(times, clients, chunks)``
#: columns, one entry per request.
RequestBatch = Tuple[List[float], List[Node], List[int]]

#: Mean request arrivals per simulated second, network-wide.  DCF chunk
#: transfers take ~10 s across a grid (0.73 s transmission per hop times
#: the contention multiplier), so 0.5 req/s keeps the default replay
#: near-stable; raise it to study overload.
DEFAULT_RATE = 0.5

#: Per-stream scratch state returned by :meth:`Workload._prepare`.
StreamState = Dict[str, Any]


@dataclass(frozen=True)
class Request:
    """One client request: ``client`` wants ``chunk`` at time ``time``."""

    index: int
    time: float
    client: Node
    chunk: int


@dataclass(frozen=True)
class Workload:
    """Base request-stream generator (Poisson arrivals, uniform draws).

    Subclasses override :meth:`_prepare` / :meth:`_pick_client` /
    :meth:`_pick_chunk` / :meth:`_interarrival`.  All stream state lives
    in the per-call ``rng`` and the ``state`` dict ``_prepare`` returns,
    so one workload object can be iterated any number of times — even
    concurrently — and every stream is bit-identical.
    """

    name = "uniform"

    seed: int = DEFAULT_SEED
    rate: float = DEFAULT_RATE

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ProblemError(f"request rate must be >= 0, got {self.rate}")

    def stream(
        self, clients: Sequence[Node], num_chunks: int
    ) -> Iterator[Request]:
        """An endless deterministic request stream (seeded per call).

        A zero-rate workload yields an empty stream (no arrivals, ever).
        """
        clients = self._check_stream_args(clients, num_chunks)
        if self.rate == 0:
            return iter(())
        rng = random.Random(self.seed)
        state = self._prepare(rng, clients, num_chunks)
        return self._generate(rng, state, clients, num_chunks)

    def stream_batches(
        self,
        clients: Sequence[Node],
        num_chunks: int,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> Iterator[RequestBatch]:
        """The same stream as :meth:`stream`, in struct-of-arrays batches.

        Yields ``(times, clients, chunks)`` parallel list columns of
        ``batch_size`` requests each, endlessly.  The RNG is consumed in
        exactly the per-request order (interarrival, client, chunk), so
        column ``i`` of batch ``b`` equals request ``b * batch_size + i``
        of :meth:`stream` — the batched engine's equivalence guarantee
        starts here.  A zero-rate workload yields no batches.
        """
        if batch_size < 1:
            raise ProblemError(f"batch_size must be >= 1, got {batch_size}")
        clients = self._check_stream_args(clients, num_chunks)
        if self.rate == 0:
            return iter(())
        return self._generate_batches(clients, num_chunks, batch_size)

    def _generate_batches(
        self, clients: List[Node], num_chunks: int, batch_size: int
    ) -> Iterator[RequestBatch]:
        rng = random.Random(self.seed)
        state = self._prepare(rng, clients, num_chunks)
        interarrival = self._interarrival
        pick_client = self._pick_client
        pick_chunk = self._pick_chunk
        now = 0.0
        while True:
            times: List[float] = []
            batch_clients: List[Node] = []
            batch_chunks: List[int] = []
            for _ in range(batch_size):
                now += interarrival(rng, now)
                times.append(now)
                # Client before chunk: Request(...) evaluates its keyword
                # arguments in that order, and RNG order is the contract.
                batch_clients.append(pick_client(rng, clients, state))
                batch_chunks.append(pick_chunk(rng, num_chunks, now, state))
            yield times, batch_clients, batch_chunks

    def _check_stream_args(
        self, clients: Sequence[Node], num_chunks: int
    ) -> List[Node]:
        if not clients:
            raise ProblemError("workload needs at least one client")
        if num_chunks < 1:
            raise ProblemError("workload needs at least one chunk")
        return list(clients)

    def _generate(
        self,
        rng: random.Random,
        state: StreamState,
        clients: List[Node],
        num_chunks: int,
    ) -> Iterator[Request]:
        now = 0.0
        index = 0
        while True:
            now += self._interarrival(rng, now)
            yield Request(
                index=index,
                time=now,
                client=self._pick_client(rng, clients, state),
                chunk=self._pick_chunk(rng, num_chunks, now, state),
            )
            index += 1

    # -- hooks ---------------------------------------------------------
    def _prepare(
        self, rng: random.Random, clients: List[Node], num_chunks: int
    ) -> StreamState:
        """Per-stream setup (weight tables etc.); default: nothing."""
        return {}

    def _interarrival(self, rng: random.Random, now: float) -> float:
        return rng.expovariate(self.rate)

    def _pick_client(
        self, rng: random.Random, clients: List[Node], state: StreamState
    ) -> Node:
        return clients[rng.randrange(len(clients))]

    def _pick_chunk(
        self, rng: random.Random, num_chunks: int, now: float, state: StreamState
    ) -> int:
        return rng.randrange(num_chunks)


@dataclass(frozen=True)
class UniformWorkload(Workload):
    """Every client and every chunk equally likely — the paper's implicit
    "all nodes request all chunks" accessing phase, as a process."""

    name = "uniform"


@dataclass(frozen=True)
class ZipfWorkload(Workload):
    """Zipf-skewed chunk popularity: chunk ``k`` drawn ∝ ``1/(k+1)^s``.

    The standard cache-workload model (Ioannidis & Yeh drive their
    adaptive caching networks with exactly this); ``exponent`` ≈ 0.8–1.2
    covers most measured content catalogs.
    """

    name = "zipf"

    exponent: float = 0.8

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.exponent < 0:
            raise ProblemError(
                f"zipf exponent must be >= 0, got {self.exponent}"
            )

    def _prepare(
        self, rng: random.Random, clients: List[Node], num_chunks: int
    ) -> StreamState:
        total = 0.0
        cdf: List[float] = []
        for k in range(num_chunks):
            total += 1.0 / float(k + 1) ** self.exponent
            cdf.append(total)
        return {"chunk_cdf": cdf}

    def _pick_chunk(
        self, rng: random.Random, num_chunks: int, now: float, state: StreamState
    ) -> int:
        cdf = state["chunk_cdf"]
        return bisect_left(cdf, rng.random() * cdf[-1])


@dataclass(frozen=True)
class HotspotWorkload(Workload):
    """Uneven per-node demand: a seeded fraction of clients are "hot" and
    issue ``boost``× the base demand (think a lecture hall next to quiet
    offices)."""

    name = "hotspot"

    hot_fraction: float = 0.2
    boost: float = 5.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ProblemError(
                f"hot_fraction must be in [0, 1], got {self.hot_fraction}"
            )
        if self.boost < 1.0:
            raise ProblemError(f"boost must be >= 1, got {self.boost}")

    def _prepare(
        self, rng: random.Random, clients: List[Node], num_chunks: int
    ) -> StreamState:
        hot_count = min(len(clients), max(1, round(self.hot_fraction * len(clients))))
        hot_indices = set(rng.sample(range(len(clients)), hot_count))
        cdf: List[float] = []
        total = 0.0
        for i in range(len(clients)):
            total += self.boost if i in hot_indices else 1.0
            cdf.append(total)
        return {"client_cdf": cdf}

    def _pick_client(
        self, rng: random.Random, clients: List[Node], state: StreamState
    ) -> Node:
        cdf = state["client_cdf"]
        return clients[bisect_left(cdf, rng.random() * cdf[-1])]


@dataclass(frozen=True)
class FlashCrowdWorkload(ZipfWorkload):
    """Zipf base traffic plus a flash crowd: inside the window
    ``[burst_start, burst_start + burst_duration)`` the arrival rate is
    multiplied by ``burst_factor`` and every burst request targets the
    most popular chunk (chunk 0) — the viral-video scenario."""

    name = "flash"

    burst_start: float = 20.0
    burst_duration: float = 10.0
    burst_factor: float = 10.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.burst_start < 0 or self.burst_duration < 0:
            raise ProblemError("burst window must be non-negative")
        if self.burst_factor < 1.0:
            raise ProblemError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )

    def _in_burst(self, now: float) -> bool:
        return (
            self.burst_start <= now < self.burst_start + self.burst_duration
        )

    def _interarrival(self, rng: random.Random, now: float) -> float:
        rate = self.rate * (self.burst_factor if self._in_burst(now) else 1.0)
        return rng.expovariate(rate)

    def _pick_chunk(
        self, rng: random.Random, num_chunks: int, now: float, state: StreamState
    ) -> int:
        if self._in_burst(now):
            return 0
        return super()._pick_chunk(rng, num_chunks, now, state)


@dataclass(frozen=True)
class ShiftWorkload(ZipfWorkload):
    """Zipf popularity whose *ranks* are re-shuffled every ``shift_period``
    simulated seconds — the popularity-drift stressor for the adaptive
    control loop (``docs/ADAPTIVE.md``).

    The Zipf skew is constant; which chunk occupies which rank is a
    seeded permutation that is re-drawn at every epoch boundary.  The
    permutation RNG is separate from the request RNG (derived from
    ``seed``), so shuffles never perturb the per-request draw schedule
    and :meth:`stream` / :meth:`stream_batches` stay value-identical.
    Epochs advance one at a time even when an interarrival gap skips
    several boundaries, so the permutation at any ``now`` depends only
    on ``int(now // shift_period)`` — not on the arrival pattern.
    """

    name = "shift"

    shift_period: float = 60.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.shift_period <= 0:
            raise ProblemError(
                f"shift_period must be > 0, got {self.shift_period}"
            )

    def _prepare(
        self, rng: random.Random, clients: List[Node], num_chunks: int
    ) -> StreamState:
        state = super()._prepare(rng, clients, num_chunks)
        # Derived, not shared: shuffling must not consume request RNG.
        state["perm_rng"] = random.Random((self.seed << 1) ^ 0x5A1F)
        state["perm"] = list(range(num_chunks))
        state["epoch"] = 0
        return state

    def _pick_chunk(
        self, rng: random.Random, num_chunks: int, now: float, state: StreamState
    ) -> int:
        target = int(now // self.shift_period)
        while state["epoch"] < target:
            state["epoch"] += 1
            state["perm_rng"].shuffle(state["perm"])
        rank = super()._pick_chunk(rng, num_chunks, now, state)
        return state["perm"][rank]


@dataclass(frozen=True)
class DiurnalWorkload(ZipfWorkload):
    """Zipf popularity with a sinusoidal day/night arrival-rate swing:
    the instantaneous rate is ``rate * (1 + amplitude * sin(2π·now/period))``,
    so demand peaks mid-"day" and troughs mid-"night" while chunk
    popularity stays fixed."""

    name = "diurnal"

    period: float = 240.0
    amplitude: float = 0.8

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period <= 0:
            raise ProblemError(f"period must be > 0, got {self.period}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ProblemError(
                f"amplitude must be in [0, 1), got {self.amplitude}"
            )

    def _interarrival(self, rng: random.Random, now: float) -> float:
        swing = 1.0 + self.amplitude * math.sin(2.0 * math.pi * now / self.period)
        return rng.expovariate(self.rate * swing)


#: CLI name → workload class (``repro serve --workload`` / ``repro list``).
WORKLOADS: Dict[str, Type[Workload]] = {
    UniformWorkload.name: UniformWorkload,
    ZipfWorkload.name: ZipfWorkload,
    HotspotWorkload.name: HotspotWorkload,
    FlashCrowdWorkload.name: FlashCrowdWorkload,
    ShiftWorkload.name: ShiftWorkload,
    DiurnalWorkload.name: DiurnalWorkload,
}
