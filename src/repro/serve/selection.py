"""Pluggable replica-selection policies for the serving engine.

When a request for chunk ``n`` arrives, the engine offers the policy an
ordered candidate list — the chunk's cache nodes (deterministic order)
with the producer appended last, so every policy inherits the
producer-fallback guarantee: the candidate list is never empty and the
producer is never dead.

Policies see the network only through a :class:`ServeView`:

* ``cost(server, client)`` — the paper's Eq. 2 contention cost ``c_ij``
  served by the placement's :class:`~repro.core.costs.CostModel`;
* ``queue_depth(server)`` — requests currently queued or in service at
  ``server``;
* ``rng`` — the engine's seeded RNG (randomized policies must draw from
  it, and only from it, to keep replays bit-identical).

Three policies, bracketing the classic latency/load trade-off:

* :class:`CheapestCost` — the paper's accessing-phase semantics: fetch
  from the replica with the minimum Eq. 2 cost (ties → earlier
  candidate, producer last).
* :class:`LeastLoaded` — ignore path cost, go to the emptiest queue
  (ties → cheaper, then earlier).
* :class:`PowerOfTwoChoices` — sample two distinct candidates, keep the
  less loaded (Mitzenmacher's "power of two choices"; near-LeastLoaded
  balance at O(1) state probes).

The :data:`SELECTION_POLICIES` registry maps CLI names to classes;
``repro list`` enumerates it.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Sequence, Type

Node = Hashable


class ServeView:
    """What a policy may observe; implemented by the engine."""

    rng: random.Random

    def cost(self, server: Node, client: Node) -> float:
        """Eq. 2 contention cost ``c_ij`` of serving ``client`` from
        ``server`` on the final storage state."""
        raise NotImplementedError

    def queue_depth(self, server: Node) -> int:
        """Requests queued or in service at ``server`` right now."""
        raise NotImplementedError


class ReplicaSelector:
    """Base replica-selection policy.

    :meth:`bind` is called once per replay with the engine's view;
    :meth:`choose` once per request attempt with the still-alive
    candidates (never empty — the producer is always last).

    ``load_independent`` declares that :meth:`choose` is a pure function
    of ``(client, chunk, candidates)`` — it reads neither queue depths
    nor the RNG.  The batched engine exploits this to resolve each
    ``(client, chunk)`` pair to its ``(server, failover count)`` exactly
    once per replay instead of once per request; load-dependent policies
    keep the per-request call (see ``docs/SCALING.md``).
    """

    name = "base"

    #: True only when choose() ignores queue depths and the RNG.
    load_independent = False

    def bind(self, view: ServeView) -> None:
        self._view = view

    def choose(self, client: Node, chunk: int, candidates: Sequence[Node]) -> Node:
        raise NotImplementedError


class CheapestCost(ReplicaSelector):
    """Paper semantics: the replica with the minimum Eq. 2 cost wins.

    A client that caches the chunk itself serves itself (``c_ii = 0``);
    the producer, listed last, wins only when strictly cheaper than
    every cache — exactly :func:`repro.core.placement.assignment_from_nearest`.
    """

    name = "cheapest"

    # Costs are frozen for a whole replay (final storage state), so the
    # choice per (client, chunk) never changes.
    load_independent = True

    def choose(self, client: Node, chunk: int, candidates: Sequence[Node]) -> Node:
        view = self._view
        best = candidates[0]
        best_cost = view.cost(best, client)
        for server in candidates[1:]:
            cost = view.cost(server, client)
            if cost < best_cost:
                best = server
                best_cost = cost
        return best


class LeastLoaded(ReplicaSelector):
    """Go wherever the queue is shortest; ties break toward the cheaper
    path, then the earlier candidate."""

    name = "least-loaded"

    def choose(self, client: Node, chunk: int, candidates: Sequence[Node]) -> Node:
        view = self._view
        best = candidates[0]
        best_key = (view.queue_depth(best), view.cost(best, client))
        for server in candidates[1:]:
            key = (view.queue_depth(server), view.cost(server, client))
            if key < best_key:
                best = server
                best_key = key
        return best


class PowerOfTwoChoices(ReplicaSelector):
    """Sample two distinct candidates with the engine RNG, keep the less
    loaded (ties → cheaper, then the earlier sample)."""

    name = "p2c"

    def choose(self, client: Node, chunk: int, candidates: Sequence[Node]) -> Node:
        view = self._view
        if len(candidates) == 1:
            return candidates[0]
        first, second = view.rng.sample(range(len(candidates)), 2)
        a, b = candidates[first], candidates[second]
        key_a = (view.queue_depth(a), view.cost(a, client))
        key_b = (view.queue_depth(b), view.cost(b, client))
        return b if key_b < key_a else a


#: CLI name → policy class (``repro serve --policy`` / ``repro list``).
SELECTION_POLICIES: Dict[str, Type[ReplicaSelector]] = {
    CheapestCost.name: CheapestCost,
    LeastLoaded.name: LeastLoaded,
    PowerOfTwoChoices.name: PowerOfTwoChoices,
}


def make_selector(policy: "str | ReplicaSelector") -> ReplicaSelector:
    """Resolve a policy name (or pass through an instance)."""
    if isinstance(policy, ReplicaSelector):
        return policy
    cls = SELECTION_POLICIES.get(policy)
    if cls is None:
        raise KeyError(
            f"unknown selection policy {policy!r}; "
            f"choose from {sorted(SELECTION_POLICIES)}"
        )
    return cls()
